"""Failure injection and edge cases."""

import pytest

from repro.core.engine import FileQueryEngine
from repro.errors import ParseError, QueryError, QuerySyntaxError
from repro.index.config import IndexConfig
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema, generate_bibtex


class TestMalformedInput:
    def test_malformed_corpus_raises_parse_error(self):
        with pytest.raises(ParseError) as excinfo:
            FileQueryEngine(bibtex_schema(), "@INCOLLECTION{ broken")
        assert excinfo.value.position >= 0

    def test_truncated_entry(self):
        good = generate_bibtex(entries=2, seed=1)
        with pytest.raises(ParseError):
            FileQueryEngine(bibtex_schema(), good[: len(good) // 2])

    def test_garbage_between_entries(self):
        good = generate_bibtex(entries=2, seed=1)
        hacked = good.replace("}\n@INCOLLECTION", "}\n???\n@INCOLLECTION", 1)
        with pytest.raises(ParseError):
            FileQueryEngine(bibtex_schema(), hacked)

    def test_query_syntax_error(self, bibtex_engine):
        with pytest.raises(QuerySyntaxError):
            bibtex_engine.query("SELEKT r FROM Reference r")

    def test_query_semantic_error(self, bibtex_engine):
        with pytest.raises(QueryError):
            bibtex_engine.query('SELECT s FROM Reference r WHERE r.Key = "x"')


class TestEmptyAndTiny:
    def test_empty_corpus(self):
        engine = FileQueryEngine(bibtex_schema(), "")
        result = engine.query(CHANG_AUTHOR_QUERY)
        assert result.rows == []
        assert engine.baseline_query(CHANG_AUTHOR_QUERY).rows == []

    def test_single_entry(self):
        engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=1, seed=0))
        assert len(engine.query("SELECT r FROM Reference r").rows) == 1

    def test_whitespace_only(self):
        engine = FileQueryEngine(bibtex_schema(), "   \n\n  ")
        assert engine.query("SELECT r FROM Reference r").rows == []

    def test_query_for_class_with_no_extent(self):
        engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=1, seed=0))
        # A grammar non-terminal that is not a class: DB extent is empty.
        result = engine.baseline_query("SELECT n FROM Name n")
        assert result.rows == []


class TestUnicodeAndOddContent:
    def test_unicode_names(self):
        text = (
            "@INCOLLECTION{ Key80a,\n"
            '  AUTHOR = "Å. Çelik and Ö. Müller",\n'
            '  TITLE = "Überoptimierung",\n'
            '  BOOKTITLE = "Bücher",\n'
            '  YEAR = "1980",\n'
            '  EDITOR = "É. Dvořák",\n'
            '  PUBLISHER = "Springer",\n'
            '  ADDRESS = "Zürich",\n'
            '  PAGES = "1--2",\n'
            '  REFERRED = "Key80a",\n'
            '  KEYWORDS = "ümlaut handling",\n'
            '  ABSTRACT = "ça marche"\n'
            "}\n"
        )
        engine = FileQueryEngine(bibtex_schema(), text)
        result = engine.query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Çelik"'
        )
        baseline = engine.baseline_query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Çelik"'
        )
        assert len(result.rows) == 1
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_single_author_coincident_extents(self):
        # One author: the Authors region coincides with its Name region —
        # the coincidence corner the RIG machinery handles.
        text = generate_bibtex(entries=10, seed=2, authors_per_entry=1)
        engine = FileQueryEngine(bibtex_schema(), text)
        query = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        assert (
            engine.query(query).canonical_rows()
            == engine.baseline_query(query).canonical_rows()
        )

    def test_empty_field_lists(self):
        # An entry whose Referred list has one key and keywords one phrase
        # still round-trips (generator minimums); zero-element star regions
        # are covered by the logs workload (entries without requests).
        from repro.workloads.logs import generate_log, log_schema

        engine = FileQueryEngine(
            log_schema(), generate_log(entries=30, seed=1, requests_per_entry=0)
        )
        query = 'SELECT e FROM Entry e WHERE e.Requests.Request.Status = "503"'
        assert (
            engine.query(query).canonical_rows()
            == engine.baseline_query(query).canonical_rows()
        )


class TestCandidateReparseFailure:
    def test_unparseable_candidate_is_dropped(self, monkeypatch):
        """If a candidate region fails to re-parse (index out of sync with
        the file), it is excluded rather than crashing the query."""
        text = generate_bibtex(entries=5, seed=9)
        config = IndexConfig.partial({"Reference", "Key", "Last_Name"})
        engine = FileQueryEngine(bibtex_schema(), text, config)
        # Corrupt the engine's view of the text after indexing.
        engine.index.text = text.replace("@INCOLLECTION", "@XXCOLLECTION", 1)
        result = engine.query(CHANG_AUTHOR_QUERY)
        assert result.stats.objects_filtered_out >= 0  # no exception
        assert all(
            row[0].class_name == "Reference" for row in result.rows
        )


class TestLenientEvaluation:
    def test_expression_with_unindexed_name_strict(self, bibtex_partial_engine):
        from repro.errors import UnknownRegionNameError

        with pytest.raises(UnknownRegionNameError):
            bibtex_partial_engine.index.evaluate("Reference > Authors")

    def test_zero_width_regions_behave(self, log_engine):
        # Entries without requests have zero-width Requests regions; they
        # are included in their Entry and contain nothing.
        requests = log_engine.index.instance.get("Requests")
        entries = log_engine.index.instance.get("Entry")
        zero_width = [region for region in requests if len(region) == 0]
        assert zero_width  # the generator produces some
        for region in zero_width:
            assert entries.any_including(region)
