"""End-to-end: engine == baseline across queries × index configurations.

This is the library's central correctness property: whatever the index
configuration (full, partial, scoped, minimal), the engine's answer equals
the standard-database pipeline's.
"""

import pytest

from repro.core.engine import FileQueryEngine
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

BIBTEX_QUERIES = [
    'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"',
    'SELECT r FROM Reference r WHERE r.Editors.Name.Last_Name = "Chang"',
    'SELECT r FROM Reference r WHERE r.*X.Last_Name = "Chang"',
    'SELECT r FROM Reference r WHERE r.X.Name.Last_Name = "Corliss"',
    'SELECT r FROM Reference r WHERE r.Year = "1982"',
    'SELECT r FROM Reference r WHERE r.Key = "Chan85f"',
    'SELECT r FROM Reference r WHERE r.Keywords.Keyword = "Taylor series"',
    'SELECT r FROM Reference r WHERE r.Year = "1982" OR r.Year = "1994"',
    'SELECT r FROM Reference r WHERE r.Publisher = "SIAM" '
    'AND r.Authors.Name.Last_Name = "Milo"',
    'SELECT r FROM Reference r WHERE NOT r.Publisher = "SIAM"',
    'SELECT r FROM Reference r WHERE NOT r.Authors.Name.Last_Name = "Chang"',
    'SELECT r FROM Reference r WHERE r.Year <> "1982"',
    "SELECT r FROM Reference r WHERE r.Editors.Name = r.Authors.Name",
    "SELECT r FROM Reference r "
    "WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name",
    "SELECT r.Key FROM Reference r",
    'SELECT r.Authors.Name.Last_Name FROM Reference r WHERE r.Year = "1982"',
    'SELECT r.Key, r.Year FROM Reference r WHERE r.Publisher = "ACM"',
    "SELECT r FROM Reference r",
    'SELECT r FROM Reference r WHERE r.Abstract = "Taylor"',
    'SELECT r FROM Reference r WHERE r.Referred.RefKey = "Chan85f"',
    # Multi-variable joins (Section 5.2's closing discussion).
    "SELECT r1 FROM Reference r1, Reference r2 "
    'WHERE r1.Referred.RefKey = r2.Key AND r2.Year = "1982"',
    "SELECT r1.Key, r2.Key FROM Reference r1, Reference r2 "
    "WHERE r1.Referred.RefKey = r2.Key "
    'AND r2.Authors.Name.Last_Name = "Chang"',
]

CONFIGS = {
    "full": IndexConfig.full(),
    "paper-partial": IndexConfig.partial({"Reference", "Key", "Last_Name"}),
    "authors-only": IndexConfig.partial({"Reference", "Authors", "Last_Name"}),
    "scoped": IndexConfig.partial({"Reference", "Key"}).with_scoped(
        "Last_Name", "Authors"
    ),
    "no-words": IndexConfig.full(word_index=False),
    "minimal": IndexConfig.partial({"Reference"}),
}


@pytest.fixture(scope="module")
def engines():
    text = generate_bibtex(entries=35, seed=11, self_edited_rate=0.25)
    schema = bibtex_schema()
    return {name: FileQueryEngine(schema, text, config) for name, config in CONFIGS.items()}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("query", BIBTEX_QUERIES)
def test_engine_matches_baseline(engines, config_name, query):
    engine = engines[config_name]
    result = engine.query(query)
    baseline = engine.baseline_query(query)
    assert result.canonical_rows() == baseline.canonical_rows(), (
        f"[{config_name}] {query}\nplan: {engine.explain(query)}"
    )


@pytest.mark.parametrize("query", BIBTEX_QUERIES)
def test_exact_plans_really_are_exact(engines, query):
    """When a plan claims exactness, the candidate regions equal the answer
    regions (no filtering happened)."""
    for config_name, engine in engines.items():
        result = engine.query(query)
        if result.plan.exact and result.stats.strategy in (
            "index-exact",
            "index-candidates",
        ):
            assert result.stats.objects_filtered_out == 0, (
                f"[{config_name}] {query} claimed exact but filtered"
            )


def test_candidates_are_supersets(engines):
    """Section 6: the candidate set is a superset of the answer regions."""
    for config_name, engine in engines.items():
        for query in BIBTEX_QUERIES:
            result = engine.query(query)
            if result.stats.strategy in ("index-exact", "index-candidates"):
                assert result.stats.candidate_regions >= len(result.regions), (
                    f"[{config_name}] {query}"
                )
