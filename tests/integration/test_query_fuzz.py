"""Randomized query fuzzing: engine == baseline, always.

Generates random (but well-formed) XSQL queries over the BibTeX schema —
random attribute paths, star/plain variables, constants sampled from the
corpus so matches actually occur, boolean combinations, joins — and checks
that every index configuration returns exactly the standard-database
pipeline's answer.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import FileQueryEngine
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

CORPUS = generate_bibtex(entries=18, seed=101, self_edited_rate=0.2)

CONFIGS = [
    IndexConfig.full(),
    IndexConfig.partial({"Reference", "Key", "Last_Name"}),
    IndexConfig.partial({"Reference", "Authors", "Last_Name", "Year"}),
    IndexConfig.partial({"Reference"}),
    IndexConfig.partial({"Reference", "Key"}).with_scoped("Last_Name", "Authors"),
    IndexConfig.full(word_index=False),
]

# Paths through the BibTeX attribute structure, as (rendered-steps) pools.
CONCRETE_PATHS = [
    "Key",
    "Year",
    "Publisher",
    "Pages",
    "Authors.Name.Last_Name",
    "Authors.Name.First_Name",
    "Editors.Name.Last_Name",
    "Keywords.Keyword",
    "Referred.RefKey",
    "Title",
    "Abstract",
]
VARIABLE_PATHS = [
    "*X.Last_Name",
    "*X.Keyword",
    "X.Name.Last_Name",
    "*Y.First_Name",
]
CONSTANTS = [
    "Chang", "Corliss", "Milo", "SIAM", "ACM", "1982", "1990",
    "Taylor series", "region algebra", "Chan85f", "nonexistent-value",
]


def _random_condition(rng: random.Random, depth: int = 0) -> str:
    roll = rng.random()
    if depth < 2 and roll < 0.25:
        op = rng.choice(["AND", "OR"])
        return (
            f"({_random_condition(rng, depth + 1)} {op} "
            f"{_random_condition(rng, depth + 1)})"
        )
    if depth < 2 and roll < 0.35:
        return f"NOT ({_random_condition(rng, depth + 1)})"
    if roll < 0.45:
        left = rng.choice(CONCRETE_PATHS)
        right = rng.choice(CONCRETE_PATHS)
        return f"r.{left} = r.{right}"
    path = rng.choice(CONCRETE_PATHS + VARIABLE_PATHS)
    literal = rng.choice(CONSTANTS)
    roll = rng.random()
    if roll < 0.1 and " " not in literal:
        return f'r.{path} LIKE "{literal[: max(1, len(literal) // 2)]}*"'
    op = "=" if roll < 0.9 else "<>"
    return f'r.{path} {op} "{literal}"'


def _random_query(rng: random.Random) -> str:
    if rng.random() < 0.7:
        select = "r"
    else:
        select = "r." + rng.choice(CONCRETE_PATHS)
    query = f"SELECT {select} FROM Reference r"
    if rng.random() < 0.9:
        query += f" WHERE {_random_condition(rng)}"
    return query


@pytest.fixture(scope="module")
def engines():
    schema = bibtex_schema()
    return [FileQueryEngine(schema, CORPUS, config) for config in CONFIGS]


@given(st.integers(0, 100_000))
@settings(max_examples=60, deadline=None)
def test_random_queries_match_baseline(engines, seed):
    rng = random.Random(seed)
    query = _random_query(rng)
    engine = engines[rng.randrange(len(engines))]
    result = engine.query(query)
    baseline = engine.baseline_query(query)
    assert result.canonical_rows() == baseline.canonical_rows(), (
        f"query: {query}\nplan:\n{engine.explain(query)}"
    )


@given(st.integers(0, 100_000))
@settings(max_examples=25, deadline=None)
def test_random_multi_variable_queries_match_baseline(engines, seed):
    rng = random.Random(seed)
    join_path = rng.choice(["Referred.RefKey", "Key", "Year"])
    other_path = rng.choice(["Key", "Year"])
    condition = f"r1.{join_path} = r2.{other_path}"
    if rng.random() < 0.6:
        condition += f" AND {_random_condition(rng).replace('r.', 'r2.')}"
    select = rng.choice(["r1", "r1.Key, r2.Key"])
    query = f"SELECT {select} FROM Reference r1, Reference r2 WHERE {condition}"
    engine = engines[rng.randrange(len(engines))]
    result = engine.query(query)
    baseline = engine.baseline_query(query)
    assert result.canonical_rows() == baseline.canonical_rows(), (
        f"query: {query}"
    )
