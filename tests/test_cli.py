"""The command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workloads.bibtex import generate_bibtex


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "refs.bib"
    path.write_text(generate_bibtex(entries=12, seed=4))
    return str(path)


class TestGenerate:
    def test_generate_writes_corpus(self, capsys):
        assert main(["generate", "--workload", "bibtex", "--entries", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("@INCOLLECTION{") == 3

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["generate", "--workload", "nope"])


class TestQuery:
    def test_query_prints_rows(self, corpus_file, capsys):
        code = main(
            [
                "query",
                "--workload",
                "bibtex",
                "--file",
                corpus_file,
                "SELECT r.Key FROM Reference r",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 12
        assert "12 row(s)" in captured.err

    def test_query_renders_objects(self, corpus_file, capsys):
        main(
            [
                "query",
                "--workload",
                "bibtex",
                "--file",
                corpus_file,
                'SELECT r FROM Reference r WHERE r.Year = "0000"',
            ]
        )
        captured = capsys.readouterr()
        assert "0 row(s)" in captured.err

    def test_partial_option(self, corpus_file, capsys):
        main(
            [
                "query",
                "--workload",
                "bibtex",
                "--file",
                corpus_file,
                "--partial",
                "Reference,Key,Last_Name",
                'SELECT r.Key FROM Reference r WHERE r.*X.Last_Name = "Chang"',
            ]
        )
        captured = capsys.readouterr()
        assert "row(s)" in captured.err

    def test_requires_file_or_index(self):
        with pytest.raises(SystemExit):
            main(["query", "--workload", "bibtex", "SELECT r FROM Reference r"])

    def test_query_json(self, corpus_file, capsys):
        code = main(
            [
                "query",
                "--workload",
                "bibtex",
                "--file",
                corpus_file,
                "--json",
                "SELECT r.Key FROM Reference r",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 12
        assert payload["stats"]["rows"] == 12
        assert payload["stats"]["strategy"]
        assert payload["stats"]["trace"]["name"] == "query"


class TestExplain:
    def test_explain_shows_plan(self, corpus_file, capsys):
        main(
            [
                "explain",
                "--workload",
                "bibtex",
                "--file",
                corpus_file,
                'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"',
            ]
        )
        out = capsys.readouterr().out
        assert "strategy:" in out
        assert "optimized:" in out


class TestAnalyze:
    QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'

    def test_analyze_text(self, corpus_file, capsys):
        code = main(
            ["analyze", "--workload", "bibtex", "--file", corpus_file, self.QUERY]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE")
        assert "plan nodes (estimated cost | measured):" in out
        assert "pipeline stages (measured):" in out

    def test_analyze_json(self, corpus_file, capsys):
        code = main(
            [
                "analyze",
                "--workload",
                "bibtex",
                "--file",
                corpus_file,
                "--json",
                self.QUERY,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query"]
        assert payload["strategy"]
        assert payload["nodes"]
        assert payload["stages"]["name"] == "query"
        assert "stats" in payload


class TestIndexAndStats:
    def test_index_then_query(self, corpus_file, tmp_path, capsys):
        index_dir = str(tmp_path / "idx")
        assert (
            main(
                [
                    "index",
                    "--workload",
                    "bibtex",
                    "--file",
                    corpus_file,
                    "--out",
                    index_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    "--workload",
                    "bibtex",
                    "--index",
                    index_dir,
                    "SELECT r.Key FROM Reference r",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 12

    def test_stats(self, corpus_file, capsys):
        assert (
            main(["stats", "--workload", "bibtex", "--file", corpus_file]) == 0
        )
        out = capsys.readouterr().out
        assert "region entries" in out

    def test_stats_json(self, corpus_file, capsys):
        assert (
            main(
                ["stats", "--workload", "bibtex", "--file", corpus_file, "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["index"]["total_region_entries"] > 0
        assert "cache" in payload
        assert "cache_config" in payload


class TestLive:
    @pytest.fixture
    def live_index(self, corpus_file, tmp_path):
        directory = tmp_path / "lidx"
        assert main(
            [
                "shard", "build", "--workload", "bibtex",
                "--file", corpus_file, "--shards", "3",
                "--out", str(directory),
            ]
        ) == 0
        return str(directory)

    @pytest.fixture
    def record(self):
        from repro.workloads.bibtex import bibtex_schema

        text = generate_bibtex(entries=1, seed=77)
        schema = bibtex_schema()
        (child,) = list(schema.parse(text).children)
        return text[child.start : child.end] + "\n\n"

    def test_append_then_status_then_compact(self, live_index, record, capsys):
        assert main(
            [
                "live", "append", "--workload", "bibtex",
                "--index", live_index, "--record", record,
            ]
        ) == 0
        assert "appended 1 record(s) through seq 1" in capsys.readouterr().err

        assert main(
            ["live", "status", "--workload", "bibtex", "--index", live_index]
        ) == 0
        assert "1 pending record(s)" in capsys.readouterr().out

        assert main(
            ["live", "compact", "--workload", "bibtex", "--index", live_index]
        ) == 0
        assert "folded 1 record(s)" in capsys.readouterr().err

        assert main(
            [
                "live", "status", "--workload", "bibtex",
                "--index", live_index, "--json",
            ]
        ) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["pending_records"] == 0
        assert status["next_seq"] == 2

    def test_appended_rows_reach_queries(self, live_index, record, capsys):
        main(
            [
                "live", "append", "--workload", "bibtex",
                "--index", live_index, "--record", record, "--compact",
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "shard", "query", "--workload", "bibtex",
                "--index", live_index, "SELECT r.Key FROM Reference r",
            ]
        ) == 0
        assert "13 row(s)" in capsys.readouterr().err

    def test_bad_record_is_a_typed_cli_error(self, live_index, capsys):
        code = main(
            [
                "live", "append", "--workload", "bibtex",
                "--index", live_index, "--record", "not bibtex",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err
