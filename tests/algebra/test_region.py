"""Region and RegionSet basics."""

import pytest
from hypothesis import given, strategies as st

from repro.algebra.region import Instance, Region, RegionSet
from repro.errors import RegionError

spans = st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
    lambda pair: Region(min(pair), max(pair))
)


class TestRegion:
    def test_invalid_end_before_start(self):
        with pytest.raises(RegionError):
            Region(5, 3)

    def test_negative_start(self):
        with pytest.raises(RegionError):
            Region(-1, 3)

    def test_includes_is_nonstrict(self):
        assert Region(2, 8).includes(Region(2, 8))
        assert Region(2, 8).includes(Region(3, 7))
        assert not Region(2, 8).includes(Region(1, 7))

    def test_strictly_includes(self):
        assert Region(2, 8).strictly_includes(Region(3, 7))
        assert not Region(2, 8).strictly_includes(Region(2, 8))

    def test_overlaps(self):
        assert Region(0, 5).overlaps(Region(4, 9))
        assert not Region(0, 5).overlaps(Region(5, 9))

    def test_len_and_text(self):
        region = Region(2, 6)
        assert len(region) == 4
        assert region.text("abcdefgh") == "cdef"

    def test_ordering_by_start_then_end(self):
        assert sorted([Region(3, 4), Region(1, 9), Region(1, 2)]) == [
            Region(1, 2),
            Region(1, 9),
            Region(3, 4),
        ]

    def test_match_point_zero_width(self):
        point = Region(5, 5)
        assert len(point) == 0
        assert Region(0, 9).includes(point)


class TestRegionSet:
    def test_deduplicates_and_sorts(self):
        regions = RegionSet([Region(5, 6), Region(1, 2), Region(5, 6)])
        assert list(regions) == [Region(1, 2), Region(5, 6)]
        assert len(regions) == 2

    def test_contains(self):
        regions = RegionSet.of((1, 2), (5, 6))
        assert Region(1, 2) in regions
        assert Region(1, 3) not in regions
        assert "nope" not in regions

    def test_equality_and_hash(self):
        assert RegionSet.of((1, 2)) == RegionSet([Region(1, 2)])
        assert hash(RegionSet.of((1, 2))) == hash(RegionSet.of((1, 2)))

    def test_empty_is_falsy(self):
        assert not RegionSet.empty()
        assert RegionSet.of((0, 1))

    def test_any_including(self):
        regions = RegionSet.of((0, 10), (20, 30))
        assert regions.any_including(Region(2, 8))
        assert regions.any_including(Region(0, 10))
        assert not regions.any_including(Region(8, 22))

    def test_any_strictly_including_excludes_same_extent(self):
        regions = RegionSet.of((0, 10))
        assert not regions.any_strictly_including(Region(0, 10))
        assert regions.any_strictly_including(Region(1, 9))

    def test_any_included_in(self):
        regions = RegionSet.of((2, 4), (12, 14))
        assert regions.any_included_in(Region(0, 5))
        assert not regions.any_included_in(Region(5, 11))

    def test_iter_included_in(self):
        regions = RegionSet.of((2, 4), (3, 5), (12, 14))
        inside = list(regions.iter_included_in(Region(0, 6)))
        assert inside == [Region(2, 4), Region(3, 5)]

    def test_any_strictly_between(self):
        regions = RegionSet.of((0, 10), (2, 8), (3, 5))
        assert regions.any_strictly_between(Region(0, 10), Region(3, 5))
        assert not regions.any_strictly_between(Region(2, 8), Region(3, 5))

    def test_strictly_between_ignores_endpoint_extents(self):
        regions = RegionSet.of((0, 10), (3, 5))
        assert not regions.any_strictly_between(Region(0, 10), Region(3, 5))

    @given(st.lists(spans, max_size=15), spans)
    def test_any_including_matches_bruteforce(self, regions, target):
        region_set = RegionSet(regions)
        expected = any(r.includes(target) for r in region_set)
        assert region_set.any_including(target) == expected

    @given(st.lists(spans, max_size=15), spans)
    def test_any_strictly_including_matches_bruteforce(self, regions, target):
        region_set = RegionSet(regions)
        expected = any(r != target and r.includes(target) for r in region_set)
        assert region_set.any_strictly_including(target) == expected

    @given(st.lists(spans, max_size=15), spans)
    def test_any_included_in_matches_bruteforce(self, regions, container):
        region_set = RegionSet(regions)
        expected = any(container.includes(r) for r in region_set)
        assert region_set.any_included_in(container) == expected

    @given(st.lists(spans, max_size=12), spans, spans)
    def test_any_strictly_between_matches_bruteforce(self, regions, outer, inner):
        region_set = RegionSet(regions)
        expected = any(
            outer.includes(t) and t.includes(inner) and t != outer and t != inner
            for t in region_set
        )
        assert region_set.any_strictly_between(outer, inner) == expected


class TestInstance:
    def test_assign_and_get(self):
        instance = Instance({"A": RegionSet.of((0, 5))})
        assert instance.get("A") == RegionSet.of((0, 5))
        assert instance.get("missing") == RegionSet.empty()
        assert "A" in instance
        assert "missing" not in instance

    def test_all_regions_merges_distinct_extents(self):
        instance = Instance(
            {"A": RegionSet.of((0, 5), (6, 9)), "B": RegionSet.of((0, 5), (2, 3))}
        )
        assert list(instance.all_regions()) == [
            Region(0, 5),
            Region(2, 3),
            Region(6, 9),
        ]

    def test_all_regions_cache_invalidated_on_assign(self):
        instance = Instance({"A": RegionSet.of((0, 5))})
        assert len(instance.all_regions()) == 1
        instance.assign("B", RegionSet.of((7, 8)))
        assert len(instance.all_regions()) == 2

    def test_total_region_count_counts_multiplicity(self):
        instance = Instance(
            {"A": RegionSet.of((0, 5)), "B": RegionSet.of((0, 5))}
        )
        assert instance.total_region_count() == 2

    def test_restrict(self):
        instance = Instance(
            {"A": RegionSet.of((0, 5)), "B": RegionSet.of((7, 8))}
        )
        restricted = instance.restrict(["A"])
        assert restricted.names == ("A",)
        assert restricted.get("B") == RegionSet.empty()

    def test_accepts_iterables(self):
        instance = Instance({"A": [Region(0, 2)]})
        assert instance.get("A") == RegionSet.of((0, 2))
