"""The paper's layered while-loop program for ⊃d (Section 3.1)."""

import random

from repro.algebra import ops
from repro.algebra.counters import OperationCounters
from repro.algebra.direct import is_laminar, layered_directly_including
from repro.algebra.region import Instance, RegionSet
from tests.support import instance_from_rig, random_rig


class TestIsLaminar:
    def test_nested_is_laminar(self):
        instance = Instance(
            {"A": RegionSet.of((0, 10)), "B": RegionSet.of((2, 8), (1, 9))}
        )
        assert is_laminar(instance)

    def test_partial_overlap_is_not_laminar(self):
        instance = Instance({"A": RegionSet.of((0, 5), (3, 8))})
        assert not is_laminar(instance)

    def test_disjoint_is_laminar(self):
        instance = Instance({"A": RegionSet.of((0, 5), (6, 8))})
        assert is_laminar(instance)

    def test_generated_parse_like_instances_are_laminar(self):
        rng = random.Random(5)
        for _ in range(10):
            graph = random_rig(rng, size=4)
            _, instance = instance_from_rig(graph, rng)
            assert is_laminar(instance)


class TestLayeredProgram:
    def test_simple_direct_inclusion(self):
        instance = Instance(
            {
                "A": RegionSet.of((0, 20)),
                "B": RegionSet.of((2, 18)),
                "C": RegionSet.of((4, 8)),
            }
        )
        a, b, c = instance.get("A"), instance.get("B"), instance.get("C")
        assert layered_directly_including(a, b, instance) == a
        assert layered_directly_including(b, c, instance) == b
        assert layered_directly_including(a, c, instance) == RegionSet.empty()

    def test_nested_layers_of_same_name(self):
        # Self-nested sections: outer (0,30) contains inner (5,25) contains
        # word (10,12).
        instance = Instance(
            {
                "S": RegionSet.of((0, 30), (5, 25)),
                "W": RegionSet.of((10, 12)),
            }
        )
        s, w = instance.get("S"), instance.get("W")
        # Only the inner section directly includes the word.
        assert layered_directly_including(s, w, instance) == RegionSet.of((5, 25))

    def test_matches_pairwise_semantics_on_laminar_instances(self):
        rng = random.Random(11)
        for _ in range(20):
            graph = random_rig(rng, size=5)
            _, instance = instance_from_rig(graph, rng)
            names = sorted(instance.names)
            left = instance.get(rng.choice(names))
            right = instance.get(rng.choice(names))
            expected = ops.directly_including(left, right, instance)
            assert layered_directly_including(left, right, instance) == expected

    def test_layered_program_is_more_expensive(self):
        rng = random.Random(3)
        graph = random_rig(rng, size=5)
        _, instance = instance_from_rig(graph, rng, top_regions=8, max_depth=5)
        names = sorted(instance.names)
        left, right = instance.get(names[0]), instance.get(names[-1])
        direct_counters = OperationCounters()
        ops.directly_including(left, right, instance, direct_counters)
        layered_counters = OperationCounters()
        layered_directly_including(left, right, instance, layered_counters)
        # The layered program spends at least as many operator applications:
        # one ω/−/⊃ round per nesting layer (the point of Section 3.1).
        assert layered_counters.total_operations >= direct_counters.total_operations

    def test_empty_inputs(self):
        instance = Instance({"A": RegionSet.of((0, 5))})
        empty = RegionSet.empty()
        assert layered_directly_including(empty, instance.get("A"), instance) == empty
        assert layered_directly_including(instance.get("A"), empty, instance) == empty
