"""The instrumented expression evaluator."""

import pytest

from repro.algebra.ast import parse_expression
from repro.algebra.evaluator import EmptyWordLookup, Evaluator
from repro.algebra.region import Instance, RegionSet
from repro.errors import UnknownRegionNameError
from repro.index.word_index import WordIndex

TEXT = '(alpha (beta) (beta gamma)) (delta)'
# A: whole groups; B: inner groups
INSTANCE = Instance(
    {
        "A": RegionSet.of((0, 27), (28, 35)),
        "B": RegionSet.of((7, 13), (14, 26)),
        "W": RegionSet.of((1, 6), (8, 12), (15, 19), (20, 25), (29, 34)),
    }
)


@pytest.fixture()
def evaluator() -> Evaluator:
    return Evaluator(INSTANCE, word_lookup=WordIndex(TEXT))


class TestEvaluate:
    def test_name(self, evaluator):
        assert evaluator.evaluate(parse_expression("A")) == INSTANCE.get("A")

    def test_unknown_name_strict(self, evaluator):
        with pytest.raises(UnknownRegionNameError):
            evaluator.evaluate(parse_expression("Missing"))

    def test_unknown_name_lenient(self):
        lenient = Evaluator(INSTANCE, strict_names=False)
        assert lenient.evaluate(parse_expression("Missing")) == RegionSet.empty()

    def test_inclusion(self, evaluator):
        result = evaluator.evaluate(parse_expression("A > B"))
        assert result == RegionSet.of((0, 27))

    def test_direct_inclusion_blocked_by_b(self, evaluator):
        # A ⊃d W fails where a B region sits between.
        result = evaluator.evaluate(parse_expression("A >d W"))
        # (0,27) directly includes the word at (1,6); (28,35) directly
        # includes (29,34).
        assert result == INSTANCE.get("A")

    def test_included(self, evaluator):
        result = evaluator.evaluate(parse_expression("B < A"))
        assert result == INSTANCE.get("B")

    def test_selection_exact(self, evaluator):
        result = evaluator.evaluate(parse_expression("sigma[beta](B)"))
        assert result == RegionSet.of((7, 13))

    def test_selection_contains(self, evaluator):
        result = evaluator.evaluate(parse_expression("sigmac[beta](B)"))
        assert result == RegionSet.of((7, 13), (14, 26))

    def test_set_operations(self, evaluator):
        result = evaluator.evaluate(parse_expression("A | B"))
        assert len(result) == 4
        result = evaluator.evaluate(parse_expression("(A | B) - B"))
        assert result == INSTANCE.get("A")

    def test_innermost_outermost(self, evaluator):
        result = evaluator.evaluate(parse_expression("innermost(A | B)"))
        assert result == RegionSet.of((7, 13), (14, 26), (28, 35))
        result = evaluator.evaluate(parse_expression("outermost(A | B)"))
        assert result == INSTANCE.get("A")

    def test_chained_query(self, evaluator):
        result = evaluator.evaluate(parse_expression("A > B > sigma[gamma](W)"))
        assert result == RegionSet.of((0, 27))

    def test_empty_word_lookup_makes_selection_empty(self):
        empty = Evaluator(INSTANCE, word_lookup=EmptyWordLookup())
        assert empty.evaluate(parse_expression("sigmac[beta](B)")) == RegionSet.empty()


class TestRun:
    def test_run_returns_private_counters(self, evaluator):
        stats = evaluator.run(parse_expression("A > B"))
        assert stats.result == RegionSet.of((0, 27))
        assert stats.counters.operations["⊃"] == 1
        assert stats.counters.operations["name"] == 2

    def test_run_does_not_pollute_shared_counters(self, evaluator):
        before = evaluator.counters.total_operations
        evaluator.run(parse_expression("A > B"))
        assert evaluator.counters.total_operations == before

    def test_direct_inclusion_costs_more_comparisons(self, evaluator):
        simple = evaluator.run(parse_expression("A > W")).counters
        direct = evaluator.run(parse_expression("A >d W")).counters
        assert direct.comparisons >= simple.comparisons
