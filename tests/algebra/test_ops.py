"""Region-algebra operators (Section 3.1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import ops
from repro.algebra.counters import OperationCounters
from repro.algebra.region import Instance, Region, RegionSet
from repro.index.word_index import WordIndex
from tests.support import (
    brute_force_included,
    brute_force_including,
    brute_force_innermost,
    brute_force_outermost,
    random_regionset,
)

spans = st.tuples(st.integers(0, 30), st.integers(0, 30)).map(
    lambda pair: Region(min(pair), max(pair))
)
region_sets = st.lists(spans, max_size=10).map(RegionSet)


class TestSetOperations:
    def test_union(self):
        left = RegionSet.of((0, 1), (2, 3))
        right = RegionSet.of((2, 3), (4, 5))
        assert ops.union(left, right) == RegionSet.of((0, 1), (2, 3), (4, 5))

    def test_intersect(self):
        left = RegionSet.of((0, 1), (2, 3))
        right = RegionSet.of((2, 3), (4, 5))
        assert ops.intersect(left, right) == RegionSet.of((2, 3))

    def test_difference(self):
        left = RegionSet.of((0, 1), (2, 3))
        right = RegionSet.of((2, 3))
        assert ops.difference(left, right) == RegionSet.of((0, 1))

    @given(region_sets, region_sets)
    def test_union_matches_python_sets(self, left, right):
        expected = RegionSet(set(left.regions) | set(right.regions))
        assert ops.union(left, right) == expected

    @given(region_sets, region_sets)
    def test_intersect_matches_python_sets(self, left, right):
        expected = RegionSet(set(left.regions) & set(right.regions))
        assert ops.intersect(left, right) == expected

    @given(region_sets, region_sets)
    def test_difference_matches_python_sets(self, left, right):
        expected = RegionSet(set(left.regions) - set(right.regions))
        assert ops.difference(left, right) == expected


class TestInclusionJoins:
    def test_including_example(self):
        # The paper's R ⊃ S: regions of R including some region of S.
        containers = RegionSet.of((0, 10), (20, 30))
        contents = RegionSet.of((2, 4), (40, 45))
        assert ops.including(containers, contents) == RegionSet.of((0, 10))

    def test_included_example(self):
        small = RegionSet.of((2, 4), (40, 45))
        big = RegionSet.of((0, 10))
        assert ops.included(small, big) == RegionSet.of((2, 4))

    def test_inclusion_is_nonstrict(self):
        regions = RegionSet.of((0, 10))
        assert ops.including(regions, regions) == regions
        assert ops.included(regions, regions) == regions

    @given(region_sets, region_sets)
    def test_including_matches_bruteforce(self, left, right):
        assert ops.including(left, right) == brute_force_including(left, right)

    @given(region_sets, region_sets)
    def test_included_matches_bruteforce(self, left, right):
        assert ops.included(left, right) == brute_force_included(left, right)


class TestExtremal:
    def test_innermost(self):
        regions = RegionSet.of((0, 10), (2, 8), (3, 5), (20, 25))
        assert ops.innermost(regions) == RegionSet.of((3, 5), (20, 25))

    def test_outermost(self):
        regions = RegionSet.of((0, 10), (2, 8), (3, 5), (20, 25))
        assert ops.outermost(regions) == RegionSet.of((0, 10), (20, 25))

    @given(region_sets)
    def test_innermost_matches_bruteforce(self, regions):
        assert ops.innermost(regions) == brute_force_innermost(regions)

    @given(region_sets)
    def test_outermost_matches_bruteforce(self, regions):
        assert ops.outermost(regions) == brute_force_outermost(regions)

    @given(region_sets)
    def test_extremal_results_are_subsets(self, regions):
        assert set(ops.innermost(regions)) <= set(regions.regions)
        assert set(ops.outermost(regions)) <= set(regions.regions)


class TestDirectInclusion:
    def _instance(self) -> Instance:
        # A(0,20) contains B(2,18) contains C(4,8); D(10,12) inside B too.
        return Instance(
            {
                "A": RegionSet.of((0, 20)),
                "B": RegionSet.of((2, 18)),
                "C": RegionSet.of((4, 8)),
                "D": RegionSet.of((10, 12)),
            }
        )

    def test_direct_requires_nothing_between(self):
        instance = self._instance()
        a, c = instance.get("A"), instance.get("C")
        assert ops.directly_including(a, c, instance) == RegionSet.empty()
        b = instance.get("B")
        assert ops.directly_including(a, b, instance) == RegionSet.of((0, 20))
        assert ops.directly_including(b, c, instance) == b

    def test_directly_included_mirror(self):
        instance = self._instance()
        b, c = instance.get("B"), instance.get("C")
        assert ops.directly_included(c, b, instance) == c
        a = instance.get("A")
        assert ops.directly_included(c, a, instance) == RegionSet.empty()

    def test_coincident_extents_are_direct(self):
        # Authors list whose single Name spans the whole list.
        instance = Instance(
            {"Authors": RegionSet.of((0, 10)), "Name": RegionSet.of((0, 10))}
        )
        result = ops.directly_including(
            instance.get("Authors"), instance.get("Name"), instance
        )
        assert result == RegionSet.of((0, 10))

    def test_matches_bruteforce_on_random_instances(self):
        rng = random.Random(42)
        for _ in range(25):
            instance = Instance(
                {
                    "X": random_regionset(rng, count=5),
                    "Y": random_regionset(rng, count=5),
                    "Z": random_regionset(rng, count=5),
                }
            )
            left, right = instance.get("X"), instance.get("Y")
            assert ops.directly_including(left, right, instance) == (
                ops.brute_force_directly_including(left, right, instance)
            )
            assert ops.directly_included(left, right, instance) == (
                ops.brute_force_directly_included(left, right, instance)
            )


class TestSelection:
    def _word_index(self, text: str) -> WordIndex:
        return WordIndex(text)

    def test_exact_selects_single_word_regions(self):
        text = 'x "Chang" y "Chang Corliss"'
        words = self._word_index(text)
        regions = RegionSet.of((3, 8), (13, 26))  # "Chang" and "Chang Corliss"
        selected = ops.select_word(
            regions,
            words.occurrences("Chang"),
            mode="exact",
            token_counter=words.token_count_between,
        )
        assert selected == RegionSet.of((3, 8))

    def test_contains_selects_any_occurrence(self):
        text = 'x "Chang" y "Chang Corliss"'
        words = self._word_index(text)
        regions = RegionSet.of((3, 8), (13, 26))
        selected = ops.select_word(
            regions, words.occurrences("Chang"), mode="contains"
        )
        assert selected == regions

    def test_no_occurrences(self):
        words = self._word_index("nothing here")
        regions = RegionSet.of((0, 7))
        assert (
            ops.select_word(regions, words.occurrences("absent"), mode="contains")
            == RegionSet.empty()
        )

    def test_exact_requires_token_counter(self):
        with pytest.raises(ValueError):
            ops.select_word(RegionSet.empty(), RegionSet.empty(), mode="exact")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            ops.select_word(RegionSet.empty(), RegionSet.empty(), mode="fuzzy")


class TestCounters:
    def test_operators_record_work(self):
        counters = OperationCounters()
        left = RegionSet.of((0, 10))
        right = RegionSet.of((2, 4))
        ops.including(left, right, counters)
        ops.union(left, right, counters)
        assert counters.operations["⊃"] == 1
        assert counters.operations["∪"] == 1
        assert counters.regions_out >= 1
        assert counters.total_operations == 2
