"""Operation counters."""

from repro.algebra.counters import OperationCounters


class TestCounters:
    def test_record(self):
        counters = OperationCounters()
        counters.record("⊃", comparisons=5, produced=3)
        counters.record("⊃", comparisons=2, produced=1)
        counters.record("σ", comparisons=1)
        assert counters.operations["⊃"] == 2
        assert counters.operations["σ"] == 1
        assert counters.comparisons == 8
        assert counters.regions_out == 4
        assert counters.total_operations == 3

    def test_scan(self):
        counters = OperationCounters()
        counters.scan(100)
        counters.scan(50)
        assert counters.bytes_scanned == 150

    def test_merge(self):
        first = OperationCounters()
        first.record("⊃", comparisons=5)
        first.scan(10)
        second = OperationCounters()
        second.record("⊃", comparisons=3)
        second.record("∪", produced=2)
        second.scan(20)
        first.merge(second)
        assert first.operations["⊃"] == 2
        assert first.operations["∪"] == 1
        assert first.comparisons == 8
        assert first.bytes_scanned == 30

    def test_snapshot(self):
        counters = OperationCounters()
        counters.record("⊃d", comparisons=7, produced=2)
        counters.scan(64)
        snapshot = counters.snapshot()
        assert snapshot["op:⊃d"] == 1
        assert snapshot["comparisons"] == 7
        assert snapshot["regions_out"] == 2
        assert snapshot["bytes_scanned"] == 64

    def test_reset(self):
        counters = OperationCounters()
        counters.record("⊃", comparisons=5, produced=3)
        counters.scan(9)
        counters.reset()
        assert counters.total_operations == 0
        assert counters.comparisons == 0
        assert counters.regions_out == 0
        assert counters.bytes_scanned == 0
