"""Expression AST: builders, pretty printing, parsing."""

import pytest

from repro.algebra.ast import (
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
    chain,
    difference,
    directly_included,
    directly_including,
    included,
    including,
    innermost,
    intersect,
    name,
    outermost,
    parse_expression,
    pretty,
    select,
    union,
)
from repro.errors import AlgebraError


class TestBuilders:
    def test_name(self):
        assert name("Reference") == Name("Reference")

    def test_select_coerces_strings(self):
        node = select("Last_Name", "Chang")
        assert node == Select(Name("Last_Name"), "Chang", "exact")

    def test_inclusion_builders(self):
        assert including("A", "B").op == ">"
        assert directly_including("A", "B").op == ">d"
        assert included("A", "B").op == "<"
        assert directly_included("A", "B").op == "<d"

    def test_set_builders(self):
        assert union("A", "B").kind == "union"
        assert intersect("A", "B").kind == "intersect"
        assert difference("A", "B").kind == "difference"

    def test_extremal_builders(self):
        assert innermost("A") == Innermost(Name("A"))
        assert outermost("A") == Outermost(Name("A"))

    def test_invalid_operator(self):
        with pytest.raises(AlgebraError):
            Inclusion(op="??", left=Name("A"), right=Name("B"))

    def test_invalid_selection_mode(self):
        with pytest.raises(AlgebraError):
            Select(Name("A"), "w", mode="bogus")


class TestChain:
    def test_right_grouping(self):
        expression = chain(["A", "B", "C"], op=">d")
        assert expression == Inclusion(
            ">d", Name("A"), Inclusion(">d", Name("B"), Name("C"))
        )

    def test_chain_with_selection(self):
        expression = chain(["Reference", "Last_Name"], word="Chang")
        assert isinstance(expression, Inclusion)
        assert expression.right == Select(Name("Last_Name"), "Chang", "exact")

    def test_single_name(self):
        assert chain(["A"]) == Name("A")

    def test_empty_chain_rejected(self):
        with pytest.raises(AlgebraError):
            chain([])


class TestWalkAndNames:
    def test_region_names(self):
        expression = parse_expression("A > (B & sigma[w](C))")
        assert expression.region_names() == {"A", "B", "C"}

    def test_walk_preorder(self):
        expression = including("A", "B")
        kinds = [type(node).__name__ for node in expression.walk()]
        assert kinds == ["Inclusion", "Name", "Name"]


class TestParseExpression:
    def test_paper_example(self):
        expression = parse_expression(
            "Reference >d Authors >d Name >d sigma[Chang](Last_Name)"
        )
        assert expression == chain(
            ["Reference", "Authors", "Name", "Last_Name"], op=">d", word="Chang"
        )

    def test_right_associativity(self):
        assert parse_expression("A > B > C") == chain(["A", "B", "C"], op=">")

    def test_set_ops_left_associative(self):
        expression = parse_expression("A | B | C")
        assert isinstance(expression, SetOp)
        assert expression.left == SetOp("union", Name("A"), Name("B"))

    def test_mixed_ops_and_parens(self):
        expression = parse_expression("(A > B) & (C - D)")
        assert isinstance(expression, SetOp)
        assert expression.kind == "intersect"

    def test_sigmac_contains_mode(self):
        expression = parse_expression("sigmac[Chang](Abstract)")
        assert expression == Select(Name("Abstract"), "Chang", "contains")

    def test_innermost_outermost(self):
        assert parse_expression("innermost(A)") == Innermost(Name("A"))
        assert parse_expression("outermost(A > B)") == Outermost(
            including("A", "B")
        )

    def test_scoped_index_names(self):
        expression = parse_expression("Reference > sigma[w](Last_Name@Authors)")
        assert "Last_Name@Authors" in expression.region_names()

    def test_trailing_garbage_rejected(self):
        with pytest.raises(AlgebraError):
            parse_expression("A > B )")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(AlgebraError):
            parse_expression("(A > B")

    def test_empty_rejected(self):
        with pytest.raises(AlgebraError):
            parse_expression("")

    def test_bad_token_rejected(self):
        with pytest.raises(AlgebraError):
            parse_expression("A > #!?")


class TestPretty:
    def test_roundtrip_ascii(self):
        source = "Reference >d Authors > sigma[Chang](Last_Name)"
        expression = parse_expression(source)
        rendered = pretty(expression, unicode_symbols=False)
        assert parse_expression(rendered) == expression

    def test_unicode_symbols(self):
        expression = parse_expression("A >d sigma[w](B)")
        assert pretty(expression) == "A ⊃d σ[w](B)"

    def test_roundtrip_complex(self):
        source = "(A > B) & (C | sigmac[x](D)) - innermost(E)"
        expression = parse_expression(source)
        rendered = pretty(expression, unicode_symbols=False)
        assert parse_expression(rendered) == expression

    def test_str_uses_pretty(self):
        assert str(Name("A")) == "A"
