"""Algebraic laws of the region algebra (property-based).

These are the identities the optimizer and translator silently rely on:
set-operation laws, monotonicity of the inclusion joins, idempotence of the
extremal operators, and the containment relationships between selection
modes and between ``⊃``/``⊃d``.
"""

from hypothesis import given, strategies as st

from repro.algebra import ops
from repro.algebra.region import Instance, Region, RegionSet

spans = st.tuples(st.integers(0, 30), st.integers(0, 30)).map(
    lambda pair: Region(min(pair), max(pair))
)
region_sets = st.lists(spans, max_size=9).map(RegionSet)


class TestSetLaws:
    @given(region_sets, region_sets)
    def test_union_commutative(self, a, b):
        assert ops.union(a, b) == ops.union(b, a)

    @given(region_sets, region_sets)
    def test_intersect_commutative(self, a, b):
        assert ops.intersect(a, b) == ops.intersect(b, a)

    @given(region_sets, region_sets, region_sets)
    def test_union_associative(self, a, b, c):
        assert ops.union(ops.union(a, b), c) == ops.union(a, ops.union(b, c))

    @given(region_sets, region_sets, region_sets)
    def test_intersect_distributes_over_union(self, a, b, c):
        assert ops.intersect(a, ops.union(b, c)) == ops.union(
            ops.intersect(a, b), ops.intersect(a, c)
        )

    @given(region_sets, region_sets)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert ops.intersect(ops.difference(a, b), b) == RegionSet.empty()

    @given(region_sets)
    def test_idempotence(self, a):
        assert ops.union(a, a) == a
        assert ops.intersect(a, a) == a
        assert ops.difference(a, a) == RegionSet.empty()


class TestInclusionLaws:
    @given(region_sets, region_sets, region_sets)
    def test_including_monotone_in_right(self, left, small, extra):
        big = ops.union(small, extra)
        narrow = ops.including(left, small)
        wide = ops.including(left, big)
        assert set(narrow) <= set(wide)

    @given(region_sets, region_sets)
    def test_including_is_a_selection_of_left(self, left, right):
        assert set(ops.including(left, right)) <= set(left.regions)
        assert set(ops.included(left, right)) <= set(left.regions)

    @given(region_sets, region_sets)
    def test_direct_inclusion_subset_of_simple(self, left, right):
        instance = Instance({"L": left, "R": right})
        direct = ops.directly_including(left, right, instance)
        simple = ops.including(left, right)
        assert set(direct) <= set(simple)

    @given(region_sets, region_sets)
    def test_self_inclusion(self, left, right):
        # Non-strict containment: every region includes itself.
        assert ops.including(left, left) == left
        assert ops.included(left, left) == left

    @given(region_sets, region_sets)
    def test_inclusion_duality(self, left, right):
        # r ∈ (L ⊃ R) iff some s ∈ (R ⊂ {r}).  Spot-check via full sets:
        containers = ops.including(left, right)
        for container in containers:
            assert ops.included(right, RegionSet([container]))


class TestExtremalLaws:
    @given(region_sets)
    def test_idempotent(self, regions):
        inner = ops.innermost(regions)
        outer = ops.outermost(regions)
        assert ops.innermost(inner) == inner
        assert ops.outermost(outer) == outer

    @given(region_sets)
    def test_nonempty_preserved(self, regions):
        if regions:
            assert ops.innermost(regions)
            assert ops.outermost(regions)

    @given(region_sets)
    def test_extremal_of_extremal_cross(self, regions):
        # The outermost of the innermost set is the innermost set itself
        # when no two innermost regions nest (which they never do).
        inner = ops.innermost(regions)
        assert ops.outermost(inner) == inner
