"""Common-subexpression evaluation (Section 5.2)."""

from repro.algebra.ast import parse_expression
from repro.algebra.evaluator import Evaluator
from repro.algebra.region import Instance, RegionSet


def _instance() -> Instance:
    return Instance(
        {
            "A": RegionSet.of((0, 20), (30, 50)),
            "B": RegionSet.of((2, 8), (32, 40)),
            "C": RegionSet.of((3, 5)),
        }
    )


class TestMemoization:
    def test_shared_subexpression_evaluated_once(self):
        evaluator = Evaluator(_instance())
        expression = parse_expression("(A > B) & ((A > B) | (A > C))")
        evaluator.evaluate(expression)
        # "A > B" occurs twice but the ⊃ operator runs only for the distinct
        # subexpressions: A>B, A>C, plus the two set operations.
        assert evaluator.counters.operations["⊃"] == 2

    def test_without_memoization_everything_reruns(self):
        evaluator = Evaluator(_instance(), memoize=False)
        expression = parse_expression("(A > B) & ((A > B) | (A > C))")
        evaluator.evaluate(expression)
        assert evaluator.counters.operations["⊃"] == 3

    def test_memoized_results_are_correct(self):
        expression = parse_expression("(A > B) & ((A > B) | (A > C))")
        memoized = Evaluator(_instance()).evaluate(expression)
        plain = Evaluator(_instance(), memoize=False).evaluate(expression)
        assert memoized == plain

    def test_memo_survives_across_evaluations_of_same_evaluator(self):
        evaluator = Evaluator(_instance())
        expression = parse_expression("A > B")
        first = evaluator.evaluate(expression)
        count_after_first = evaluator.counters.operations["⊃"]
        second = evaluator.evaluate(expression)
        assert first == second
        assert evaluator.counters.operations["⊃"] == count_after_first

    def test_run_uses_fresh_counters_but_same_memo(self):
        evaluator = Evaluator(_instance())
        expression = parse_expression("A > B")
        first = evaluator.run(expression)
        assert first.counters.operations["⊃"] == 1
        second = evaluator.run(expression)
        # Cached: no new inclusion work.
        assert second.counters.operations["⊃"] == 0
        assert second.result == first.result
