"""Fixtures for the serving-layer suite: a bibtex corpus, its engine,
the transport-free app, and a live HTTP server thread."""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core.engine import FileQueryEngine
from repro.server import QueryServer, QueryServerApp, ServerConfig
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

SCRIPTS = Path(__file__).resolve().parent.parent.parent / "scripts"
if str(SCRIPTS) not in sys.path:
    sys.path.insert(0, str(SCRIPTS))

QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
SELECT_ALL = "SELECT r.Title FROM Reference r"


@pytest.fixture(scope="module")
def schema():
    return bibtex_schema()


@pytest.fixture(scope="module")
def corpus_text() -> str:
    return generate_bibtex(entries=40, seed=11)


@pytest.fixture(scope="module")
def engine(schema, corpus_text) -> FileQueryEngine:
    return FileQueryEngine(schema, corpus_text)


@pytest.fixture
def app(engine):
    application = QueryServerApp(engine, ServerConfig(workers=2, queue_depth=4))
    yield application
    application.close()


@pytest.fixture
def server(engine):
    with QueryServer(engine, ServerConfig(port=0, workers=4, queue_depth=8)) as srv:
        yield srv


def http_post(url: str, body: dict) -> tuple[int, dict]:
    """POST JSON; returns (status, envelope) without raising on 4xx/5xx."""
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def http_get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)
