"""``POST /append``: the ingestion endpoint — live backends only,
admission-controlled, and schema-conformant envelopes."""

from __future__ import annotations

import json

import pytest

from repro.live import LiveEngine
from repro.server import QueryServerApp, ServerConfig
from repro.shard import ShardedEngine
from repro.workloads.bibtex import generate_bibtex

from tests.server.conftest import SELECT_ALL


@pytest.fixture(scope="module")
def record(schema) -> str:
    text = generate_bibtex(entries=1, seed=99)
    tree = schema.parse(text)
    (child,) = list(tree.children)
    return text[child.start : child.end] + "\n\n"


@pytest.fixture
def live_app(tmp_path, schema, corpus_text):
    directory = tmp_path / "live-idx"
    ShardedEngine.split(schema, corpus_text, 3).save(directory)
    backend = LiveEngine.open(schema, directory)
    application = QueryServerApp(backend, ServerConfig(workers=2, queue_depth=4))
    yield application
    application.close()
    backend.close()


def test_append_envelope_carries_seq_shard_and_pending(live_app, record) -> None:
    status, envelope = live_app.handle("POST", "/append", {"record": record})
    assert status == 200
    assert envelope["ok"] is True
    assert envelope["kind"] == "append"
    assert envelope["seq"] == 1
    assert isinstance(envelope["shard"], str)
    assert envelope["pending"] == 1


def test_append_envelope_conforms_to_schema(live_app, record) -> None:
    from check_server_schema import SCHEMA_PATH, validate_envelope

    schema_doc = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    _, envelope = live_app.handle("POST", "/append", {"record": record})
    assert validate_envelope(envelope, schema_doc, {}) == []


def test_appended_record_is_immediately_queryable(live_app, record) -> None:
    _, before = live_app.handle("POST", "/query", {"query": SELECT_ALL})
    status, _ = live_app.handle("POST", "/append", {"record": record})
    assert status == 200
    _, after = live_app.handle("POST", "/query", {"query": SELECT_ALL})
    assert after["total_rows"] == before["total_rows"] + 1


def test_unparseable_record_is_400_bad_record(live_app) -> None:
    status, envelope = live_app.handle(
        "POST", "/append", {"record": "definitely not bibtex"}
    )
    assert status == 400
    assert envelope["error"]["code"] == "bad-record"
    assert envelope["error"]["type"] == "ParseError"


def test_missing_or_malformed_body_is_400(live_app) -> None:
    for body in (None, {}, {"record": 7}):
        status, envelope = live_app.handle("POST", "/append", body)
        assert status == 400
        assert envelope["error"]["code"] == "bad-request"


def test_append_requires_post(live_app) -> None:
    status, envelope = live_app.handle("GET", "/append", None)
    assert status == 405


def test_query_only_backend_is_400_append_unsupported(app, record) -> None:
    status, envelope = app.handle("POST", "/append", {"record": record})
    assert status == 400
    assert envelope["error"]["code"] == "append-unsupported"


def test_draining_server_rejects_appends_with_503(live_app, record) -> None:
    live_app.start_draining()
    status, envelope = live_app.handle("POST", "/append", {"record": record})
    assert status == 503
    assert envelope["error"]["code"] == "server-draining"


# -- idempotent appends (client request ids) ----------------------------------


class TestIdempotentAppend:
    def test_request_id_is_echoed_with_deduped_false(
        self, live_app, record
    ) -> None:
        status, envelope = live_app.handle(
            "POST", "/append", {"record": record, "request_id": "rid-1"}
        )
        assert status == 200
        assert envelope["seq"] == 1
        assert envelope["deduped"] is False
        assert envelope["request_id"] == "rid-1"

    def test_replayed_request_returns_the_original_ack(
        self, live_app, record
    ) -> None:
        _, first = live_app.handle(
            "POST", "/append", {"record": record, "request_id": "rid-1"}
        )
        status, replay = live_app.handle(
            "POST", "/append", {"record": record, "request_id": "rid-1"}
        )
        assert status == 200
        assert replay["seq"] == first["seq"]
        assert replay["deduped"] is True
        # The replay appended nothing: pending is unchanged.
        assert replay["pending"] == first["pending"]

    def test_rebinding_a_request_id_is_409_duplicate_request(
        self, live_app, record, schema
    ) -> None:
        other = generate_bibtex(entries=1, seed=77)
        tree = schema.parse(other)
        other_record = other[tree.children[0].start : tree.children[0].end] + "\n\n"
        live_app.handle("POST", "/append", {"record": record, "request_id": "rid-1"})
        status, envelope = live_app.handle(
            "POST", "/append", {"record": other_record, "request_id": "rid-1"}
        )
        assert status == 409
        assert envelope["error"]["code"] == "duplicate-request"
        assert envelope["error"]["detail"] == {"request_id": "rid-1", "seq": 1}

    def test_append_without_request_id_still_reports_deduped(
        self, live_app, record
    ) -> None:
        _, envelope = live_app.handle("POST", "/append", {"record": record})
        assert envelope["deduped"] is False
        assert "request_id" not in envelope

    def test_malformed_request_id_is_400(self, live_app, record) -> None:
        for bad in ("", 7, ["rid"]):
            status, envelope = live_app.handle(
                "POST", "/append", {"record": bad and record, "request_id": bad}
            )
            assert status == 400
            assert envelope["error"]["code"] == "bad-request"

    def test_deduped_envelope_conforms_to_schema(self, live_app, record) -> None:
        from check_server_schema import SCHEMA_PATH, validate_envelope

        schema_doc = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
        live_app.handle("POST", "/append", {"record": record, "request_id": "r"})
        _, envelope = live_app.handle(
            "POST", "/append", {"record": record, "request_id": "r"}
        )
        assert envelope["deduped"] is True
        assert validate_envelope(envelope, schema_doc, {}) == []
