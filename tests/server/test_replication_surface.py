"""The server's replication surface: per-replica health in ``/healthz``,
the scrubber snapshot in ``/stats``, and write-quorum failures as
structured 503s."""

from __future__ import annotations

import json

import pytest

from repro.errors import WriteQuorumError
from repro.live import LiveEngine
from repro.server import QueryServer, QueryServerApp, ServerConfig
from repro.shard import ScrubDaemon, ShardedEngine, scrub_index


@pytest.fixture
def replicated_backend(tmp_path, schema, corpus_text):
    directory = tmp_path / "ridx"
    ShardedEngine.split(schema, corpus_text, 3).save(directory, replicas=2)
    backend = LiveEngine.open(schema, directory)
    yield backend, directory
    backend.close()


@pytest.fixture
def replicated_app(replicated_backend, schema):
    backend, directory = replicated_backend
    daemon = ScrubDaemon(
        lambda: scrub_index(schema, directory, repair=True), interval_s=3600.0
    )
    application = QueryServerApp(
        backend, ServerConfig(workers=2, queue_depth=4), scrubber=daemon
    )
    yield application
    application.close()


def test_healthz_reports_per_replica_health(replicated_app) -> None:
    status, envelope = replicated_app.handle("GET", "/healthz", None)
    assert status == 200
    replicas = envelope["replicas"]
    assert len(replicas) == 3
    for shard in replicas:
        assert shard["replicas"] == 2
        assert shard["healthy"] == 2
        for detail in shard["detail"]:
            assert detail["status"] == "healthy"
            assert detail["breaker"] == "closed"
            assert detail["last_error"] is None


def test_healthz_replicas_is_null_for_plain_backends(app) -> None:
    status, envelope = app.handle("GET", "/healthz", None)
    assert status == 200
    assert envelope["replicas"] is None


def test_healthz_conforms_to_schema(replicated_app) -> None:
    from check_server_schema import SCHEMA_PATH, validate_envelope

    schema_doc = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    _, envelope = replicated_app.handle("GET", "/healthz", None)
    assert validate_envelope(envelope, schema_doc, {}) == []


def test_stats_carries_the_scrub_snapshot(replicated_app) -> None:
    replicated_app.scrubber.run_once()
    status, envelope = replicated_app.handle("GET", "/stats", None)
    assert status == 200
    scrub = envelope["server"]["scrub"]
    assert scrub["runs"] == 1
    assert scrub["last_clean"] is True
    assert scrub["last_error"] is None
    assert scrub["interval_s"] == 3600.0


def test_stats_has_no_scrub_key_without_a_scrubber(app) -> None:
    _, envelope = app.handle("GET", "/stats", None)
    assert "scrub" not in envelope["server"]


def test_close_stops_the_scrubber(replicated_backend, schema) -> None:
    backend, directory = replicated_backend
    daemon = ScrubDaemon(
        lambda: scrub_index(schema, directory), interval_s=3600.0
    )
    daemon.start()
    application = QueryServerApp(backend, ServerConfig(), scrubber=daemon)
    application.close()
    assert daemon._thread is None


def test_server_starts_and_owns_the_scrub_daemon(
    replicated_backend, schema
) -> None:
    backend, directory = replicated_backend
    daemon = ScrubDaemon(
        lambda: scrub_index(schema, directory), interval_s=3600.0
    )
    server = QueryServer(backend, ServerConfig(port=0), scrubber=daemon)
    server.start()
    try:
        assert daemon._thread is not None
    finally:
        server.shutdown()
    assert daemon._thread is None


def test_write_quorum_failure_maps_to_structured_503(
    replicated_app, schema
) -> None:
    class QuorumlessBackend:
        """Stand-in that always fails the quorum."""

        def append(self, record):  # the endpoint gate checks for this
            raise WriteQuorumError("shard2", acked=1, quorum=2, replicas=2)

        def append_record(self, record, request_id=None):
            raise WriteQuorumError("shard2", acked=1, quorum=2, replicas=2)

        def query_request(self, request):  # pragma: no cover
            raise AssertionError

    application = QueryServerApp(
        QuorumlessBackend(), ServerConfig(workers=1, queue_depth=2)
    )
    try:
        status, envelope = application.handle(
            "POST", "/append", {"record": "x", "request_id": "rid-9"}
        )
        assert status == 503
        assert envelope["error"]["code"] == "write-quorum"
        assert envelope["error"]["detail"] == {
            "shard": "shard2",
            "acked": 1,
            "quorum": 2,
            "replicas": 2,
        }
    finally:
        application.close()
