"""Graceful drain: requests already executing finish inside the drain
deadline, queued-but-unstarted ones get typed 503s, new arrivals are
rejected with ``Retry-After`` while the listener stays open, and the
socket is released only after the drain — including under SIGTERM with
requests in flight.  Plus the 429 overload path's retry-after estimate."""

from __future__ import annotations

import json
import math
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import QueryRequest, QueryResponse
from repro.errors import ServerDrainingError
from repro.server import QueryServer, QueryServerApp, ServerConfig
from repro.server.pool import WorkerPool

from tests.server.conftest import QUERY, SELECT_ALL, http_get, http_post

ROOT = Path(__file__).resolve().parent.parent.parent


class _BlockingBackend:
    """A QueryBackend whose queries block until released."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.started = threading.Event()

    def query(self, request: QueryRequest) -> QueryResponse:
        self.started.set()
        self.release.wait(timeout=60)
        return QueryResponse(rows=[["done"]], total_rows=1)

    def explain(self, request):  # pragma: no cover - protocol filler
        raise NotImplementedError

    def analyze(self, request):  # pragma: no cover - protocol filler
        raise NotImplementedError

    def stats(self):  # pragma: no cover - protocol filler
        raise NotImplementedError


# -- the worker pool's drain ---------------------------------------------------


def test_pool_drain_finishes_active_and_fails_queued() -> None:
    release = threading.Event()
    started = threading.Event()

    def active() -> str:
        started.set()
        release.wait(timeout=60)
        return "finished"

    pool = WorkerPool(workers=1, queue_depth=4)
    try:
        running = pool.submit(active)
        assert started.wait(timeout=30)
        queued = pool.submit(lambda: "never ran")

        drained: list[bool] = []

        def drain() -> None:
            drained.append(pool.drain(deadline_s=30.0))

        drainer = threading.Thread(target=drain)
        drainer.start()
        # The queued-but-unstarted future fails with the typed error as
        # soon as the drain flushes the queue — before the active one ends.
        with pytest.raises(ServerDrainingError):
            queued.result(timeout=30)
        release.set()
        drainer.join(timeout=30)
        assert drained == [True]
        assert running.result(timeout=1) == "finished"  # active completed
    finally:
        release.set()
        pool.shutdown()


def test_pool_drain_deadline_expires_on_a_stuck_worker() -> None:
    stuck = threading.Event()
    entered = threading.Event()

    def wedge() -> None:
        entered.set()
        stuck.wait(timeout=60)

    pool = WorkerPool(workers=1, queue_depth=0)
    try:
        pool.submit(wedge)
        assert entered.wait(timeout=30)
        started = time.perf_counter()
        assert pool.drain(deadline_s=0.2) is False  # truthfully undrained
        assert time.perf_counter() - started < 5.0
    finally:
        stuck.set()
        pool.shutdown()


# -- the app's drain -----------------------------------------------------------


def test_app_drain_rejects_new_work_but_reports_health() -> None:
    backend = _BlockingBackend()
    app = QueryServerApp(backend, ServerConfig(workers=1, queue_depth=2))
    occupied: list = [None]

    def occupy() -> None:
        occupied[0] = app.handle("POST", "/query", {"query": SELECT_ALL})

    occupier = threading.Thread(target=occupy)
    occupier.start()
    try:
        assert backend.started.wait(timeout=30)
        app.start_draining()
        # New engine work: structured 503 with a retry hint...
        status, envelope = app.handle("POST", "/query", {"query": SELECT_ALL})
        assert status == 503
        assert envelope["error"]["code"] == "server-draining"
        assert envelope["error"]["detail"]["retry_after_s"] > 0
        # ...while health stays observable and says so.
        status, health = app.handle("GET", "/healthz", None)
        assert status == 200
        assert health["status"] == "draining"
    finally:
        backend.release.set()
        occupier.join(timeout=30)
    assert app.drain() is True
    assert occupied[0][0] == 200  # the in-flight request finished


def test_app_drain_is_idempotent_with_close() -> None:
    backend = _BlockingBackend()
    backend.release.set()
    app = QueryServerApp(backend, ServerConfig(workers=1))
    assert app.drain() is True
    app.close()  # second shutdown path is a no-op, not an error


# -- drain over live HTTP ------------------------------------------------------


def test_http_drain_sends_retry_after_and_releases_socket(engine) -> None:
    backend = _BlockingBackend()
    server = QueryServer(backend, ServerConfig(port=0, workers=1, queue_depth=2))
    server.start()
    port = server.port
    outcome: list = [None]

    def occupy() -> None:
        outcome[0] = http_post(server.url + "/query", {"query": SELECT_ALL})

    occupier = threading.Thread(target=occupy)
    occupier.start()
    try:
        assert backend.started.wait(timeout=30)
        server.app.start_draining()
        # The listener is still open: the client hears a structured 503
        # with a Retry-After header, not a connection refusal.
        request = urllib.request.Request(
            server.url + "/query",
            data=json.dumps({"query": SELECT_ALL}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 503
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        envelope = json.load(excinfo.value)
        assert envelope["error"]["code"] == "server-draining"
    finally:
        backend.release.set()
        occupier.join(timeout=30)
    server.shutdown()
    assert outcome[0][0] == 200  # in-flight request drained to completion
    # The socket is fully released: the port can be rebound immediately.
    with socket.socket() as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", port))


def test_shutdown_is_idempotent(engine) -> None:
    server = QueryServer(engine, ServerConfig(port=0, workers=1))
    server.start()
    server.shutdown()
    server.shutdown()  # second call must be a no-op


# -- 429 retry-after -----------------------------------------------------------


def test_overload_429_carries_retry_after(engine) -> None:
    backend = _BlockingBackend()
    with QueryServer(
        backend, ServerConfig(port=0, workers=1, queue_depth=0)
    ) as srv:
        outcome: list = [None]

        def occupy() -> None:
            outcome[0] = http_post(srv.url + "/query", {"query": SELECT_ALL})

        occupier = threading.Thread(target=occupy)
        occupier.start()
        try:
            assert backend.started.wait(timeout=30)
            request = urllib.request.Request(
                srv.url + "/query",
                data=json.dumps({"query": SELECT_ALL}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 429
            envelope = json.load(excinfo.value)
            detail = envelope["error"]["detail"]
            assert detail["retry_after_s"] > 0
            assert detail["admission"]["retry_after_s"] == detail["retry_after_s"]
            # Header is the ceiling of the estimate, at least one second.
            header = int(excinfo.value.headers["Retry-After"])
            assert header == max(1, math.ceil(detail["retry_after_s"]))
        finally:
            backend.release.set()
            occupier.join(timeout=30)
        assert outcome[0][0] == 200


def test_retry_after_estimate_tracks_recent_drain_rate(app) -> None:
    # Cold server: the conservative default.
    assert app.stats.retry_after_s(pending=1) == 1.0
    # Warm the estimator with real POST durations, then the estimate is
    # mean duration x queue waves ahead of the retrier.
    for _ in range(3):
        status, _ = app.handle("POST", "/query", {"query": QUERY})
        assert status == 200
    single = app.stats.retry_after_s(pending=1, workers=1)
    assert 0.1 <= single <= 60.0
    assert app.stats.retry_after_s(pending=8, workers=2) >= single


# -- SIGTERM with requests in flight -------------------------------------------


@pytest.mark.timeout(120)
def test_sigterm_drains_in_flight_requests(tmp_path, corpus_text) -> None:
    corpus = tmp_path / "refs.bib"
    corpus.write_text(corpus_text, encoding="utf-8")
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--workload", "bibtex", "--file", str(corpus),
            "--port", str(port), "--workers", "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    url = f"http://127.0.0.1:{port}"
    try:
        deadline = time.monotonic() + 60
        while True:
            try:
                status, _ = http_get(url + "/healthz")
                assert status == 200
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise AssertionError("server did not come up in time")
                assert process.poll() is None, process.stderr.read().decode()
                time.sleep(0.2)

        # Launch in-flight requests, then SIGTERM while they are running.
        results: list = [None] * 4

        def call(slot: int) -> None:
            try:
                results[slot] = http_post(url + "/query", {"query": QUERY})
            except OSError as error:  # refused mid-race: recorded, asserted below
                results[slot] = error

        threads = [
            threading.Thread(target=call, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let the connections land before the signal
        process.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(timeout=60)
        assert process.wait(timeout=30) == 0  # clean exit

        statuses = []
        for result in results:
            assert not isinstance(result, OSError), (
                f"client saw a connection error instead of a drained "
                f"response or structured 503: {result}"
            )
            status, envelope = result
            statuses.append(status)
            if status == 200:
                assert envelope["rows"]  # drained to a complete answer
            else:
                # Queued-but-unstarted or post-drain arrivals: typed 503.
                assert status == 503
                assert envelope["error"]["code"] == "server-draining"
        assert 200 in statuses, "at least one in-flight request must drain"

        # The listener socket was released with the process gone.
        with socket.socket() as rebind:
            rebind.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            rebind.bind(("127.0.0.1", port))
        assert b"server stopped" in process.stderr.read()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
