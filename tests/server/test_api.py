"""The unified engine API: request/response family, cursors, pagination,
protocol conformance, and the deprecation shims."""

from __future__ import annotations

import pytest

import repro
from repro.api import (
    AnalyzeResponse,
    QueryBackend,
    QueryRequest,
    QueryResponse,
    decode_cursor,
    encode_cursor,
    paginate,
    query_digest,
    render_rows,
)
from repro.errors import PaginationError
from repro.resilience import ResourceBudget
from repro.shard import ShardedEngine

from tests.server.conftest import QUERY, SELECT_ALL


# -- cursors -------------------------------------------------------------------


def test_cursor_round_trip() -> None:
    token = encode_cursor("abc123", 40, 10)
    assert decode_cursor(token) == ("abc123", 40, 10)


@pytest.mark.parametrize(
    "token",
    [
        "not base64 at all!",
        "Zm9v",  # valid base64, not JSON
        encode_cursor("d", -1, 10),
        encode_cursor("d", 0, 0),
    ],
)
def test_malformed_cursor_rejected(token: str) -> None:
    with pytest.raises(PaginationError):
        decode_cursor(token)


def test_cursor_bound_to_query_text() -> None:
    rows = [[str(n)] for n in range(10)]
    token = encode_cursor(query_digest("SELECT a"), 5, 5)
    request = QueryRequest(query="SELECT b", cursor=token)
    with pytest.raises(PaginationError, match="does not belong"):
        paginate(rows, request)


def test_paginate_walks_every_row() -> None:
    rows = [[str(n)] for n in range(10)]
    request = QueryRequest(query="SELECT a", page_size=3)
    collected: list[list[str]] = []
    while True:
        page, start, cursor = paginate(rows, request)
        assert start == len(collected)
        collected.extend(page)
        if cursor is None:
            break
        request = QueryRequest(query="SELECT a", cursor=cursor)
    assert collected == rows


def test_paginate_without_page_size_returns_everything() -> None:
    rows = [[str(n)] for n in range(4)]
    page, start, cursor = paginate(rows, QueryRequest(query="SELECT a"))
    assert (page, start, cursor) == (rows, 0, None)


# -- request validation --------------------------------------------------------


def test_request_rejects_nonpositive_page_size() -> None:
    with pytest.raises(PaginationError):
        QueryRequest(query="SELECT a", page_size=0)


def test_from_dict_round_trips_budget() -> None:
    request = QueryRequest.from_dict(
        {
            "query": SELECT_ALL,
            "page_size": 5,
            "budget": {"deadline_ms": 1500, "max_regions": 10},
        }
    )
    assert request.query_text == SELECT_ALL
    assert request.page_size == 5
    assert request.budget == ResourceBudget(deadline_s=1.5, max_regions=10)


@pytest.mark.parametrize(
    "payload",
    [
        {},
        {"query": ""},
        {"query": 42},
        {"query": "SELECT a", "qery": "typo"},
        {"query": "SELECT a", "page_size": "five"},
        {"query": "SELECT a", "page_size": True},
        {"query": "SELECT a", "cursor": 9},
        {"query": "SELECT a", "budget": "fast"},
        {"query": "SELECT a", "budget": {"deadline": 1}},
    ],
)
def test_from_dict_rejects_malformed_payloads(payload: dict) -> None:
    with pytest.raises(PaginationError):
        QueryRequest.from_dict(payload)


# -- both engines satisfy the protocol -----------------------------------------


def test_file_engine_satisfies_backend_protocol(engine) -> None:
    assert isinstance(engine, QueryBackend)


def test_sharded_engine_satisfies_backend_protocol(schema, corpus_text) -> None:
    assert isinstance(ShardedEngine.split(schema, corpus_text, 2), QueryBackend)


def test_request_rows_match_legacy_rendering(engine) -> None:
    legacy = engine.query(QUERY)
    response = engine.query(QueryRequest(query=QUERY))
    assert isinstance(response, QueryResponse)
    assert response.rows == render_rows(legacy.rows)
    assert response.total_rows == len(legacy.rows)
    assert response.next_cursor is None
    # Stats vary run-to-run (the second execution hits warm caches), but
    # the shape and the row count are fixed.
    assert response.stats["rows"] == len(legacy.rows)
    assert response.stats["strategy"] == legacy.stats.strategy


def test_sharded_request_rows_match_legacy_rendering(schema, corpus_text) -> None:
    sharded = ShardedEngine.split(schema, corpus_text, 4)
    legacy = sharded.query(QUERY)
    response = sharded.query(QueryRequest(query=QUERY))
    assert response.rows == render_rows(legacy.rows)
    assert response.stats["strategy"] == "sharded"


def test_request_pagination_reassembles_full_result(engine) -> None:
    full = engine.query(QueryRequest(query=SELECT_ALL))
    collected: list[list[str]] = []
    request = QueryRequest(query=SELECT_ALL, page_size=7)
    while True:
        page = engine.query(request)
        assert page.row_start == len(collected)
        collected.extend(page.rows)
        if page.next_cursor is None:
            break
        request = QueryRequest(query=SELECT_ALL, cursor=page.next_cursor)
    assert collected == full.rows
    assert full.total_rows == len(collected)


def test_explain_and_analyze_requests_return_wire_dataclasses(engine) -> None:
    explain = engine.explain(QueryRequest(query=SELECT_ALL))
    assert explain.to_dict()["lines"] == explain.text.splitlines()
    analysis = engine.analyze(SELECT_ALL)
    response = engine.analyze(QueryRequest(query=SELECT_ALL))
    assert isinstance(response, AnalyzeResponse)
    # The wire shape is the pinned analyze --json contract, verbatim.
    assert response.to_dict().keys() == analysis.to_dict().keys()


def test_stats_response_keeps_cli_shape(engine) -> None:
    payload = engine.stats().to_dict()
    assert set(payload) == {"index", "cache_config", "cache", "calibration", "backend"}
    assert payload["backend"]["type"] == "file"


# -- deprecation shims ---------------------------------------------------------


def test_calibration_state_is_a_deprecated_alias(engine) -> None:
    with pytest.warns(DeprecationWarning, match="stats\\(\\).calibration"):
        legacy = engine.calibration_state()
    assert legacy == engine.stats().calibration


def test_sharded_calibration_state_is_a_deprecated_alias(schema, corpus_text) -> None:
    sharded = ShardedEngine.split(schema, corpus_text, 2)
    with pytest.warns(DeprecationWarning):
        legacy = sharded.calibration_state()
    assert legacy == sharded.stats().calibration


def test_top_level_reexports() -> None:
    for name in (
        "QueryRequest",
        "QueryResponse",
        "ExplainResponse",
        "AnalyzeResponse",
        "StatsResponse",
        "QueryBackend",
        "QueryServer",
        "ServerConfig",
        "PaginationError",
        "ServerError",
        "ServerOverloadedError",
    ):
        assert hasattr(repro, name), name
