"""The live HTTP server: concurrent clients, pagination over the wire,
admission rejection, degraded-shard partial results, warm caches, and the
CLI's ``repro serve`` round trip."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from check_server_schema import validate_envelope  # via conftest sys.path

from repro.api import QueryRequest, QueryResponse, render_rows
from repro.core.engine import FileQueryEngine
from repro.server import QueryServer, ServerConfig
from repro.shard import ShardedEngine

from tests.server.conftest import QUERY, SELECT_ALL, http_get, http_post

ROOT = Path(__file__).resolve().parent.parent.parent
SERVER_SCHEMA = json.loads((ROOT / "schemas" / "server.schema.json").read_text())
ANALYZE_SCHEMA = json.loads((ROOT / "schemas" / "analyze.schema.json").read_text())


def assert_conforms(envelope: dict) -> None:
    errors = validate_envelope(envelope, SERVER_SCHEMA, ANALYZE_SCHEMA)
    assert errors == [], errors


# -- basic round trips ---------------------------------------------------------


def test_health_and_stats_over_http(server) -> None:
    status, health = http_get(server.url + "/healthz")
    assert status == 200
    assert_conforms(health)
    status, stats = http_get(server.url + "/stats")
    assert status == 200
    assert_conforms(stats)


def test_query_over_http_matches_direct_engine(server, engine) -> None:
    status, envelope = http_post(server.url + "/query", {"query": QUERY})
    assert status == 200
    assert envelope["rows"] == render_rows(engine.query(QUERY).rows)
    assert_conforms(envelope)


def test_eight_concurrent_clients_byte_identical(server, engine) -> None:
    expected = render_rows(engine.query(QUERY).rows)
    results: list = [None] * 8

    def call(slot: int) -> None:
        results[slot] = http_post(server.url + "/query", {"query": QUERY})

    threads = [threading.Thread(target=call, args=(slot,)) for slot in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert all(result is not None for result in results)
    for status, envelope in results:
        assert status == 200
        assert envelope["rows"] == expected


def test_pagination_round_trip_over_http(server, engine) -> None:
    direct = render_rows(engine.query(SELECT_ALL).rows)
    collected: list[list[str]] = []
    body: dict = {"query": SELECT_ALL, "page_size": 6}
    while True:
        status, envelope = http_post(server.url + "/query", body)
        assert status == 200
        collected.extend(envelope["rows"])
        if envelope["next_cursor"] is None:
            break
        body = {"query": SELECT_ALL, "cursor": envelope["next_cursor"]}
    assert collected == direct


def test_malformed_json_body_is_400(server) -> None:
    request = urllib.request.Request(
        server.url + "/query",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400
    envelope = json.load(excinfo.value)
    assert envelope["error"]["code"] == "bad-json"
    assert_conforms(envelope)


def test_wrong_method_over_http_is_405(server) -> None:
    status, envelope = http_post(server.url + "/healthz", {})
    assert status == 405
    assert_conforms(envelope)


# -- warm caches ---------------------------------------------------------------


def test_repeat_queries_warm_the_shared_caches(schema, corpus_text) -> None:
    # A fresh backend so this test owns the cache counters.
    backend = FileQueryEngine(schema, corpus_text)
    with QueryServer(backend, ServerConfig(port=0, workers=2)) as srv:
        durations = []
        for _ in range(4):
            started = time.perf_counter()
            status, _ = http_post(srv.url + "/query", {"query": QUERY})
            durations.append(time.perf_counter() - started)
            assert status == 200
        status, stats = http_get(srv.url + "/stats")
        assert status == 200
        cache = stats["engine"]["cache"]
        assert cache["plan_hits"] >= 3  # repeats reused the first plan
        assert cache["expression_hits"] + cache["parse_hits"] > 0
        # Warm repeats beat the cold first request (generous margin: the
        # cold run did all the planning and parsing).
        assert min(durations[1:]) <= durations[0] * 1.5


# -- admission over HTTP -------------------------------------------------------


class _SlowBackend:
    """A minimal QueryBackend whose queries block until released."""

    def __init__(self, release: threading.Event) -> None:
        self.release = release
        self.started = threading.Event()

    def query(self, request: QueryRequest) -> QueryResponse:
        self.started.set()
        self.release.wait(timeout=60)
        return QueryResponse(rows=[["slow"]], total_rows=1)

    def explain(self, request):  # pragma: no cover - protocol filler
        raise NotImplementedError

    def analyze(self, request):  # pragma: no cover - protocol filler
        raise NotImplementedError

    def stats(self):  # pragma: no cover - protocol filler
        raise NotImplementedError


def test_overload_is_a_structured_429() -> None:
    release = threading.Event()
    backend = _SlowBackend(release)
    with QueryServer(
        backend, ServerConfig(port=0, workers=1, queue_depth=0)
    ) as srv:
        outcome: list = [None]

        def occupy() -> None:
            outcome[0] = http_post(srv.url + "/query", {"query": SELECT_ALL})

        occupier = threading.Thread(target=occupy)
        occupier.start()
        try:
            assert backend.started.wait(timeout=30)
            status, envelope = http_post(srv.url + "/query", {"query": SELECT_ALL})
            assert status == 429
            error = envelope["error"]
            assert error["type"] == "ServerOverloadedError"
            assert error["code"] == "server-overloaded"
            snapshot = error["detail"]["admission"]
            assert snapshot["in_flight"] == snapshot["capacity"] == 1
            assert snapshot["rejected_total"] >= 1
            assert_conforms(envelope)
        finally:
            release.set()
            occupier.join(timeout=30)
        assert outcome[0][0] == 200  # the occupying request still finished


# -- degraded shards over HTTP -------------------------------------------------


def test_degraded_shard_surfaces_partial_result_warning(
    tmp_path, schema, corpus_text
) -> None:
    directory = tmp_path / "sidx"
    ShardedEngine.split(schema, corpus_text, 4).save(directory)
    victim = sorted((directory / "shards").iterdir())[1]
    (victim / "corpus.txt").write_text("garbage", encoding="utf-8")

    backend = ShardedEngine.from_saved(schema, directory)
    with QueryServer(backend, ServerConfig(port=0, workers=2)) as srv:
        status, envelope = http_post(srv.url + "/query", {"query": QUERY})
        assert status == 200
        codes = [warning["code"] for warning in envelope["warnings"]]
        assert "shard-failed" in codes
        assert "partial-result" in codes
        assert envelope["rows"]  # the healthy shards still answered
        assert_conforms(envelope)
        status, stats = http_get(srv.url + "/stats")
        assert stats["engine"]["backend"]["type"] == "sharded"
        assert_conforms(stats)


# -- the CLI round trip --------------------------------------------------------


@pytest.mark.timeout(120)
def test_cli_serve_round_trip(tmp_path, corpus_text) -> None:
    corpus = tmp_path / "refs.bib"
    corpus.write_text(corpus_text, encoding="utf-8")
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--workload", "bibtex", "--file", str(corpus), "--port", str(port),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        url = f"http://127.0.0.1:{port}"
        deadline = time.monotonic() + 60
        while True:
            try:
                status, _ = http_get(url + "/healthz")
                assert status == 200
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise AssertionError("server did not come up in time")
                assert process.poll() is None, process.stderr.read().decode()
                time.sleep(0.2)
        status, envelope = http_post(url + "/query", {"query": QUERY, "page_size": 2})
        assert status == 200
        assert envelope["rows"]
        assert_conforms(envelope)
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        assert b"server stopped" in process.stderr.read()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
