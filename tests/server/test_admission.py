"""Admission control and the bounded worker pool."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServerOverloadedError
from repro.resilience import ResourceBudget
from repro.server import AdmissionController, WorkerPool, mint_quota


# -- quota minting -------------------------------------------------------------


def test_mint_quota_splits_totals_across_workers() -> None:
    server = ResourceBudget(deadline_s=2.0, max_regions=100, max_bytes_parsed=1000)
    quota = mint_quota(server, workers=4)
    assert quota == ResourceBudget(
        deadline_s=2.0, max_regions=25, max_bytes_parsed=250
    )


def test_mint_quota_never_rounds_to_zero() -> None:
    quota = mint_quota(ResourceBudget(max_regions=3), workers=8)
    assert quota.max_regions == 1


def test_mint_quota_unmetered_server_is_unmetered_requests() -> None:
    assert mint_quota(None, workers=4) is None


def test_mint_quota_per_request_override_wins() -> None:
    override = ResourceBudget(max_regions=7)
    assert mint_quota(ResourceBudget(max_regions=100), 4, override) == override


# -- the admission controller --------------------------------------------------


def test_admission_counts_and_releases() -> None:
    controller = AdmissionController(workers=2, queue_depth=1)
    tickets = [controller.admit() for _ in range(3)]
    snapshot = controller.snapshot()
    assert snapshot["in_flight"] == 3
    assert snapshot["capacity"] == 3
    with pytest.raises(ServerOverloadedError) as excinfo:
        controller.admit()
    assert excinfo.value.snapshot["in_flight"] == 3
    assert controller.snapshot()["rejected_total"] == 1
    for ticket in tickets:
        ticket.release()
        ticket.release()  # idempotent
    final = controller.snapshot()
    assert final["in_flight"] == 0
    assert final["admitted_total"] == 3
    assert final["peak_in_flight"] == 3


def test_admission_mints_ticket_budgets() -> None:
    controller = AdmissionController(
        workers=2, queue_depth=0, server_budget=ResourceBudget(max_regions=10)
    )
    ticket = controller.admit()
    assert ticket.budget == ResourceBudget(max_regions=5)
    ticket.release()


def test_admission_rejects_bad_configuration() -> None:
    with pytest.raises(ValueError):
        AdmissionController(workers=0, queue_depth=1)
    with pytest.raises(ValueError):
        AdmissionController(workers=1, queue_depth=-1)


# -- the worker pool -----------------------------------------------------------


def test_pool_runs_submitted_work() -> None:
    pool = WorkerPool(workers=2, queue_depth=2)
    try:
        futures = [pool.submit(lambda n=n: n * n) for n in range(4)]
        assert sorted(f.result(timeout=10) for f in futures) == [0, 1, 4, 9]
    finally:
        pool.shutdown()


def test_pool_propagates_exceptions() -> None:
    pool = WorkerPool(workers=1, queue_depth=0)
    try:
        def boom() -> None:
            raise ValueError("inner failure")

        with pytest.raises(ValueError, match="inner failure"):
            pool.submit(boom).result(timeout=10)
    finally:
        pool.shutdown()


def test_pool_rejects_past_queue_cap() -> None:
    release = threading.Event()
    started = threading.Event()

    def block() -> None:
        started.set()
        release.wait(timeout=30)

    pool = WorkerPool(workers=1, queue_depth=1)
    try:
        running = pool.submit(block)
        assert started.wait(timeout=10)
        # The executing item left the queue, so workers + queue_depth = 2
        # more submissions fit before the hard cap rejects.
        queued = [pool.submit(lambda: None) for _ in range(2)]
        with pytest.raises(ServerOverloadedError):
            pool.submit(lambda: None)
        release.set()
        running.result(timeout=10)
        for future in queued:
            future.result(timeout=10)
    finally:
        release.set()
        pool.shutdown()


def test_pool_rejects_after_shutdown() -> None:
    pool = WorkerPool(workers=1, queue_depth=1)
    pool.shutdown()
    with pytest.raises(ServerOverloadedError):
        pool.submit(lambda: None)
