"""The transport-free serving core: routing, envelopes, error mapping,
admission, and schema conformance — no sockets involved."""

from __future__ import annotations

import threading

import pytest

from check_server_schema import validate_envelope  # via conftest sys.path
import json
from pathlib import Path

from repro.api import QueryRequest, query_response, render_rows
from repro.resilience import ResourceBudget
from repro.server import QueryServerApp, ServerConfig

from tests.server.conftest import QUERY, SELECT_ALL

ROOT = Path(__file__).resolve().parent.parent.parent
SERVER_SCHEMA = json.loads((ROOT / "schemas" / "server.schema.json").read_text())
ANALYZE_SCHEMA = json.loads((ROOT / "schemas" / "analyze.schema.json").read_text())


def assert_conforms(envelope: dict) -> None:
    errors = validate_envelope(envelope, SERVER_SCHEMA, ANALYZE_SCHEMA)
    assert errors == [], errors


# -- routing -------------------------------------------------------------------


def test_health_is_alive(app) -> None:
    status, envelope = app.handle("GET", "/healthz")
    assert status == 200
    assert envelope["status"] == "ok"
    assert envelope["backend"] == "FileQueryEngine"
    assert_conforms(envelope)


def test_trailing_slash_is_tolerated(app) -> None:
    assert app.handle("GET", "/healthz/")[0] == 200


def test_unknown_path_is_404(app) -> None:
    status, envelope = app.handle("GET", "/nope")
    assert status == 404
    assert envelope["error"]["code"] == "not-found"
    assert_conforms(envelope)


def test_wrong_method_is_405(app) -> None:
    for method, path in [
        ("POST", "/healthz"),
        ("POST", "/stats"),
        ("GET", "/query"),
        ("DELETE", "/analyze"),
    ]:
        status, envelope = app.handle(method, path, {"query": SELECT_ALL})
        assert status == 405, (method, path)
        assert envelope["error"]["code"] == "method-not-allowed"
        assert_conforms(envelope)


# -- /query --------------------------------------------------------------------


def test_query_rows_match_direct_engine(app, engine) -> None:
    status, envelope = app.handle("POST", "/query", {"query": QUERY})
    assert status == 200
    direct = engine.query(QUERY)
    assert envelope["rows"] == render_rows(direct.rows)
    assert envelope["total_rows"] == len(direct.rows)
    assert envelope["next_cursor"] is None
    assert_conforms(envelope)


def test_query_pagination_round_trip(app, engine) -> None:
    direct = render_rows(engine.query(SELECT_ALL).rows)
    collected: list[list[str]] = []
    body: dict = {"query": SELECT_ALL, "page_size": 7}
    while True:
        status, envelope = app.handle("POST", "/query", body)
        assert status == 200
        assert_conforms(envelope)
        assert envelope["row_start"] == len(collected)
        collected.extend(envelope["rows"])
        if envelope["next_cursor"] is None:
            break
        body = {"query": SELECT_ALL, "cursor": envelope["next_cursor"]}
    assert collected == direct


def test_missing_body_is_400(app) -> None:
    status, envelope = app.handle("POST", "/query", None)
    assert status == 400
    assert envelope["error"]["code"] == "bad-request"
    assert_conforms(envelope)


def test_bad_query_is_400_with_typed_error(app) -> None:
    status, envelope = app.handle("POST", "/query", {"query": "SELECT FROM WHERE"})
    assert status == 400
    assert envelope["error"]["type"] == "QuerySyntaxError"
    assert envelope["error"]["code"] == "query-syntax"
    assert_conforms(envelope)


def test_unknown_request_field_is_400(app) -> None:
    status, envelope = app.handle(
        "POST", "/query", {"query": SELECT_ALL, "qery": "typo"}
    )
    assert status == 400
    assert "qery" in envelope["error"]["message"]


def test_foreign_cursor_is_400(app) -> None:
    _, first = app.handle("POST", "/query", {"query": SELECT_ALL, "page_size": 3})
    status, envelope = app.handle(
        "POST", "/query", {"query": QUERY, "cursor": first["next_cursor"]}
    )
    assert status == 400
    assert "does not belong" in envelope["error"]["message"]


def test_over_budget_request_is_429_with_snapshot(engine) -> None:
    app = QueryServerApp(engine, ServerConfig(workers=2))
    try:
        status, envelope = app.handle(
            "POST",
            "/query",
            {"query": SELECT_ALL, "budget": {"max_regions": 1}},
        )
        assert status == 429
        assert envelope["error"]["type"] == "BudgetExceededError"
        assert envelope["error"]["code"] == "budget-exceeded"
        assert envelope["error"]["detail"]["resource"] == "regions"
        assert envelope["error"]["detail"]["limit"] == 1
        assert_conforms(envelope)
    finally:
        app.close()


def test_server_budget_caps_every_request(engine) -> None:
    # Server-level totals are split across workers: 4 regions / 4 workers
    # = 1 region per request, far below what the query needs.
    app = QueryServerApp(
        engine,
        ServerConfig(workers=4, budget=ResourceBudget(max_regions=4)),
    )
    try:
        status, envelope = app.handle("POST", "/query", {"query": SELECT_ALL})
        assert status == 429
        assert envelope["error"]["code"] == "budget-exceeded"
    finally:
        app.close()


def test_client_may_narrow_but_not_widen_its_quota(engine) -> None:
    app = QueryServerApp(
        engine,
        ServerConfig(workers=1, budget=ResourceBudget(max_regions=2)),
    )
    try:
        status, envelope = app.handle(
            "POST",
            "/query",
            {"query": SELECT_ALL, "budget": {"max_regions": 10_000}},
        )
        assert status == 429  # the minted quota (2) still applies
        assert envelope["error"]["detail"]["limit"] == 2
    finally:
        app.close()


def test_page_size_past_maximum_is_400(engine) -> None:
    app = QueryServerApp(engine, ServerConfig(max_page_size=10))
    try:
        status, envelope = app.handle(
            "POST", "/query", {"query": SELECT_ALL, "page_size": 11}
        )
        assert status == 400
        assert "exceeds maximum" in envelope["error"]["message"]
    finally:
        app.close()


def test_default_page_size_applies_when_unspecified(engine) -> None:
    app = QueryServerApp(engine, ServerConfig(default_page_size=5))
    try:
        _, envelope = app.handle("POST", "/query", {"query": SELECT_ALL})
        assert len(envelope["rows"]) == 5
        assert envelope["next_cursor"] is not None
    finally:
        app.close()


# -- /explain and /analyze -----------------------------------------------------


def test_explain_envelope(app, engine) -> None:
    status, envelope = app.handle("POST", "/explain", {"query": SELECT_ALL})
    assert status == 200
    # The cache-activity line varies between calls; the plan itself must
    # match what the engine explains directly.
    direct = engine.explain(SELECT_ALL).splitlines()
    lines = envelope["text"].splitlines()
    assert lines[0] == direct[0]
    assert envelope["lines"] == lines
    assert_conforms(envelope)


def test_analyze_envelope_carries_the_pinned_shape(app) -> None:
    status, envelope = app.handle("POST", "/analyze", {"query": QUERY})
    assert status == 200
    assert envelope["kind"] == "analyze"
    # assert_conforms validates envelope["analysis"] against
    # schemas/analyze.schema.json — the CLI contract, verbatim.
    assert_conforms(envelope)


# -- /stats and admission ------------------------------------------------------


def test_stats_envelope_counts_requests(app) -> None:
    app.handle("POST", "/query", {"query": SELECT_ALL})
    app.handle("POST", "/query", {"query": "SELECT FROM"})
    status, envelope = app.handle("GET", "/stats")
    assert status == 200
    server = envelope["server"]
    # The /stats request itself is only recorded once its envelope is
    # built, so it is not part of its own tally.
    assert server["requests_total"] == 2
    assert server["errors_total"] == 1
    assert server["by_endpoint"]["/query"]["requests"] == 2
    assert server["by_status"]["400"] == 1
    assert server["admission"]["admitted_total"] == 2
    assert envelope["engine"]["backend"]["type"] == "file"
    assert_conforms(envelope)


def test_full_admission_rejects_with_429(engine) -> None:
    app = QueryServerApp(engine, ServerConfig(workers=1, queue_depth=0))
    try:
        ticket = app.admission.admit()  # saturate capacity out-of-band
        try:
            status, envelope = app.handle("POST", "/query", {"query": SELECT_ALL})
        finally:
            ticket.release()
        assert status == 429
        assert envelope["error"]["type"] == "ServerOverloadedError"
        assert envelope["error"]["code"] == "server-overloaded"
        assert envelope["error"]["detail"]["admission"]["capacity"] == 1
        assert_conforms(envelope)
    finally:
        app.close()


def test_concurrent_queries_return_identical_rows(engine) -> None:
    app = QueryServerApp(engine, ServerConfig(workers=4, queue_depth=16))
    expected = render_rows(engine.query(QUERY).rows)
    results: list = [None] * 8
    try:
        def call(slot: int) -> None:
            results[slot] = app.handle("POST", "/query", {"query": QUERY})

        threads = [
            threading.Thread(target=call, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        for status, envelope in results:
            assert status == 200
            assert envelope["rows"] == expected
    finally:
        app.close()


def test_close_is_idempotent(engine) -> None:
    app = QueryServerApp(engine, ServerConfig(workers=1))
    app.close()
    app.close()
