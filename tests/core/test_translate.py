"""Query -> region-expression translation (Sections 5.1–5.3, 6.1, 6.3)."""

import pytest

from repro.algebra.ast import parse_expression
from repro.core.translate import Translator
from repro.db.parser import parse_query
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema
from repro.workloads.sgml import sgml_schema


@pytest.fixture(scope="module")
def full() -> Translator:
    return Translator(bibtex_schema(), IndexConfig.full())


@pytest.fixture(scope="module")
def partial() -> Translator:
    return Translator(
        bibtex_schema(), IndexConfig.partial({"Reference", "Key", "Last_Name"})
    )


class TestFullIndexing:
    def test_section_5_1_translation(self, full):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        translated = full.translate_query(query)
        assert translated.exact
        assert translated.expression == parse_expression(
            "Reference >d Authors >d Name >d sigma[Chang](Last_Name)"
        )

    def test_no_where(self, full):
        query = parse_query("SELECT r FROM Reference r")
        translated = full.translate_query(query)
        assert translated.exact
        assert translated.expression == parse_expression("Reference")

    def test_unknown_path_never_matches(self, full):
        query = parse_query('SELECT r FROM Reference r WHERE r.Bogus = "x"')
        translated = full.translate_query(query)
        assert translated.never

    def test_non_atomic_endpoint_never_matches(self, full):
        query = parse_query('SELECT r FROM Reference r WHERE r.Authors = "x"')
        translated = full.translate_query(query)
        assert translated.never

    def test_and_or_not(self, full):
        query = parse_query(
            'SELECT r FROM Reference r WHERE '
            '(r.Year = "1982" OR r.Year = "1994") AND NOT r.Publisher = "SIAM"'
        )
        translated = full.translate_query(query)
        assert translated.exact
        rendered = str(translated.expression)
        assert "∩" in rendered and "∪" in rendered and "−" in rendered

    def test_multiword_literal_contains(self, full):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Keywords.Keyword = "Taylor series"'
        )
        translated = full.translate_query(query)
        assert not translated.exact
        rendered = str(translated.expression)
        assert "σc[Taylor]" in rendered and "σc[series]" in rendered

    def test_star_variable_uses_simple_inclusion(self, full):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.*X.Last_Name = "Chang"'
        )
        translated = full.translate_query(query)
        assert translated.exact
        assert translated.expression == parse_expression(
            "Reference > sigma[Chang](Last_Name)"
        )

    def test_plain_variable_enumerates_branches(self, full):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.X.Name.Last_Name = "Chang"'
        )
        translated = full.translate_query(query)
        assert translated.exact
        rendered = str(translated.expression)
        assert "Authors" in rendered and "Editors" in rendered and "∪" in rendered

    def test_inequality_deferred(self, full):
        query = parse_query('SELECT r FROM Reference r WHERE r.Year <> "1982"')
        translated = full.translate_query(query)
        assert not translated.exact
        assert translated.expression == parse_expression("Reference")


class TestPartialIndexing:
    def test_section_6_1_candidates(self, partial):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        translated = partial.translate_query(query)
        assert not translated.exact
        assert translated.expression == parse_expression(
            "Reference >d sigma[Chang](Last_Name)"
        )
        assert any("ambiguous" in note for note in translated.notes)

    def test_star_is_exact_under_partial(self, partial):
        # Section 6.3 / 5.3: "any path" queries stay exact.
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.*X.Last_Name = "Chang"'
        )
        translated = partial.translate_query(query)
        assert translated.exact

    def test_key_path_is_exact_under_partial(self, partial):
        # Reference -> Key matches a unique full path: exact (Section 6.3).
        query = parse_query('SELECT r FROM Reference r WHERE r.Key = "Corl82a"')
        translated = partial.translate_query(query)
        assert translated.exact

    def test_unindexed_source_class_gives_no_expression(self):
        translator = Translator(bibtex_schema(), IndexConfig.partial({"Key"}))
        query = parse_query('SELECT r FROM Reference r WHERE r.Key = "x"')
        translated = translator.translate_query(query)
        assert translated.expression is None

    def test_unindexed_endpoint_contains_on_deepest(self):
        translator = Translator(
            bibtex_schema(), IndexConfig.partial({"Reference", "Authors"})
        )
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        translated = translator.translate_query(query)
        assert not translated.exact
        assert translated.expression == parse_expression(
            "Reference >d sigmac[Chang](Authors)"
        )

    def test_not_over_approximate_widens(self, partial):
        query = parse_query(
            'SELECT r FROM Reference r WHERE NOT r.Authors.Name.Last_Name = "Chang"'
        )
        translated = partial.translate_query(query)
        assert not translated.exact
        assert translated.expression == parse_expression("Reference")

    def test_not_over_exact_uses_difference(self, full):
        query = parse_query(
            'SELECT r FROM Reference r WHERE NOT r.Year = "1982"'
        )
        translated = full.translate_query(query)
        assert translated.exact
        rendered = str(translated.expression)
        assert rendered.startswith("Reference −")


class TestScopedIndexes:
    def test_scoped_index_restores_exactness(self):
        config = IndexConfig.partial({"Reference"}).with_scoped(
            "Last_Name", "Authors"
        )
        translator = Translator(bibtex_schema(), config)
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        translated = translator.translate_query(query)
        assert translated.exact
        assert "Last_Name@Authors" in translated.expression.region_names()

    def test_scoped_index_not_used_without_scope_in_path(self):
        config = IndexConfig.partial({"Reference"}).with_scoped(
            "Last_Name", "Authors"
        )
        translator = Translator(bibtex_schema(), config)
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Editors.Name.Last_Name = "Chang"'
        )
        translated = translator.translate_query(query)
        assert "Last_Name@Authors" not in (
            translated.expression.region_names() if translated.expression else set()
        )


class TestCyclicGrammar:
    def test_self_nested_paths(self):
        translator = Translator(sgml_schema(), IndexConfig.full())
        query = parse_query(
            'SELECT d FROM Document d WHERE d.*X.TitleText = "Compaction"'
        )
        translated = translator.translate_query(query)
        assert translated.exact
        assert translated.expression == parse_expression(
            "Document > sigma[Compaction](TitleText)"
        )

    def test_concrete_nested_path(self):
        translator = Translator(sgml_schema(), IndexConfig.full())
        query = parse_query(
            "SELECT d FROM Document d "
            "WHERE d.Sections.Section.Subsections.Section.Paragraphs.ParaText"
            ' = "region"'
        )
        translated = translator.translate_query(query)
        assert translated.expression is not None


class TestEndpointChain:
    def test_projection_chain(self, full):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "x"'
        )
        endpoint = full.endpoint_chain("Reference", query.where.path)
        assert endpoint is not None
        expression, exact = endpoint
        assert exact
        assert expression == parse_expression(
            "Last_Name <d Name <d Authors <d Reference"
        )

    def test_partial_endpoint_not_exact(self, partial):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "x"'
        )
        endpoint = partial.endpoint_chain("Reference", query.where.path)
        assert endpoint is not None
        _, exact = endpoint
        assert not exact


class TestNeededPaths:
    def test_trie_covers_outputs_and_conditions(self, full):
        query = parse_query(
            'SELECT r.Key FROM Reference r WHERE r.Authors.Name.Last_Name = "x"'
        )
        trie = full.needed_paths(query)
        assert trie.wants("Key")
        assert trie.wants("Authors")
        assert not trie.wants("Abstract")

    def test_identity_select_needs_everything(self, full):
        query = parse_query("SELECT r FROM Reference r")
        trie = full.needed_paths(query)
        assert trie.all_below
