"""The FileQueryEngine facade."""

import pytest

from repro.core.engine import FileQueryEngine
from repro.db.values import ObjectValue, canonical
from repro.index.config import IndexConfig
from repro.text.document import Corpus
from repro.workloads.bibtex import (
    CHANG_ANY_QUERY,
    CHANG_AUTHOR_QUERY,
    SELF_EDITED_QUERY,
    bibtex_schema,
    generate_bibtex,
)


class TestQuerying:
    def test_exact_query_matches_baseline(self, bibtex_engine):
        result = bibtex_engine.query(CHANG_AUTHOR_QUERY)
        baseline = bibtex_engine.baseline_query(CHANG_AUTHOR_QUERY)
        assert result.canonical_rows() == baseline.canonical_rows()
        assert result.stats.strategy == "index-exact"
        assert len(result.regions) == len(result.rows)

    def test_rows_are_reference_objects(self, bibtex_engine):
        result = bibtex_engine.query(CHANG_AUTHOR_QUERY)
        for row in result.rows:
            assert isinstance(row[0], ObjectValue)
            assert row[0].class_name == "Reference"

    def test_regions_are_reference_spans(self, bibtex_engine):
        result = bibtex_engine.query(CHANG_AUTHOR_QUERY)
        references = bibtex_engine.index.instance.get("Reference")
        for region in result.regions:
            assert region in references

    def test_values_property(self, bibtex_engine):
        result = bibtex_engine.query("SELECT r.Key FROM Reference r")
        assert len(result.values) == 30
        assert all(canonical(v) for v in result.values)

    def test_len(self, bibtex_engine):
        result = bibtex_engine.query(CHANG_AUTHOR_QUERY)
        assert len(result) == len(result.rows)

    def test_star_query(self, bibtex_engine):
        any_result = bibtex_engine.query(CHANG_ANY_QUERY)
        author_result = bibtex_engine.query(CHANG_AUTHOR_QUERY)
        assert set(author_result.canonical_rows()) <= set(any_result.canonical_rows())

    def test_join_query(self, bibtex_engine):
        result = bibtex_engine.query(SELF_EDITED_QUERY)
        baseline = bibtex_engine.baseline_query(SELF_EDITED_QUERY)
        assert result.canonical_rows() == baseline.canonical_rows()
        assert result.rows  # generator plants self-edited entries

    def test_projection_query(self, bibtex_engine):
        result = bibtex_engine.query(
            'SELECT r.Authors.Name.Last_Name FROM Reference r WHERE r.Year = "1982"'
        )
        baseline = bibtex_engine.baseline_query(
            'SELECT r.Authors.Name.Last_Name FROM Reference r WHERE r.Year = "1982"'
        )
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_empty_strategy_short_circuits(self, bibtex_engine):
        result = bibtex_engine.query('SELECT r FROM Reference r WHERE r.Bogus = "x"')
        assert result.rows == []
        assert result.stats.strategy == "empty"
        assert result.stats.bytes_parsed == 0


class TestPartialEngine:
    def test_candidates_filtered_to_exact_answer(self, bibtex_partial_engine):
        result = bibtex_partial_engine.query(CHANG_AUTHOR_QUERY)
        baseline = bibtex_partial_engine.baseline_query(CHANG_AUTHOR_QUERY)
        assert result.canonical_rows() == baseline.canonical_rows()
        assert result.stats.strategy == "index-candidates"
        assert result.stats.candidate_regions >= len(result.rows)

    def test_partial_parses_less_than_baseline(self, bibtex_partial_engine):
        result = bibtex_partial_engine.query(CHANG_AUTHOR_QUERY)
        baseline = bibtex_partial_engine.baseline_query(CHANG_AUTHOR_QUERY)
        # Candidate bytes may come from the live parse or (on a repeated
        # query) the engine's parse memo; either way the candidate work is
        # strictly between zero and the baseline's full scan.
        candidate_bytes = result.stats.bytes_parsed + result.stats.bytes_parse_avoided
        assert 0 < candidate_bytes < baseline.stats.bytes_parsed

    def test_statistics_smaller_than_full(self, bibtex_engine, bibtex_partial_engine):
        assert (
            bibtex_partial_engine.statistics().total_region_entries
            < bibtex_engine.statistics().total_region_entries
        )


class TestConstruction:
    def test_corpus_input(self):
        corpus = Corpus.from_texts(
            [generate_bibtex(entries=2, seed=1), generate_bibtex(entries=2, seed=2)]
        )
        engine = FileQueryEngine(bibtex_schema(), corpus)
        assert len(engine.query("SELECT r FROM Reference r").rows) == 4

    def test_explain_output(self, bibtex_engine):
        text = bibtex_engine.explain(CHANG_AUTHOR_QUERY)
        assert "strategy:  index-exact" in text
        assert "⊃" in text

    def test_explain_reports_cache_state(self, bibtex_engine):
        text = bibtex_engine.explain(CHANG_AUTHOR_QUERY)
        assert "cache:     enabled" in text

    def test_indexed_names(self, bibtex_partial_engine):
        assert bibtex_partial_engine.indexed_names == {
            "Reference",
            "Key",
            "Last_Name",
        }

    def test_load_baseline_database(self, bibtex_engine):
        database = bibtex_engine.load_baseline_database()
        assert len(database.extent("Reference")) == 30
