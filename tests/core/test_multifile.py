"""Multi-file corpora: one address space, answers located per file.

The paper's framing is a *file system*, not a single file: "there is a
multitude of bibliographic files ... each one of the members of a research
group keeps several such files" (Section 2).
"""

import pytest

from repro.core.engine import FileQueryEngine
from repro.text.document import Corpus, Document
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema, generate_bibtex


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return Corpus(
        [
            Document("alice.bib", generate_bibtex(entries=6, seed=1)),
            Document("bob.bib", generate_bibtex(entries=6, seed=2)),
            Document("carol.bib", generate_bibtex(entries=6, seed=3)),
        ]
    )


@pytest.fixture(scope="module")
def engine(corpus) -> FileQueryEngine:
    return FileQueryEngine(bibtex_schema(), corpus)


class TestMultiFileQuerying:
    def test_all_files_indexed(self, engine):
        assert len(engine.index.instance.get("Reference")) == 18

    def test_queries_span_files(self, engine):
        result = engine.query(CHANG_AUTHOR_QUERY)
        baseline = engine.baseline_query(CHANG_AUTHOR_QUERY)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_locate_results_names_files(self, engine, corpus):
        result = engine.query("SELECT r FROM Reference r")
        located = engine.locate_results(result)
        assert len(located) == 18
        names = {name for name, _, _ in located}
        assert names == {"alice.bib", "bob.bib", "carol.bib"}

    def test_local_offsets_address_file_content(self, engine, corpus):
        result = engine.query(CHANG_AUTHOR_QUERY)
        located = engine.locate_results(result)
        texts = {document.name: document.text for document in corpus}
        for name, start, end in located:
            snippet = texts[name][start:end]
            assert snippet.startswith("@INCOLLECTION{")

    def test_plain_string_engine_uses_pseudo_document(self):
        engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=2, seed=5))
        result = engine.query("SELECT r FROM Reference r")
        located = engine.locate_results(result)
        assert {name for name, _, _ in located} == {"<text>"}

    def test_regions_never_span_documents(self, engine, corpus):
        spans = [engine.corpus.document_span(i) for i in range(3)]
        for region in engine.index.instance.get("Reference"):
            assert any(start <= region.start and region.end <= end for start, end in spans)
