"""Multi-file corpora: one address space, answers located per file.

The paper's framing is a *file system*, not a single file: "there is a
multitude of bibliographic files ... each one of the members of a research
group keeps several such files" (Section 2).
"""

import pytest

from repro.core.engine import FileQueryEngine
from repro.text.document import Corpus, Document
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema, generate_bibtex


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return Corpus(
        [
            Document("alice.bib", generate_bibtex(entries=6, seed=1)),
            Document("bob.bib", generate_bibtex(entries=6, seed=2)),
            Document("carol.bib", generate_bibtex(entries=6, seed=3)),
        ]
    )


@pytest.fixture(scope="module")
def engine(corpus) -> FileQueryEngine:
    return FileQueryEngine(bibtex_schema(), corpus)


class TestMultiFileQuerying:
    def test_all_files_indexed(self, engine):
        assert len(engine.index.instance.get("Reference")) == 18

    def test_queries_span_files(self, engine):
        result = engine.query(CHANG_AUTHOR_QUERY)
        baseline = engine.baseline_query(CHANG_AUTHOR_QUERY)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_locate_results_names_files(self, engine, corpus):
        result = engine.query("SELECT r FROM Reference r")
        located = engine.locate_results(result)
        assert len(located) == 18
        names = {name for name, _, _ in located}
        assert names == {"alice.bib", "bob.bib", "carol.bib"}

    def test_local_offsets_address_file_content(self, engine, corpus):
        result = engine.query(CHANG_AUTHOR_QUERY)
        located = engine.locate_results(result)
        texts = {document.name: document.text for document in corpus}
        for name, start, end in located:
            snippet = texts[name][start:end]
            assert snippet.startswith("@INCOLLECTION{")

    def test_plain_string_engine_uses_pseudo_document(self):
        engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=2, seed=5))
        result = engine.query("SELECT r FROM Reference r")
        located = engine.locate_results(result)
        assert {name for name, _, _ in located} == {"<text>"}

    def test_regions_never_span_documents(self, engine, corpus):
        spans = [engine.corpus.document_span(i) for i in range(3)]
        for region in engine.index.instance.get("Reference"):
            assert any(start <= region.start and region.end <= end for start, end in spans)


class TestFullScanSpans:
    """Regression: full-scan results must carry each object's *own* span.

    The executor used to pair ``database.extent()`` objects with
    ``tree.walk()`` spans positionally; on a multi-document corpus the two
    orders need not agree, silently attaching the wrong file region to a
    result row.  Spans are now recorded per object during instantiation.
    """

    def test_full_scan_locations_match_index_strategy(self, engine):
        query = "SELECT r FROM Reference r"
        indexed = engine.query(query)
        scanned = engine.baseline_query(query)
        assert scanned.stats.strategy == "full-scan"
        assert sorted(engine.locate_results(scanned)) == sorted(
            engine.locate_results(indexed)
        )

    def test_each_row_maps_to_its_own_region(self, engine):
        scanned = engine.baseline_query("SELECT r FROM Reference r")
        text = engine.index.text
        assert len(scanned.regions) == len(scanned.rows)
        for row, region in zip(scanned.rows, scanned.regions):
            snippet = text[region.start : region.end]
            key = row[0].attributes["Key"].text
            assert key in snippet, (key, snippet[:60])

    def test_filtered_full_scan_rows_stay_aligned(self, engine):
        scanned = engine.baseline_query(CHANG_AUTHOR_QUERY)
        assert scanned.stats.strategy == "full-scan"
        text = engine.index.text
        for row, region in zip(scanned.rows, scanned.regions):
            snippet = text[region.start : region.end]
            assert row[0].attributes["Key"].text in snippet
            assert "Chang" in snippet
