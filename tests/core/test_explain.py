"""Explain output and static costs."""

from repro.algebra.ast import parse_expression
from repro.core.cost import static_cost
from repro.core.explain import explain_plan


class TestStaticCost:
    def test_direct_costs_more_than_simple(self):
        direct = parse_expression("A >d B")
        simple = parse_expression("A > B")
        assert static_cost(direct) > static_cost(simple)

    def test_shorter_chain_costs_less(self):
        long_chain = parse_expression("A > B > C")
        short_chain = parse_expression("A > C")
        assert static_cost(short_chain) < static_cost(long_chain)

    def test_every_node_kind_counted(self):
        expression = parse_expression(
            "innermost(sigma[w](A) > B) & (C | D) - outermost(E)"
        )
        assert static_cost(expression) > 0


class TestExplainPlan:
    def test_exact_plan_explanation(self, bibtex_engine):
        text = bibtex_engine.explain(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        assert "translated:" in text
        assert "optimized:" in text
        assert "rewrite:" in text
        assert "exact:     True" in text

    def test_candidate_plan_notes(self, bibtex_partial_engine):
        text = bibtex_partial_engine.explain(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        assert "index-candidates" in text
        assert "note:" in text

    def test_join_plan_mentions_join(self, bibtex_engine):
        text = bibtex_engine.explain(
            "SELECT r FROM Reference r WHERE r.Editors.Name = r.Authors.Name"
        )
        assert "join:" in text

    def test_full_scan_mentions_scan(self):
        from repro.core.engine import FileQueryEngine
        from repro.index.config import IndexConfig
        from repro.workloads.bibtex import bibtex_schema, generate_bibtex

        engine = FileQueryEngine(
            bibtex_schema(),
            generate_bibtex(entries=3, seed=1),
            IndexConfig.partial({"Key"}),
        )
        text = engine.explain('SELECT r FROM Reference r WHERE r.Key = "x"')
        assert "full-scan" in text
