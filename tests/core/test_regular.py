"""Regular path expressions (GraphLog-style, Section 5.3)."""

import pytest

from repro.algebra.ast import parse_expression
from repro.core.regular import (
    AnyPath,
    Plus,
    Star,
    Step,
    compile_regular_path,
    evaluate_regular_path,
    parse_regular_path,
)
from repro.errors import QuerySyntaxError


class TestParse:
    def test_concrete_steps(self):
        anchor, atoms = parse_regular_path("Document.Sections.Section")
        assert anchor == "Document"
        assert atoms == (Step("Sections"), Step("Section"))

    def test_modifiers(self):
        _, atoms = parse_regular_path("Doc.Section+.Para*.**.Text")
        assert atoms == (Plus("Section"), Star("Para"), AnyPath(), Step("Text"))

    def test_anchor_only_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_regular_path("Document")

    def test_bad_atom_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_regular_path("Doc.Se!ction")

    def test_anchor_must_be_plain(self):
        with pytest.raises(QuerySyntaxError):
            parse_regular_path("Doc+.Section")


class TestCompile:
    def test_concrete_chain_is_direct(self):
        expression = compile_regular_path(
            "Document", (Step("Sections"), Step("Section"))
        )
        assert expression == parse_expression("Document >d Sections >d Section")

    def test_any_path_is_simple_inclusion(self):
        expression = compile_regular_path("Document", (AnyPath(), Step("ParaText")))
        assert expression == parse_expression("Document > ParaText")

    def test_plus_interposes_the_name(self):
        expression = compile_regular_path("Document", (Plus("Section"), Step("Title")))
        assert expression == parse_expression("Document >d Section > Title")

    def test_star_branches_zero_and_more(self):
        expression = compile_regular_path("Sections", (Star("Section"), Step("Title")))
        assert expression == parse_expression(
            "(Sections >d Title) | (Sections >d Section > Title)"
        )

    def test_selection_on_last(self):
        expression = compile_regular_path(
            "Document", (AnyPath(), Step("TitleText")), word="Compaction"
        )
        assert expression == parse_expression(
            "Document > sigma[Compaction](TitleText)"
        )

    def test_closures_only(self):
        expression = compile_regular_path("Document", (AnyPath(),))
        assert expression == parse_expression("Document")


class TestEvaluate:
    def test_closure_query_on_sgml(self, sgml_engine):
        # Sections at any depth with a paragraph mentioning "region".
        result = evaluate_regular_path(
            sgml_engine.index,
            "Section.**.ParaText",
            word="region",
            mode="contains",
        )
        sections = sgml_engine.index.instance.get("Section")
        assert set(result) <= set(sections)
        assert result

    def test_plus_requires_nested_section(self, sgml_engine):
        nested = evaluate_regular_path(
            sgml_engine.index, "Section.Subsections.Section+.ParaText",
            word="region", mode="contains",
        )
        any_depth = evaluate_regular_path(
            sgml_engine.index, "Section.**.ParaText",
            word="region", mode="contains",
        )
        assert set(nested) <= set(any_depth)

    def test_concrete_equals_translator_semantics(self, sgml_engine):
        direct = evaluate_regular_path(
            sgml_engine.index, "Document.Title.TitleText"
        )
        # Title is transparent in the schema but is still a real region
        # name, so the concrete pattern addresses it fine.
        documents = sgml_engine.index.instance.get("Document")
        assert direct == documents  # every document has a title

    def test_optimizer_integration(self, sgml_engine):
        from repro.rig.derive import derive_full_rig

        rig = derive_full_rig(sgml_engine.schema.grammar, include_root=False)
        with_rig = evaluate_regular_path(
            sgml_engine.index, "Document.**.ParaText", word="region",
            mode="contains", rig=rig,
        )
        without = evaluate_regular_path(
            sgml_engine.index, "Document.**.ParaText", word="region",
            mode="contains",
        )
        assert with_rig == without

    def test_star_zero_case_counts(self, sgml_engine):
        # Sections reachable through zero-or-more Subsections wrappers.
        either = evaluate_regular_path(
            sgml_engine.index, "Sections.Section*.Title.TitleText"
        )
        assert either
