"""Proposition 3.3: trivially-empty expressions."""

from repro.algebra.ast import parse_expression
from repro.core.triviality import is_trivially_empty, trivial_subexpressions
from repro.rig.graph import RegionInclusionGraph


class TestPaperExamples:
    def test_e3_is_trivial(self, paper_rig):
        # Section 3.2: "Consider the expression e3 = Reference ⊃ Title ⊃
        # Last_Name.  The result of e3 is empty for all the instances
        # satisfying the above inclusion graph."
        expression = parse_expression("Reference > Title > Last_Name")
        assert is_trivially_empty(expression, paper_rig)

    def test_valid_chain_not_trivial(self, paper_rig):
        expression = parse_expression(
            "Reference >d Authors >d Name >d sigma[Chang](Last_Name)"
        )
        assert not is_trivially_empty(expression, paper_rig)

    def test_direct_without_edge(self, paper_rig):
        # Proposition 3.3(i): Reference ⊃d Last_Name, no edge.
        expression = parse_expression("Reference >d Last_Name")
        assert is_trivially_empty(expression, paper_rig)
        # But simple inclusion has a path, so it is not trivial.
        assert not is_trivially_empty(
            parse_expression("Reference > Last_Name"), paper_rig
        )

    def test_no_path(self, paper_rig):
        # Proposition 3.3(ii): no path from Key to Authors.
        assert is_trivially_empty(parse_expression("Key > Authors"), paper_rig)

    def test_backward_family(self, paper_rig):
        assert is_trivially_empty(
            parse_expression("Last_Name <d Reference"), paper_rig
        )
        assert not is_trivially_empty(
            parse_expression("Last_Name < Reference"), paper_rig
        )


class TestCoincidenceRefinement:
    def test_coincident_cluster_not_trivial(self):
        # Editors -> Name coincident: a Name can share an Editors extent, so
        # Reference ⊃d Name is realisable despite the missing edge.
        graph = RegionInclusionGraph.from_adjacency(
            {"Reference": ["Editors"], "Editors": ["Name"]}
        )
        graph.mark_coincident("Editors", "Name")
        assert not is_trivially_empty(
            parse_expression("Reference >d Name"), graph
        )

    def test_without_coincidence_it_is_trivial(self):
        graph = RegionInclusionGraph.from_adjacency(
            {"Reference": ["Editors"], "Editors": ["Name"]}
        )
        assert is_trivially_empty(parse_expression("Reference >d Name"), graph)

    def test_equal_extents_within_cluster(self):
        graph = RegionInclusionGraph.from_adjacency({"Authors": ["Name"]})
        graph.mark_coincident("Authors", "Name")
        # Name ⊃ Authors: reversed, but coincident extents make it possible.
        assert not is_trivially_empty(parse_expression("Name > Authors"), graph)


class TestSetOperations:
    def test_union_needs_both(self, paper_rig):
        trivial = "Reference > Title > Last_Name"
        valid = "Reference > Authors"
        assert not is_trivially_empty(
            parse_expression(f"({trivial}) | ({valid})"), paper_rig
        )
        assert is_trivially_empty(
            parse_expression(f"({trivial}) | ({trivial})"), paper_rig
        )

    def test_intersect_needs_one(self, paper_rig):
        trivial = "Reference > Title > Last_Name"
        valid = "Reference > Authors"
        assert is_trivially_empty(
            parse_expression(f"({trivial}) & ({valid})"), paper_rig
        )

    def test_difference_left_only(self, paper_rig):
        trivial = "Reference > Title > Last_Name"
        valid = "Reference > Authors"
        assert is_trivially_empty(
            parse_expression(f"({trivial}) - ({valid})"), paper_rig
        )
        assert not is_trivially_empty(
            parse_expression(f"({valid}) - ({trivial})"), paper_rig
        )

    def test_selection_wrapper(self, paper_rig):
        assert is_trivially_empty(
            parse_expression("sigma[w](Reference > Title > Last_Name)"), paper_rig
        )


class TestWitnesses:
    def test_witness_reporting(self, paper_rig):
        expression = parse_expression("Reference >d Last_Name")
        witnesses = trivial_subexpressions(expression, paper_rig)
        assert witnesses == [(">d", "Reference", "Last_Name")]

    def test_no_witnesses_for_valid(self, paper_rig):
        expression = parse_expression("Reference > Authors > Last_Name")
        assert trivial_subexpressions(expression, paper_rig) == []

    def test_backward_witness_is_reported_with_container_first(self, paper_rig):
        expression = parse_expression("Last_Name <d Reference")
        witnesses = trivial_subexpressions(expression, paper_rig)
        assert witnesses == [("<d", "Reference", "Last_Name")]
