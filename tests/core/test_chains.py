"""Chain extraction and reconstruction."""

from repro.algebra.ast import parse_expression
from repro.core.chains import ChainView, Link, chain_to_expression, extract_chain


class TestExtract:
    def test_forward_chain(self):
        expression = parse_expression("A >d B > sigma[w](C)")
        chain = extract_chain(expression)
        assert chain is not None
        assert chain.forward
        assert chain.region_names() == ["A", "B", "C"]
        assert chain.ops == (">d", ">")
        assert chain.links[2] == Link("C", word="w", mode="exact")

    def test_backward_chain(self):
        expression = parse_expression("C <d B <d A")
        chain = extract_chain(expression)
        assert chain is not None
        assert not chain.forward
        assert chain.region_names() == ["C", "B", "A"]

    def test_mixed_families_rejected(self):
        expression = parse_expression("A > B < C")
        assert extract_chain(expression) is None

    def test_set_operations_rejected(self):
        expression = parse_expression("A > (B | C)")
        assert extract_chain(expression) is None

    def test_left_selection_allowed(self):
        expression = parse_expression("sigma[w](A) > B")
        chain = extract_chain(expression)
        assert chain is not None
        assert chain.links[0] == Link("A", word="w")

    def test_single_name_not_a_chain(self):
        assert extract_chain(parse_expression("A")) is None

    def test_left_grouped_rejected(self):
        expression = parse_expression("(A > B) > C")
        assert extract_chain(expression) is None


class TestRoundtrip:
    def test_expression_roundtrip(self):
        for source in [
            "A >d B >d sigma[w](C)",
            "A > B",
            "C <d B <d A",
            "sigmac[x](A) > B > C",
        ]:
            expression = parse_expression(source)
            chain = extract_chain(expression)
            assert chain is not None
            assert chain_to_expression(chain) == expression


class TestChainEdits:
    def test_with_op(self):
        chain = extract_chain(parse_expression("A >d B >d C"))
        updated = chain.with_op(0, ">")
        assert updated.ops == (">", ">d")

    def test_without_link(self):
        chain = extract_chain(parse_expression("A > B > C"))
        shortened = chain.without_link(1)
        assert shortened.region_names() == ["A", "C"]
        assert shortened.ops == (">",)
        assert chain_to_expression(shortened) == parse_expression("A > C")
