"""Unit tests for translator internals: pattern matching, path resolution,
the effective RIG, and gap exactness."""

import pytest

from repro.core.translate import ResolvedPath, Translator, _matches_pattern
from repro.db.parser import parse_query
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema


class TestMatchesPattern:
    def test_exact_sequence(self):
        assert _matches_pattern(("A", "B"), ["A", "B"])
        assert not _matches_pattern(("A", "B"), ["A"])
        assert not _matches_pattern(("A",), ["A", "B"])
        assert not _matches_pattern(("B", "A"), ["A", "B"])

    def test_empty(self):
        assert _matches_pattern((), [])
        assert not _matches_pattern(("A",), [])
        assert _matches_pattern((), [None])

    def test_leading_wildcard_is_anchored_at_end(self):
        pattern = [None, "A"]
        assert _matches_pattern(("X", "Y", "A"), pattern)
        assert _matches_pattern(("A",), pattern)
        assert not _matches_pattern(("A", "X"), pattern)

    def test_trailing_wildcard_is_anchored_at_start(self):
        pattern = ["A", None]
        assert _matches_pattern(("A",), pattern)
        assert _matches_pattern(("A", "X", "Y"), pattern)
        # The bug the anchored matcher prevents: junk before the first
        # concrete step must NOT match.
        assert not _matches_pattern(("X", "A"), pattern)

    def test_inner_wildcard(self):
        pattern = ["A", None, "B"]
        assert _matches_pattern(("A", "B"), pattern)
        assert _matches_pattern(("A", "X", "B"), pattern)
        assert not _matches_pattern(("A", "X"), pattern)

    def test_double_wildcard(self):
        pattern = [None, "A", None]
        assert _matches_pattern(("A",), pattern)
        assert _matches_pattern(("X", "A", "Y"), pattern)
        assert not _matches_pattern(("X", "Y"), pattern)


class TestResolution:
    @pytest.fixture(scope="class")
    def translator(self) -> Translator:
        return Translator(bibtex_schema(), IndexConfig.full())

    def test_concrete_resolution(self, translator):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "x"'
        )
        resolved = translator._resolve("Reference", query.where.path)
        assert len(resolved) == 1
        assert resolved[0].nodes == ("Reference", "Authors", "Name", "Last_Name")
        assert resolved[0].loose_after == (False, False, False)

    def test_star_resolution(self, translator):
        query = parse_query('SELECT r FROM Reference r WHERE r.*X.Last_Name = "x"')
        resolved = translator._resolve("Reference", query.where.path)
        assert len(resolved) == 1
        assert resolved[0].nodes == ("Reference", "Last_Name")
        assert resolved[0].loose_after == (True,)

    def test_seqvar_branches(self, translator):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.X.Name.Last_Name = "x"'
        )
        resolved = translator._resolve("Reference", query.where.path)
        branches = {r.nodes[1] for r in resolved}
        assert branches == {"Authors", "Editors"}
        for branch in resolved:
            assert dict(branch.bindings)["X"] in branches

    def test_trailing_star(self, translator):
        query = parse_query('SELECT r FROM Reference r WHERE r.Authors.*X = "x"')
        resolved = translator._resolve("Reference", query.where.path)
        assert resolved[0].trailing_star

    def test_nonexistent_attribute(self, translator):
        query = parse_query('SELECT r FROM Reference r WHERE r.Bogus = "x"')
        assert translator._resolve("Reference", query.where.path) == []


class TestEffectiveRig:
    def test_scoped_node_copies_source_edges(self):
        config = IndexConfig.partial({"Reference", "Last_Name"}).with_scoped(
            "Last_Name", "Authors"
        )
        translator = Translator(bibtex_schema(), config)
        rig = translator.effective_rig()
        assert rig.has_node("Last_Name@Authors")
        assert rig.has_edge("Reference", "Last_Name@Authors")

    def test_scoped_node_with_unindexed_source(self):
        config = IndexConfig.partial({"Reference"}).with_scoped(
            "Last_Name", "Authors"
        )
        translator = Translator(bibtex_schema(), config)
        rig = translator.effective_rig()
        assert rig.has_edge("Reference", "Last_Name@Authors")


class TestGapExactness:
    def test_ambiguous_gap(self):
        translator = Translator(
            bibtex_schema(), IndexConfig.partial({"Reference", "Last_Name"})
        )
        resolved = ResolvedPath(
            nodes=("Reference", "Authors", "Name", "Last_Name"),
            loose_after=(False, False, False),
        )
        assert not translator._gap_is_exact(resolved, 0, 3)

    def test_wildcard_gap_is_exact(self):
        translator = Translator(
            bibtex_schema(), IndexConfig.partial({"Reference", "Last_Name"})
        )
        resolved = ResolvedPath(
            nodes=("Reference", "Last_Name"), loose_after=(True,)
        )
        assert translator._gap_is_exact(resolved, 0, 1)

    def test_unique_path_gap_is_exact(self):
        translator = Translator(
            bibtex_schema(), IndexConfig.partial({"Reference", "Key"})
        )
        resolved = ResolvedPath(nodes=("Reference", "Key"), loose_after=(False,))
        assert translator._gap_is_exact(resolved, 0, 1)
