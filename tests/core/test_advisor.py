"""Index selection (Section 7)."""

import pytest

from repro.core.advisor import IndexAdvisor
from repro.core.engine import FileQueryEngine
from repro.workloads.bibtex import (
    CHANG_ANY_QUERY,
    CHANG_AUTHOR_QUERY,
    bibtex_schema,
    generate_bibtex,
)
from repro.workloads.logs import (
    ERROR_QUERY,
    FAILED_GETS_QUERY,
    STORAGE_ERRORS_QUERY,
    generate_log,
    log_schema,
)


@pytest.fixture(scope="module")
def bibtex_advisor() -> IndexAdvisor:
    return IndexAdvisor(bibtex_schema())


class TestRecommendation:
    def test_chang_query_needs_three_indexes(self, bibtex_advisor):
        report = bibtex_advisor.recommend([CHANG_AUTHOR_QUERY])
        assert report.config.region_names == frozenset(
            {"Reference", "Authors", "Last_Name"}
        )

    def test_star_query_needs_two(self, bibtex_advisor):
        report = bibtex_advisor.recommend([CHANG_ANY_QUERY])
        assert report.config.region_names == frozenset({"Reference", "Last_Name"})

    def test_report_describes_itself(self, bibtex_advisor):
        report = bibtex_advisor.recommend([CHANG_AUTHOR_QUERY])
        text = report.describe()
        assert "region indexes" in text
        assert "Reference" in text

    def test_workload_union(self, bibtex_advisor):
        report = bibtex_advisor.recommend([CHANG_AUTHOR_QUERY, CHANG_ANY_QUERY])
        assert {"Reference", "Authors", "Last_Name"} <= set(
            report.config.region_names
        )


class TestRecommendationIsExact:
    @pytest.mark.parametrize(
        "query",
        [
            CHANG_AUTHOR_QUERY,
            CHANG_ANY_QUERY,
            'SELECT r FROM Reference r WHERE r.Key = "Corl82a"',
            'SELECT r FROM Reference r WHERE r.Year = "1982" OR r.Year = "1994"',
        ],
    )
    def test_recommended_config_keeps_query_exact(self, bibtex_advisor, query):
        report = bibtex_advisor.recommend([query])
        text = generate_bibtex(entries=25, seed=13)
        engine = FileQueryEngine(bibtex_schema(), text, report.config)
        result = engine.query(query)
        baseline = engine.baseline_query(query)
        assert result.plan.exact, result.plan.notes
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_log_workload(self):
        advisor = IndexAdvisor(log_schema())
        queries = [ERROR_QUERY, STORAGE_ERRORS_QUERY, FAILED_GETS_QUERY]
        report = advisor.recommend(queries)
        text = generate_log(entries=80, seed=5)
        engine = FileQueryEngine(log_schema(), text, report.config)
        for query in queries:
            result = engine.query(query)
            baseline = engine.baseline_query(query)
            assert result.plan.exact, (query, result.plan.notes)
            assert result.canonical_rows() == baseline.canonical_rows()

    def test_recommended_index_is_smaller_than_full(self, bibtex_advisor):
        report = bibtex_advisor.recommend([CHANG_AUTHOR_QUERY])
        text = generate_bibtex(entries=25, seed=13)
        recommended = FileQueryEngine(bibtex_schema(), text, report.config)
        full = FileQueryEngine(bibtex_schema(), text)
        assert (
            recommended.statistics().total_region_entries
            < full.statistics().total_region_entries / 2
        )
