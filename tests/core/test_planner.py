"""Planning: strategy choice."""

import pytest

from repro.core.planner import Planner
from repro.core.translate import Translator
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema


@pytest.fixture(scope="module")
def full_planner() -> Planner:
    return Planner(Translator(bibtex_schema(), IndexConfig.full()))


@pytest.fixture(scope="module")
def partial_planner() -> Planner:
    return Planner(
        Translator(
            bibtex_schema(), IndexConfig.partial({"Reference", "Key", "Last_Name"})
        )
    )


class TestStrategies:
    def test_exact_plan(self, full_planner):
        plan = full_planner.plan(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        assert plan.strategy == "index-exact"
        assert plan.exact
        assert plan.trace.rewrite_count > 0

    def test_candidates_plan(self, partial_planner):
        plan = partial_planner.plan(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        assert plan.strategy == "index-candidates"
        assert not plan.exact

    def test_join_plan(self, full_planner):
        plan = full_planner.plan(
            "SELECT r FROM Reference r WHERE r.Editors.Name = r.Authors.Name"
        )
        assert plan.strategy == "index-join"
        assert plan.join_condition is not None

    def test_join_with_variables_not_special_cased(self, full_planner):
        plan = full_planner.plan(
            "SELECT r FROM Reference r WHERE r.*X.Last_Name = r.Key"
        )
        assert plan.strategy != "index-join"

    def test_empty_plan_unsatisfiable(self, full_planner):
        plan = full_planner.plan('SELECT r FROM Reference r WHERE r.Bogus = "x"')
        assert plan.strategy == "empty"
        assert plan.exact

    def test_full_scan_plan(self):
        planner = Planner(Translator(bibtex_schema(), IndexConfig.partial({"Key"})))
        plan = planner.plan('SELECT r FROM Reference r WHERE r.Key = "x"')
        assert plan.strategy == "full-scan"

    def test_trivially_empty_intersection(self, full_planner):
        # Year = "1982" AND Year-path-through-Title is impossible: the
        # translated expression for the second conjunct is never satisfied.
        plan = full_planner.plan(
            'SELECT r FROM Reference r WHERE r.Title.Last_Name = "x"'
        )
        assert plan.strategy == "empty"

    def test_plan_accepts_query_objects(self, full_planner):
        from repro.db.parser import parse_query

        query = parse_query("SELECT r FROM Reference r")
        plan = full_planner.plan(query)
        assert plan.strategy == "index-exact"

    def test_optimization_happens_in_plan(self, full_planner):
        plan = full_planner.plan(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        assert str(plan.optimized_expression) == (
            "Reference ⊃ Authors ⊃ σ[Chang](Last_Name)"
        )
