"""Property tests for the optimizer (Theorem 3.6).

- *Equivalence*: the optimized expression computes the same region set as
  the original on every generated RIG-satisfying instance (Definition 3.2).
- *Finite Church–Rosser*: applying the shortening rule in random orders
  reaches the same normal form.
- *Triviality soundness*: expressions flagged empty by Proposition 3.3
  evaluate to the empty set on every satisfying instance.
- *Cost monotonicity*: optimization never increases static cost.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.algebra.ast import parse_expression, pretty
from repro.algebra.evaluator import Evaluator
from repro.core.chains import chain_to_expression, extract_chain
from repro.core.cost import static_cost
from repro.core.optimizer import _step_relax_direct, _step_shorten, optimize
from repro.core.triviality import is_trivially_empty
from repro.index.word_index import WordIndex
from repro.rig.paths import coincident_related, every_path_through
from tests.support import instance_from_rig, random_chain_expression, random_rig


def _evaluate(expression, text, instance):
    evaluator = Evaluator(instance, word_lookup=WordIndex(text), strict_names=False)
    return evaluator.evaluate(expression)


@given(st.integers(0, 10_000), st.booleans())
@settings(max_examples=120, deadline=None)
def test_optimize_preserves_results(seed, cyclic):
    rng = random.Random(seed)
    graph = random_rig(rng, size=rng.randint(3, 6), cyclic=cyclic)
    expression = random_chain_expression(graph, rng)
    optimized = optimize(expression, graph)
    for sample in range(3):
        sample_rng = random.Random(seed * 31 + sample)
        text, instance = instance_from_rig(graph, sample_rng)
        original_result = _evaluate(expression, text, instance)
        optimized_result = _evaluate(optimized, text, instance)
        assert original_result == optimized_result, (
            f"{pretty(expression)} != {pretty(optimized)} on {text!r}"
        )


@given(st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_triviality_implies_empty(seed):
    rng = random.Random(seed)
    graph = random_rig(rng, size=rng.randint(3, 6), cyclic=rng.random() < 0.3)
    # Random chains over arbitrary (not walk-guided) names hit trivial cases.
    names = sorted(graph.nodes)
    length = rng.randint(2, 4)
    chain_names = [rng.choice(names) for _ in range(length)]
    op = rng.choice([">", ">d"])
    expression = parse_expression(f" {op} ".join(chain_names))
    if not is_trivially_empty(expression, graph):
        return
    for sample in range(3):
        sample_rng = random.Random(seed * 37 + sample)
        text, instance = instance_from_rig(graph, sample_rng)
        assert not _evaluate(expression, text, instance), (
            f"trivially-empty {pretty(expression)} evaluated non-empty on {text!r}"
        )


@given(st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_normal_forms_agree_up_to_equivalence_and_cost(seed):
    """Theorem 3.6 claims a *unique* most efficient version; as EXPERIMENTS.md
    records, that is not literally true — when several RIG paths converge
    (``R0 -> R1 -> R2`` and ``R0 -> R3 -> R2``-style diamonds), rule (b)
    applied in different orders can leave *different but equally short*
    middles.  What does hold, and what this test checks on randomized
    rewrite orders, is:

    - every normal form has the same static cost as the optimizer's, and
    - every normal form is equivalent to it on satisfying instances.

    The optimizer itself is deterministic (leftmost-first), so the library
    still exposes one canonical most-efficient version.
    """
    rng = random.Random(seed)
    cyclic = rng.random() < 0.3
    graph = random_rig(rng, size=rng.randint(3, 6), cyclic=cyclic)
    expression = random_chain_expression(graph, rng, max_length=6)
    normal_form = optimize(expression, graph)

    chain = extract_chain(expression)
    assert chain is not None
    chain = _step_relax_direct(chain, graph, None)
    # Randomized fixpoint of rule (b).
    order_rng = random.Random(seed + 1)
    while True:
        candidates = []
        simple_op = ">" if chain.forward else "<"
        for index in range(len(chain.ops) - 1):
            if chain.ops[index] != simple_op or chain.ops[index + 1] != simple_op:
                continue
            middle = chain.links[index + 1]
            if middle.has_select:
                continue
            if chain.forward:
                top, via, bottom = (
                    chain.links[index].region,
                    middle.region,
                    chain.links[index + 2].region,
                )
            else:
                top, via, bottom = (
                    chain.links[index + 2].region,
                    middle.region,
                    chain.links[index].region,
                )
            if every_path_through(graph, top, bottom, via) and not coincident_related(
                graph, top, bottom
            ):
                candidates.append(index + 1)
        if not candidates:
            break
        chain = chain.without_link(order_rng.choice(candidates))
    alternative_form = chain_to_expression(chain)
    if not cyclic:
        # On acyclic RIGs every rewrite order reaches an equally short form;
        # on cyclic ones the same-name guard can dead-end a random order at
        # a longer (still equivalent) chain.
        assert static_cost(alternative_form) == static_cost(normal_form)
    for sample in range(3):
        sample_rng = random.Random(seed * 13 + sample)
        text, instance = instance_from_rig(graph, sample_rng)
        assert _evaluate(alternative_form, text, instance) == _evaluate(
            normal_form, text, instance
        ), f"{pretty(alternative_form)} != {pretty(normal_form)} on {text!r}"


def test_diamond_counterexample_to_theorem_36_uniqueness():
    """The concrete Theorem 3.6(i) counterexample recorded in EXPERIMENTS.md:
    on a diamond-with-bypass RIG, dropping R1 first or R2 first from
    ``R0 ⊃ R1 ⊃ R2 ⊃ R4 ⊃ σ(R5)`` reaches two distinct, equally short,
    equivalent normal forms — neither shortens further."""
    from repro.rig.graph import RegionInclusionGraph

    graph = RegionInclusionGraph.from_adjacency(
        {
            "R0": ["R1", "R3"],
            "R1": ["R2"],
            "R2": ["R3", "R4"],
            "R3": ["R4"],
            "R4": ["R5"],
        }
    )
    form_a = parse_expression("R0 > R2 > sigma[delta](R5)")
    form_b = parse_expression("R0 > R1 > sigma[delta](R5)")
    # Both are fixpoints of the optimizer...
    assert optimize(form_a, graph) == form_a
    assert optimize(form_b, graph) == form_b
    # ...equally costly, and equivalent on satisfying instances.
    assert static_cost(form_a) == static_cost(form_b)
    for sample in range(8):
        rng = random.Random(sample)
        text, instance = instance_from_rig(graph, rng, max_depth=6)
        assert _evaluate(form_a, text, instance) == _evaluate(form_b, text, instance)


def test_cyclic_tie_normal_forms_are_equivalent():
    """On the cycle R1 -> R2 -> R3 -> R1, the chain R3 ⊃ R1 ⊃ R2 ⊃ R3 has
    two one-step shortenings (drop R1 or drop R2), both terminal because
    ``R3 ⊃ R3`` would be the trivially self-including set.  The two normal
    forms are equally costly and semantically equivalent — the optimizer
    deterministically picks the leftmost-first one."""
    from repro.rig.graph import RegionInclusionGraph

    graph = RegionInclusionGraph.from_adjacency(
        {"R1": ["R2"], "R2": ["R3"], "R3": ["R1"]}
    )
    form_a = parse_expression("R3 > R1 > R3")
    form_b = parse_expression("R3 > R2 > R3")
    assert static_cost(form_a) == static_cost(form_b)
    for sample in range(5):
        rng = random.Random(sample)
        text, instance = instance_from_rig(graph, rng, max_depth=6)
        assert _evaluate(form_a, text, instance) == _evaluate(form_b, text, instance)
    # And both differ from the unsound collapse R3 ⊃ R3 whenever nesting
    # exists — the guard is necessary.
    collapsed = parse_expression("R3 > R3")
    text, instance = instance_from_rig(graph, random.Random(1), max_depth=6)
    assert _evaluate(collapsed, text, instance) == instance.get("R3")


@given(st.integers(0, 10_000))
@settings(max_examples=150, deadline=None)
def test_cost_never_increases(seed):
    rng = random.Random(seed)
    graph = random_rig(rng, size=rng.randint(3, 7), cyclic=rng.random() < 0.3)
    expression = random_chain_expression(graph, rng, max_length=6)
    assert static_cost(optimize(expression, graph)) <= static_cost(expression)


@given(st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_optimize_is_idempotent(seed):
    rng = random.Random(seed)
    graph = random_rig(rng, size=rng.randint(3, 6), cyclic=rng.random() < 0.3)
    expression = random_chain_expression(graph, rng, max_length=6)
    once = optimize(expression, graph)
    assert optimize(once, graph) == once


@given(st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_generated_instances_satisfy_their_rig(seed):
    rng = random.Random(seed)
    graph = random_rig(rng, size=rng.randint(3, 6), cyclic=rng.random() < 0.3)
    _, instance = instance_from_rig(graph, rng)
    assert graph.violations(instance, limit=3) == []
