"""Multi-variable queries (Section 5.2's closing join discussion)."""

import pytest

from repro.core.engine import FileQueryEngine
from repro.db.parser import parse_query
from repro.db.values import canonical
from repro.errors import QueryError
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

CITES_1982 = (
    "SELECT r1 FROM Reference r1, Reference r2 "
    'WHERE r1.Referred.RefKey = r2.Key AND r2.Year = "1982"'
)
CITATION_PAIRS = (
    "SELECT r1.Key, r2.Key FROM Reference r1, Reference r2 "
    "WHERE r1.Referred.RefKey = r2.Key "
    'AND r2.Authors.Name.Last_Name = "Chang"'
)
SHARED_AUTHOR = (
    "SELECT r1.Key, r2.Key FROM Reference r1, Reference r2 "
    "WHERE r1.Authors.Name = r2.Editors.Name "
    'AND r1.Year = "1982"'
)


@pytest.fixture(scope="module")
def engine() -> FileQueryEngine:
    return FileQueryEngine(
        bibtex_schema(), generate_bibtex(entries=25, seed=3, self_edited_rate=0.2)
    )


class TestParsing:
    def test_multiple_sources(self):
        query = parse_query(CITES_1982)
        assert len(query.sources) == 2
        assert query.sources[0].var == "r1"
        assert query.sources[1].class_name == "Reference"
        assert not query.is_single_source()

    def test_duplicate_variables_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT r FROM Reference r, Reference r")

    def test_undeclared_variable_rejected(self):
        with pytest.raises(QueryError):
            parse_query(
                'SELECT r1 FROM Reference r1 WHERE r2.Key = "x"'
            )

    def test_render_roundtrip(self):
        query = parse_query(CITATION_PAIRS)
        assert parse_query(query.render()) == query

    def test_class_of(self):
        query = parse_query(CITES_1982)
        assert query.class_of("r2") == "Reference"
        with pytest.raises(QueryError):
            query.class_of("zz")


class TestPlanning:
    def test_multi_strategy(self, engine):
        plan = engine.plan(CITATION_PAIRS)
        assert plan.strategy == "index-multi"
        assert not plan.exact
        # r2 has a single-variable conjunct -> narrowed; r1 does not.
        assert plan.per_variable["r1"] is None
        assert plan.per_variable["r2"] is not None
        assert "Chang" in str(plan.per_variable["r2"])

    def test_narrowing_is_optimized(self, engine):
        plan = engine.plan(CITATION_PAIRS)
        assert "⊃d" not in str(plan.per_variable["r2"])

    def test_statically_empty_variable_empties_plan(self, engine):
        plan = engine.plan(
            "SELECT r1 FROM Reference r1, Reference r2 "
            'WHERE r1.Referred.RefKey = r2.Key AND r2.Bogus = "x"'
        )
        assert plan.strategy == "empty"

    def test_unindexed_class_falls_back(self):
        engine = FileQueryEngine(
            bibtex_schema(),
            generate_bibtex(entries=5, seed=1),
            IndexConfig.partial({"Key"}),
        )
        plan = engine.plan(CITES_1982)
        assert plan.strategy == "full-scan"


class TestExecution:
    @pytest.mark.parametrize("query", [CITES_1982, CITATION_PAIRS, SHARED_AUTHOR])
    def test_matches_baseline(self, engine, query):
        result = engine.query(query)
        baseline = engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_citations_resolve(self, engine):
        result = engine.query(CITATION_PAIRS)
        assert result.rows
        for citing, cited in [
            (str(canonical(a)), str(canonical(b))) for a, b in result.rows
        ]:
            assert citing != "" and cited != ""

    def test_identity_select_regions(self, engine):
        result = engine.query(CITES_1982)
        references = engine.index.instance.get("Reference")
        for region in result.regions:
            assert region in references

    def test_partial_index_matches_baseline(self):
        config = IndexConfig.partial({"Reference", "Key", "Last_Name"})
        engine = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=20, seed=5), config
        )
        result = engine.query(CITATION_PAIRS)
        baseline = engine.baseline_query(CITATION_PAIRS)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_narrowing_reduces_parsing(self, engine):
        result = engine.query(CITATION_PAIRS)
        baseline = engine.baseline_query(CITATION_PAIRS)
        # r2's extent shrinks to Chang-authored references; r1 is parsed in
        # full, so total parsed bytes stay below two full scans.
        assert result.stats.bytes_parsed < 2 * baseline.stats.bytes_parsed

    def test_same_entry_can_bind_both_variables(self, engine):
        query = (
            "SELECT r1 FROM Reference r1, Reference r2 "
            "WHERE r1.Key = r2.Key AND r2.Year = r1.Year"
        )
        result = engine.query(query)
        assert len(result.rows) == 25  # every entry pairs with itself


class TestNaiveEvaluatorMulti:
    def test_cartesian_product(self, engine):
        from repro.db.evaluator import NaiveEvaluator

        database = engine.load_baseline_database()
        query = parse_query(
            "SELECT r1.Key, r2.Key FROM Reference r1, Reference r2"
        )
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(query)
        assert len(rows) == 25 * 25
        assert evaluator.report.objects_scanned == 25 * 25

    def test_extent_override(self, engine):
        from repro.db.evaluator import NaiveEvaluator

        database = engine.load_baseline_database()
        narrowed = database.extent("Reference")[:3]
        query = parse_query("SELECT r1.Key, r2.Key FROM Reference r1, Reference r2")
        evaluator = NaiveEvaluator(
            database, extents_by_var={"r1": tuple(narrowed)}
        )
        rows = evaluator.evaluate(query)
        assert len(rows) == 3 * 25
