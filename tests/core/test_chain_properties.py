"""Property tests for chain extraction/reconstruction."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.chains import chain_to_expression, extract_chain
from tests.support import random_chain_expression, random_rig


@given(st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_extract_then_rebuild_is_identity(seed):
    rng = random.Random(seed)
    graph = random_rig(rng, size=rng.randint(3, 7), cyclic=rng.random() < 0.3)
    expression = random_chain_expression(graph, rng, max_length=7)
    chain = extract_chain(expression)
    assert chain is not None
    assert chain_to_expression(chain) == expression


@given(st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_chain_metadata_is_consistent(seed):
    rng = random.Random(seed)
    graph = random_rig(rng, size=rng.randint(3, 7))
    expression = random_chain_expression(graph, rng, max_length=7)
    chain = extract_chain(expression)
    assert chain is not None
    assert len(chain.ops) == len(chain.links) - 1
    assert chain.forward
    assert all(op in (">", ">d") for op in chain.ops)
    assert chain.region_names() == [link.region for link in chain.links]
