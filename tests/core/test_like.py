"""LIKE prefix queries — PAT's lexical search through the query language."""

import pytest

from repro.db.parser import parse_query
from repro.db.query import Comparison
from repro.db.values import canonical
from repro.errors import QueryError

LIKE_QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name LIKE "Cha*"'


class TestParsing:
    def test_like_parses(self):
        query = parse_query(LIKE_QUERY)
        assert isinstance(query.where, Comparison)
        assert query.where.op == "like"
        assert query.where.prefix == "Cha"

    def test_render_roundtrip(self):
        query = parse_query(LIKE_QUERY)
        assert parse_query(query.render()) == query

    def test_pattern_validation(self):
        with pytest.raises(QueryError):
            parse_query('SELECT r FROM Reference r WHERE r.Key LIKE "Cha"')
        with pytest.raises(QueryError):
            parse_query('SELECT r FROM Reference r WHERE r.Key LIKE "C*a*"')
        with pytest.raises(QueryError):
            parse_query('SELECT r FROM Reference r WHERE r.Key LIKE "*"')

    def test_case_insensitive_keyword(self):
        query = parse_query(
            'SELECT r FROM Reference r WHERE r.Key like "Cha*"'
        )
        assert query.where.op == "like"


class TestSemantics:
    def test_engine_matches_baseline(self, bibtex_engine):
        result = bibtex_engine.query(LIKE_QUERY)
        baseline = bibtex_engine.baseline_query(LIKE_QUERY)
        assert result.canonical_rows() == baseline.canonical_rows()
        assert result.rows  # Chang matches Cha*

    def test_prefix_covers_equality(self, bibtex_engine):
        prefix_rows = bibtex_engine.query(LIKE_QUERY).canonical_rows()
        exact_rows = bibtex_engine.query(
            'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
        ).canonical_rows()
        assert exact_rows <= prefix_rows

    def test_like_on_multiword_field(self, bibtex_engine):
        # Titles start with a capitalised word; LIKE matches the whole value
        # prefix even though the value has many tokens.
        query = 'SELECT r.Title FROM Reference r WHERE r.Title LIKE "Sol*"'
        result = bibtex_engine.query(query)
        baseline = bibtex_engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()
        for row in result.rows:
            assert str(canonical(row[0])).startswith("Sol")

    def test_like_under_partial_index(self, bibtex_partial_engine):
        result = bibtex_partial_engine.query(LIKE_QUERY)
        baseline = bibtex_partial_engine.baseline_query(LIKE_QUERY)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_like_never_claims_exact(self, bibtex_engine):
        plan = bibtex_engine.plan(LIKE_QUERY)
        assert not plan.exact
        assert "σpc[Cha]" in str(plan.optimized_expression)

    def test_like_star_path(self, bibtex_engine):
        query = 'SELECT r FROM Reference r WHERE r.*X.Last_Name LIKE "Corl*"'
        result = bibtex_engine.query(query)
        baseline = bibtex_engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()


class TestExpressionModes:
    def test_prefix_selection_in_algebra(self, bibtex_engine):
        exact = bibtex_engine.index.evaluate("sigma[Chang](Last_Name)")
        prefixed = bibtex_engine.index.evaluate("sigmap[Cha](Last_Name)")
        assert set(exact) <= set(prefixed)

    def test_prefix_contains_mode(self, bibtex_engine):
        narrow = bibtex_engine.index.evaluate("sigmapc[Tay](Abstract)")
        wide = bibtex_engine.index.evaluate("sigmac[Taylor](Abstract)")
        assert set(wide) <= set(narrow)

    def test_pretty_roundtrip(self):
        from repro.algebra.ast import parse_expression, pretty

        for source in ["sigmap[Cha](A)", "sigmapc[Cha](A)"]:
            expression = parse_expression(source)
            assert parse_expression(pretty(expression, unicode_symbols=False)) == (
                expression
            )
