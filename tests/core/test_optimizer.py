"""The optimization algorithm (Proposition 3.5, Theorem 3.6)."""

from repro.algebra.ast import parse_expression
from repro.core.cost import static_cost
from repro.core.optimizer import OptimizationTrace, optimize
from repro.rig.graph import RegionInclusionGraph


class TestPaperExample:
    def test_section_3_2_rewrite(self, paper_rig):
        # e1 = Reference ⊃d Authors ⊃d Name ⊃d σ"Chang"(Last_Name)
        # e2 = Reference ⊃ Authors ⊃ σ"Chang"(Last_Name)
        e1 = parse_expression(
            "Reference >d Authors >d Name >d sigma[Chang](Last_Name)"
        )
        e2 = parse_expression("Reference > Authors > sigma[Chang](Last_Name)")
        assert optimize(e1, paper_rig) == e2

    def test_authors_test_is_kept(self, paper_rig):
        # "we can not omit the test for inclusion in Authors since we need
        # to filter out last names of editors."
        optimized = optimize(
            parse_expression("Reference >d Authors >d Name >d sigma[Chang](Last_Name)"),
            paper_rig,
        )
        assert "Authors" in optimized.region_names()

    def test_name_removed_because_every_path_passes_it(self, paper_rig):
        # "every path in G from Reference to Last_Name passes through Name".
        trace = OptimizationTrace()
        optimize(
            parse_expression("Reference >d Authors >d Name >d sigma[Chang](Last_Name)"),
            paper_rig,
            trace,
        )
        assert ("Authors", "Name", "Last_Name") in trace.shortened

    def test_projection_chain(self, paper_rig):
        # Section 5.2: Last_Name ⊂d Name ⊂d Authors ⊂d Reference
        #          ->  Last_Name ⊂ Authors ⊂ Reference
        e1 = parse_expression("Last_Name <d Name <d Authors <d Reference")
        e2 = parse_expression("Last_Name < Authors < Reference")
        assert optimize(e1, paper_rig) == e2


class TestRelaxDirect:
    def test_unique_edge_relaxes(self, paper_rig):
        assert optimize(
            parse_expression("Reference >d Authors"), paper_rig
        ) == parse_expression("Reference > Authors")

    def test_intermediate_blocks_relaxation(self):
        # A -> B, A -> C, B -> C: something (B) can sit between A and C.
        graph = RegionInclusionGraph.from_adjacency({"A": ["B", "C"], "B": ["C"]})
        expression = parse_expression("A >d C")
        assert optimize(expression, graph) == expression

    def test_rightmost_without_selection_relaxes_on_cycle(self):
        # Doc -> Sec, Sec -> Sec: every walk Doc ->* Sec starts with the
        # edge, so Doc ⊃d Sec ≡ Doc ⊃ Sec when Sec carries no selection.
        graph = RegionInclusionGraph.from_adjacency({"Doc": ["Sec"], "Sec": ["Sec"]})
        assert optimize(parse_expression("Doc >d Sec"), graph) == parse_expression(
            "Doc > Sec"
        )

    def test_rightmost_with_selection_does_not_relax_on_cycle(self):
        # With σ the deep selected section need not be *directly* included:
        # the rewrite would change results (DESIGN.md soundness refinement).
        graph = RegionInclusionGraph.from_adjacency({"Doc": ["Sec"], "Sec": ["Sec"]})
        expression = parse_expression("Doc >d sigma[w](Sec)")
        assert optimize(expression, graph) == expression

    def test_self_nesting_blocks_both_pairs(self):
        graph = RegionInclusionGraph.from_adjacency(
            {"Doc": ["Sec"], "Sec": ["Sec", "P"]}
        )
        # A nested Sec can sit between Doc and Sec AND between Sec and P,
        # and a walk Sec -> Sec -> P does not start with the edge (Sec, P):
        # nothing relaxes.
        expression = parse_expression("Doc >d Sec >d P")
        assert optimize(expression, graph) == expression

    def test_non_rightmost_relaxes_by_disjunct_one(self):
        graph = RegionInclusionGraph.from_adjacency(
            {"Doc": ["Sec"], "Sec": ["P"], "P": ["W"]}
        )
        # Mid-chain pairs relax when nothing can sit between them, and the
        # whole chain then shortens through P (every path passes it).
        expression = parse_expression("Doc >d Sec >d P >d W")
        assert optimize(expression, graph) == parse_expression("Doc > W")


class TestShorten:
    def test_multiple_paths_block_shortening(self, paper_rig):
        # Reference > Authors > Last_Name cannot drop Authors (Editors path).
        expression = parse_expression("Reference > Authors > Last_Name")
        assert optimize(expression, paper_rig) == expression

    def test_cascade_shortening(self):
        graph = RegionInclusionGraph.from_adjacency(
            {"A": ["B"], "B": ["C"], "C": ["D"]}
        )
        expression = parse_expression("A >d B >d C >d D")
        assert optimize(expression, graph) == parse_expression("A > D")

    def test_selected_middle_link_is_kept(self):
        graph = RegionInclusionGraph.from_adjacency(
            {"A": ["B"], "B": ["C"]}
        )
        expression = parse_expression("A > sigma[w](B) > C")
        assert optimize(expression, graph) == expression

    def test_shortening_blocked_across_unrelaxed_direct(self):
        graph = RegionInclusionGraph.from_adjacency(
            {"A": ["B", "X"], "B": ["C"], "X": ["B"]}
        )
        # A ⊃d B cannot relax (X between); no ⊃-pair to merge.
        expression = parse_expression("A >d B > C")
        optimized = optimize(expression, graph)
        assert optimized == expression


class TestStructureRecursion:
    def test_set_operations_optimized_inside(self, paper_rig):
        expression = parse_expression(
            "(Reference >d Authors) | (Reference >d Editors)"
        )
        optimized = optimize(expression, paper_rig)
        assert optimized == parse_expression(
            "(Reference > Authors) | (Reference > Editors)"
        )

    def test_selection_over_chain(self, paper_rig):
        expression = parse_expression("sigma[w](Reference >d Authors)")
        optimized = optimize(expression, paper_rig)
        assert optimized == parse_expression("sigma[w](Reference > Authors)")

    def test_innermost_wrapper(self, paper_rig):
        expression = parse_expression("innermost(Reference >d Authors)")
        optimized = optimize(expression, paper_rig)
        assert optimized == parse_expression("innermost(Reference > Authors)")

    def test_name_is_fixed_point(self, paper_rig):
        assert optimize(parse_expression("Reference"), paper_rig) == parse_expression(
            "Reference"
        )


class TestCostMonotonicity:
    def test_optimized_never_costlier(self, paper_rig):
        expressions = [
            "Reference >d Authors >d Name >d sigma[Chang](Last_Name)",
            "Reference > Authors > Last_Name",
            "Last_Name <d Name <d Authors <d Reference",
            "Reference >d Editors >d Name",
        ]
        for source in expressions:
            expression = parse_expression(source)
            optimized = optimize(expression, paper_rig)
            assert static_cost(optimized) <= static_cost(expression)

    def test_idempotent(self, paper_rig):
        expression = parse_expression(
            "Reference >d Authors >d Name >d sigma[Chang](Last_Name)"
        )
        once = optimize(expression, paper_rig)
        twice = optimize(once, paper_rig)
        assert once == twice


class TestTrace:
    def test_trace_records_rewrites(self, paper_rig):
        trace = OptimizationTrace()
        optimize(
            parse_expression("Reference >d Authors >d Name >d sigma[Chang](Last_Name)"),
            paper_rig,
            trace,
        )
        assert trace.rewrite_count == 4
        description = trace.describe()
        assert "Reference ⊃d Authors" in description
        assert "chain shortened" in description

    def test_trace_empty_when_nothing_applies(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B", "C"], "B": ["C"]})
        trace = OptimizationTrace()
        optimize(parse_expression("A >d C"), graph, trace)
        assert trace.rewrite_count == 0
        assert trace.describe() == "no rewrites applicable"
