"""Extended path expressions and closure helpers (Section 5.3)."""

from repro.algebra.region import RegionSet
from repro.core.pathexpr import (
    containment_closure,
    max_nesting_depth,
    nesting_layers,
    regions_at_depth,
    star_query,
)
from repro.db.query import Attr, StarVar


class TestStarQuery:
    def test_builds_expected_query(self):
        query = star_query("Reference", "Last_Name", "Chang")
        assert query.source_class == "Reference"
        assert query.is_identity_select()
        assert query.where.path.steps == (StarVar("X"), Attr("Last_Name"))
        assert query.where.literal == "Chang"

    def test_runs_on_engine(self, bibtex_engine):
        query = star_query("Reference", "Last_Name", "Chang")
        result = bibtex_engine.query(query)
        baseline = bibtex_engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()


class TestClosure:
    def test_closure_is_single_inclusion(self, sgml_engine):
        sections = containment_closure(sgml_engine.index, "Section", "ParaText")
        # Every section has paragraphs somewhere below it.
        assert sections == sgml_engine.index.instance.get("Section")

    def test_closure_with_word(self, sgml_engine):
        with_word = containment_closure(
            sgml_engine.index, "Section", "ParaText", word="region", mode="contains"
        )
        assert set(with_word) <= set(sgml_engine.index.instance.get("Section"))
        assert with_word  # the generator's vocabulary contains "region"


class TestNestingLayers:
    def test_layers_partition_the_set(self, sgml_engine):
        sections = sgml_engine.index.instance.get("Section")
        layers = nesting_layers(sections)
        assert sum(len(layer) for layer in layers) == len(sections)
        assert len(layers) >= 2  # the generator nests sections

    def test_layer_zero_is_outermost(self, sgml_engine):
        sections = sgml_engine.index.instance.get("Section")
        layers = nesting_layers(sections)
        for outer in layers[0]:
            assert not sections.any_strictly_including(outer)

    def test_regions_at_depth(self, sgml_engine):
        sections = sgml_engine.index.instance.get("Section")
        top = regions_at_depth(sections, 0)
        deeper = regions_at_depth(sections, 1)
        assert top and deeper
        for region in deeper:
            assert top.any_including(region) or sections.any_strictly_including(region)

    def test_out_of_range_depth(self):
        assert regions_at_depth(RegionSet.of((0, 5)), 3) == RegionSet.empty()
        assert regions_at_depth(RegionSet.of((0, 5)), -1) == RegionSet.empty()

    def test_max_nesting_depth(self, sgml_engine):
        sections = sgml_engine.index.instance.get("Section")
        assert max_nesting_depth(sections) >= 1
        assert max_nesting_depth(RegionSet.empty()) == -1
        assert max_nesting_depth(RegionSet.of((0, 5))) == 0
