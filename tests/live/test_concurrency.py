"""Appends racing queries: every concurrent reader sees a consistent
prefix of the acked appends — never a torn or half-applied record.

The invariant is exact, not statistical: with appends serialized under the
engine lock and queries snapshotting the delta, every query result must
equal the full-rebuild answer for *some* prefix of the append sequence.
"""

from __future__ import annotations

import threading

from repro.live import LiveEngine

from tests.live.conftest import QUERY, rebuild_rows

N_QUERY_THREADS = 3


def test_queries_racing_appends_see_only_acked_prefixes(
    schema, saved_index, corpus_text, records
):
    # Every consistent state the readers may observe: base corpus plus
    # each prefix of the append sequence.
    valid_states = [
        frozenset(rebuild_rows(schema, corpus_text + "".join(records[:k])))
        for k in range(len(records) + 1)
    ]

    live = LiveEngine.open(schema, saved_index)
    done = threading.Event()
    failures: list[str] = []

    def appender() -> None:
        try:
            for record in records:
                live.append(record)
        except Exception as error:  # pragma: no cover - failure reporting
            failures.append(f"append raised: {error!r}")
        finally:
            done.set()

    def querier() -> None:
        observed_any = False
        while not failures and (not done.is_set() or not observed_any):
            observed_any = True
            try:
                rows = frozenset(live.query(QUERY).canonical_rows())
            except Exception as error:  # pragma: no cover
                failures.append(f"query raised: {error!r}")
                return
            if rows not in valid_states:
                failures.append(
                    f"torn read: {len(rows)} row(s) matches no acked prefix"
                )
                return

    threads = [threading.Thread(target=querier) for _ in range(N_QUERY_THREADS)]
    threads.append(threading.Thread(target=appender))
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures
        # After the race settles, the final state is the full prefix.
        assert frozenset(live.query(QUERY).canonical_rows()) == valid_states[-1]
    finally:
        live.close()


def test_appends_racing_compaction_lose_nothing(
    schema, saved_index, corpus_text, records
):
    live = LiveEngine.open(schema, saved_index)
    errors: list[BaseException] = []

    def compactor() -> None:
        try:
            for _ in range(4):
                live.compact()
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    thread = threading.Thread(target=compactor)
    try:
        thread.start()
        for record in records:
            live.append(record)
        thread.join(timeout=60)
        assert not errors, errors
        live.compact()
        assert live.query(QUERY).canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records)
        )
    finally:
        live.close()
