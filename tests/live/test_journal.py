"""The write-ahead journal (`live/journal.py`): frame round trips, the
torn-tail/corruption distinction, atomic trims, and the fsync-before-ack
writer."""

from __future__ import annotations

import struct

import pytest

from repro.errors import JournalCorruptError
from repro.live import (
    JournalWriter,
    encode_frame,
    replay_journal,
    trim_journal,
)


def write_frames(path, frames) -> None:
    with open(path, "wb") as handle:
        for seq, record in frames:
            handle.write(encode_frame(seq, record))


def test_round_trip_preserves_frames(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    frames = [(1, "alpha\n"), (2, ""), (3, "gamma with spaces and é\n")]
    write_frames(journal, frames)
    replay = replay_journal(journal)
    assert [(f.seq, f.record) for f in replay.frames] == frames
    assert replay.torn_bytes == 0
    assert replay.max_seq == 3


def test_missing_journal_is_empty(tmp_path) -> None:
    replay = replay_journal(tmp_path / "nope.wal")
    assert replay.frames == []
    assert replay.max_seq == 0


def test_torn_tail_is_truncated_and_repaired(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    write_frames(journal, [(1, "kept\n")])
    clean_size = journal.stat().st_size
    # A crash mid-write: half of the next frame reached the disk.
    partial = encode_frame(2, "lost\n")
    with open(journal, "ab") as handle:
        handle.write(partial[: len(partial) // 2])
    replay = replay_journal(journal)
    assert [f.record for f in replay.frames] == ["kept\n"]
    assert replay.torn_bytes == len(partial) // 2
    # repair=True (default) physically removed the torn bytes.
    assert journal.stat().st_size == clean_size
    assert replay_journal(journal).torn_bytes == 0


def test_torn_header_alone_is_a_torn_tail(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    write_frames(journal, [(1, "kept\n")])
    with open(journal, "ab") as handle:
        handle.write(b"\x00\x00")  # 2 bytes: not even a full header
    replay = replay_journal(journal, repair=False)
    assert [f.seq for f in replay.frames] == [1]
    assert replay.torn_bytes == 2
    # repair=False left the file alone.
    assert replay_journal(journal, repair=False).torn_bytes == 2


def test_checksum_mismatch_raises_typed_error(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    write_frames(journal, [(1, "payload bytes here\n")])
    data = bytearray(journal.read_bytes())
    data[12] ^= 0xFF  # flip one payload byte; length/CRC header intact
    journal.write_bytes(bytes(data))
    with pytest.raises(JournalCorruptError) as info:
        replay_journal(journal)
    assert "checksum" in str(info.value)
    assert info.value.offset == 0


def test_impossible_length_raises(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    # A complete header declaring a 2-byte payload: too small to hold the
    # u64 sequence number — structural damage, not a torn tail.
    journal.write_bytes(struct.pack(">II", 2, 0) + b"xx")
    with pytest.raises(JournalCorruptError):
        replay_journal(journal)


def test_non_increasing_sequence_raises(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    write_frames(journal, [(2, "first\n"), (2, "repeat\n")])
    with pytest.raises(JournalCorruptError) as info:
        replay_journal(journal)
    assert "increase" in str(info.value)


def test_invalid_utf8_raises(tmp_path) -> None:
    import zlib

    journal = tmp_path / "a.wal"
    payload = struct.pack(">Q", 1) + b"\xff\xfe"
    journal.write_bytes(
        struct.pack(">II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload
    )
    with pytest.raises(JournalCorruptError) as info:
        replay_journal(journal)
    assert "UTF-8" in str(info.value)


def test_trim_drops_applied_frames_atomically(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    write_frames(journal, [(1, "a\n"), (2, "b\n"), (3, "c\n")])
    assert trim_journal(journal, applied_seq=2) == 1
    replay = replay_journal(journal)
    assert [(f.seq, f.record) for f in replay.frames] == [(3, "c\n")]
    # No leftover temporary siblings.
    assert [p.name for p in tmp_path.iterdir()] == ["a.wal"]


def test_trim_to_empty_deletes_the_journal(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    write_frames(journal, [(1, "a\n")])
    assert trim_journal(journal, applied_seq=1) == 0
    assert not journal.exists()
    # Trimming a missing journal is a no-op.
    assert trim_journal(journal, applied_seq=5) == 0


def test_trim_with_nothing_to_drop_leaves_bytes_untouched(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    write_frames(journal, [(3, "a\n"), (4, "b\n")])
    before = journal.read_bytes()
    assert trim_journal(journal, applied_seq=2) == 2
    assert journal.read_bytes() == before


def test_writer_acks_are_replayable(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    with JournalWriter(journal) as writer:
        writer.append(1, "one\n")
        writer.append(2, "two\n")
    replay = replay_journal(journal)
    assert [f.record for f in replay.frames] == ["one\n", "two\n"]


def test_writer_extends_an_existing_journal(tmp_path) -> None:
    journal = tmp_path / "a.wal"
    write_frames(journal, [(1, "old\n")])
    with JournalWriter(journal) as writer:
        writer.append(2, "new\n")
    assert [f.seq for f in replay_journal(journal).frames] == [1, 2]
