"""Fixtures for the live-ingestion suite: a saved sharded bibtex index,
self-delimiting records to append, and the full-rebuild reference oracle."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.shard import ShardedEngine
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

QUERY = "SELECT r.Key FROM Reference r"


@pytest.fixture(scope="module")
def schema():
    return bibtex_schema()


@pytest.fixture(scope="module")
def corpus_text() -> str:
    return generate_bibtex(entries=24, seed=11)


@pytest.fixture(scope="module")
def records(schema) -> list[str]:
    """Individual appendable records: one complete entry each, carrying
    their own trailing separator."""
    text = generate_bibtex(entries=4, seed=99)
    tree = schema.parse(text)
    return [text[child.start : child.end] + "\n\n" for child in tree.children]


@pytest.fixture
def saved_index(tmp_path, schema, corpus_text):
    directory = tmp_path / "live-idx"
    ShardedEngine.split(schema, corpus_text, 4).save(directory)
    return directory


def rebuild_rows(schema, logical_corpus: str, query: str = QUERY):
    """The oracle: canonical rows of a from-scratch engine over the
    logical corpus (base text + every acked record, in order)."""
    return FileQueryEngine(schema, logical_corpus).query(query).canonical_rows()
