"""Live ingestion over replicated shards: WAL fan-out, write quorum,
idempotent appends, union replay, and reconcile-at-open
(`live/engine.py` + `live/journal.py`)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import DuplicateRequestError, JournalCorruptError, WriteQuorumError
from repro.index.persist import replica_dir_name
from repro.live import WAL_SUBDIR, LiveEngine, encode_frame, replay_journal
from repro.live.journal import JournalWriter
from repro.shard import ShardedEngine
from repro.shard.manifest import load_shard_manifest

from .conftest import QUERY, rebuild_rows


@pytest.fixture
def replicated_index(tmp_path, schema, corpus_text):
    directory = tmp_path / "live-ridx"
    ShardedEngine.split(schema, corpus_text, 3).save(directory, replicas=2)
    return directory


def open_live(schema, directory, **kwargs) -> LiveEngine:
    return LiveEngine.open(schema, directory, **kwargs)


def tail_wals(directory) -> list[Path]:
    """The tail shard's per-replica journal paths (sorted)."""
    manifest = load_shard_manifest(directory)
    base = Path(manifest.shards[-1].directory).name
    return sorted((directory / WAL_SUBDIR).glob(f"{base}.replica-*.wal"))


# -- journal request-id frames ------------------------------------------------


class TestRequestIdFrames:
    def test_roundtrip_with_and_without_request_id(self, tmp_path) -> None:
        wal = tmp_path / "x.wal"
        with JournalWriter(wal) as writer:
            writer.append(1, "plain")
            writer.append(2, "tagged", request_id="rid-é")
        frames = replay_journal(wal).frames
        assert [(f.seq, f.record, f.request_id) for f in frames] == [
            (1, "plain", None),
            (2, "tagged", "rid-é"),
        ]

    def test_seq_colliding_with_flag_bit_is_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_frame(1 << 63, "r")

    def test_oversized_request_id_is_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_frame(1, "r", request_id="x" * 70_000)

    def test_truncated_rid_length_prefix_is_corruption(self, tmp_path) -> None:
        wal = tmp_path / "x.wal"
        frame = encode_frame(1, "rec", request_id="abcdef")
        # Rewrite the frame claiming a rid longer than the payload holds.
        import struct as _struct
        import zlib as _zlib

        payload = bytearray(frame[8:])
        payload[8:10] = _struct.pack(">H", 60_000)
        header = _struct.pack(
            ">II", len(payload), _zlib.crc32(bytes(payload)) & 0xFFFFFFFF
        )
        wal.write_bytes(header + bytes(payload))
        with pytest.raises(JournalCorruptError):
            replay_journal(wal)


# -- WAL fan-out and quorum ---------------------------------------------------


class TestQuorumAppend:
    def test_append_fans_out_to_every_replica_journal(
        self, schema, replicated_index, records
    ) -> None:
        live = open_live(schema, replicated_index)
        try:
            live.append(records[0])
            live.append(records[1])
        finally:
            live.close()
        wals = tail_wals(replicated_index)
        assert len(wals) == 2
        contents = [w.read_bytes() for w in wals]
        assert contents[0] == contents[1]
        assert [f.seq for f in replay_journal(wals[0]).frames] == [1, 2]

    def test_default_quorum_is_all_replicas(
        self, schema, replicated_index, records, monkeypatch
    ) -> None:
        real_append = JournalWriter.append

        def failing_append(self, seq, record, crash_hook=None, request_id=None):
            if "replica-1" in self.path.name:
                raise OSError("injected: replica-1 disk gone")
            return real_append(
                self, seq, record, crash_hook=crash_hook, request_id=request_id
            )

        monkeypatch.setattr(JournalWriter, "append", failing_append)
        live = open_live(schema, replicated_index)
        try:
            with pytest.raises(WriteQuorumError) as info:
                live.append(records[0])
            assert info.value.acked == 1
            assert info.value.quorum == 2
            # The seq is burned: journal 0 holds frame 1 durably, so a
            # retry (disk back) must not reuse it.
            monkeypatch.undo()
            assert live.append_record(records[0])["seq"] == 2
        finally:
            live.close()

    def test_ack_quorum_1_tolerates_a_dead_replica_journal(
        self, schema, replicated_index, records, corpus_text, monkeypatch
    ) -> None:
        real_append = JournalWriter.append

        def failing_append(self, seq, record, crash_hook=None, request_id=None):
            if "replica-1" in self.path.name:
                raise OSError("injected: replica-1 disk gone")
            return real_append(
                self, seq, record, crash_hook=crash_hook, request_id=request_id
            )

        monkeypatch.setattr(JournalWriter, "append", failing_append)
        live = open_live(schema, replicated_index, ack_quorum=1)
        try:
            assert live.append(records[0]) == 1
            result = live.query(QUERY)
            assert "quorum-degraded" in {w.code for w in result.warnings}
            assert result.canonical_rows() == rebuild_rows(
                schema, corpus_text + records[0]
            )
        finally:
            live.close()

    def test_quorum_is_clamped_to_replica_count(
        self, schema, replicated_index, records
    ) -> None:
        live = open_live(schema, replicated_index, ack_quorum=99)
        try:
            assert live.append(records[0]) == 1  # 99 clamps to "all" (2)
        finally:
            live.close()

    def test_status_reports_replicas_and_quorum(
        self, schema, replicated_index, records
    ) -> None:
        live = open_live(schema, replicated_index, ack_quorum=1)
        try:
            live.append(records[0])
            status = live.status()
            assert status["ack_quorum"] == 1
            assert all(s["replicas"] == 2 for s in status["shards"])
            assert status["request_ids"] == 0
        finally:
            live.close()


# -- idempotent appends -------------------------------------------------------


class TestRequestIdDedupe:
    def test_same_request_id_returns_original_ack(
        self, schema, replicated_index, records
    ) -> None:
        live = open_live(schema, replicated_index)
        try:
            first = live.append_record(records[0], request_id="rid-1")
            assert first == {"seq": 1, "deduped": False}
            replay = live.append_record(records[0], request_id="rid-1")
            assert replay == {"seq": 1, "deduped": True}
            assert live.append_record(records[1])["seq"] == 2
        finally:
            live.close()

    def test_rebinding_a_request_id_conflicts(
        self, schema, replicated_index, records
    ) -> None:
        live = open_live(schema, replicated_index)
        try:
            live.append_record(records[0], request_id="rid-1")
            with pytest.raises(DuplicateRequestError) as info:
                live.append_record(records[1], request_id="rid-1")
            assert info.value.request_id == "rid-1"
            assert info.value.seq == 1
        finally:
            live.close()

    def test_dedupe_window_survives_reopen(
        self, schema, replicated_index, records
    ) -> None:
        live = open_live(schema, replicated_index)
        try:
            live.append_record(records[0], request_id="rid-1")
        finally:
            live.close()
        reopened = open_live(schema, replicated_index)
        try:
            assert reopened.append_record(records[0], request_id="rid-1") == {
                "seq": 1,
                "deduped": True,
            }
        finally:
            reopened.close()

    def test_compaction_closes_the_dedupe_window(
        self, schema, replicated_index, records
    ) -> None:
        """Folded request ids are forgotten with their journal frames: the
        dedupe window *is* the journal retention window, documented and
        pinned here."""
        live = open_live(schema, replicated_index)
        try:
            live.append_record(records[0], request_id="rid-1")
            live.compact()
            again = live.append_record(records[0], request_id="rid-1")
            assert again == {"seq": 2, "deduped": False}
        finally:
            live.close()


# -- recovery -----------------------------------------------------------------


class TestReplicatedRecovery:
    def test_lagging_replica_journal_is_promoted_to_the_union(
        self, schema, replicated_index, records, corpus_text
    ) -> None:
        live = open_live(schema, replicated_index)
        try:
            live.append(records[0])
            live.append(records[1])
        finally:
            live.close()
        lagging = tail_wals(replicated_index)[1]
        lagging.unlink()  # replica-1's journal lost entirely
        reopened = open_live(schema, replicated_index)
        try:
            result = reopened.query(QUERY)
            assert result.canonical_rows() == rebuild_rows(
                schema, corpus_text + records[0] + records[1]
            )
        finally:
            reopened.close()
        # Re-leveled on open: both journals hold the union again.
        wals = tail_wals(replicated_index)
        assert len(wals) == 2
        assert [f.seq for f in replay_journal(wals[1]).frames] == [1, 2]

    def test_disagreeing_replica_journals_refuse_to_guess(
        self, schema, replicated_index, records
    ) -> None:
        live = open_live(schema, replicated_index)
        try:
            live.append(records[0])
        finally:
            live.close()
        second = tail_wals(replicated_index)[1]
        second.write_bytes(encode_frame(1, records[1]))  # same seq, other record
        with pytest.raises(JournalCorruptError, match="disagree at seq 1"):
            open_live(schema, replicated_index)

    @pytest.mark.parametrize("point", ["replica-0", "replica-1"])
    def test_crash_mid_replica_fold_never_duplicates_rows(
        self, schema, replicated_index, records, corpus_text, point
    ) -> None:
        """Compaction crashes after folding one (or both) replica copies
        but before the shard-manifest commit: reopen must converge — every
        acked record exactly once."""

        class Boom(RuntimeError):
            pass

        def crash(name: str) -> None:
            if name == f"compact:replica-saved:{point}":
                raise Boom(name)

        live = open_live(schema, replicated_index, crash_hook=crash)
        try:
            for record in records:
                live.append(record)
            with pytest.raises(Boom):
                live.compact()
        finally:
            live.close()
        reopened = open_live(schema, replicated_index)
        try:
            expected = rebuild_rows(schema, corpus_text + "".join(records))
            assert reopened.query(QUERY).canonical_rows() == expected
            reopened.compact()
            assert reopened.query(QUERY).canonical_rows() == expected
        finally:
            reopened.close()

    def test_open_sweep_leaves_quarantine_dirs_alone(
        self, schema, replicated_index
    ) -> None:
        manifest = load_shard_manifest(replicated_index)
        shard_dir = replicated_index / manifest.shards[0].directory
        keep = shard_dir / "quarantine-1700000000-replica-0"
        keep.mkdir()
        (keep / "evidence.txt").write_text("damaged copy under investigation")
        live = open_live(schema, replicated_index)
        live.close()
        assert keep.is_dir()
        assert (keep / "evidence.txt").exists()

    def test_replicated_compact_then_clean_reopen(
        self, schema, replicated_index, records, corpus_text
    ) -> None:
        live = open_live(schema, replicated_index)
        try:
            for record in records[:2]:
                live.append(record)
            live.compact()
        finally:
            live.close()
        assert tail_wals(replicated_index) == []  # journals trimmed away
        reopened = open_live(schema, replicated_index)
        try:
            result = reopened.query(QUERY)
            assert result.canonical_rows() == rebuild_rows(
                schema, corpus_text + records[0] + records[1]
            )
            assert not result.warnings
            assert reopened.status()["pending_records"] == 0
        finally:
            reopened.close()
