"""The live engine (`live/engine.py`): durable appends, delta-merged
queries, compaction commit points, tail splitting, and crash recovery."""

from __future__ import annotations

import pytest

from repro.api import QueryRequest, QueryResponse
from repro.errors import JournalCorruptError, ParseError
from repro.live import LiveEngine, WAL_SUBDIR, encode_frame, replay_journal
from repro.shard.manifest import load_shard_manifest

from tests.live.conftest import QUERY, rebuild_rows


def open_live(schema, directory, **kwargs) -> LiveEngine:
    return LiveEngine.open(schema, directory, **kwargs)


# -- appending and querying ---------------------------------------------------


def test_append_assigns_monotonic_sequence_numbers(schema, saved_index, records):
    live = open_live(schema, saved_index)
    try:
        assert [live.append(r) for r in records[:3]] == [1, 2, 3]
        assert live.status()["next_seq"] == 4
    finally:
        live.close()


def test_merged_rows_match_a_full_rebuild(schema, saved_index, corpus_text, records):
    live = open_live(schema, saved_index)
    try:
        for record in records:
            live.append(record)
        merged = live.query(QUERY).canonical_rows()
        assert merged == rebuild_rows(schema, corpus_text + "".join(records))
    finally:
        live.close()


def test_unparseable_record_is_rejected_before_journaling(
    schema, saved_index
):
    live = open_live(schema, saved_index)
    try:
        with pytest.raises(ParseError):
            live.append("this is not a bibtex entry")
        assert live.status()["pending_records"] == 0
        assert live.status()["journal_bytes"] == 0
    finally:
        live.close()


def test_query_request_returns_wire_response(schema, saved_index, records):
    live = open_live(schema, saved_index)
    try:
        live.append(records[0])
        response = live.query(QueryRequest(query=QUERY))
        assert isinstance(response, QueryResponse)
        assert response.total_rows == len(live.query(QUERY).rows)
    finally:
        live.close()


def test_stats_reports_live_backend(schema, saved_index, records):
    live = open_live(schema, saved_index)
    try:
        live.append(records[0])
        backend = live.stats().backend
        assert backend["type"] == "live"
        assert backend["base"] == "sharded"
        assert backend["pending_records"] == 1
    finally:
        live.close()


# -- durability across reopen -------------------------------------------------


def test_acked_appends_survive_reopen(schema, saved_index, corpus_text, records):
    live = open_live(schema, saved_index)
    try:
        for record in records[:2]:
            live.append(record)
    finally:
        live.close()  # no compaction: records live only in the journal

    reopened = open_live(schema, saved_index)
    try:
        rows = reopened.query(QUERY)
        assert rows.canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records[:2])
        )
        codes = [w.code for w in rows.warnings]
        assert "delta-replayed" in codes
        # The sequence counter continues where the journal left off.
        assert reopened.append(records[2]) == 3
    finally:
        reopened.close()


def test_clean_index_reopens_without_warnings(schema, saved_index):
    live = open_live(schema, saved_index)
    try:
        assert live.query(QUERY).warnings == []
    finally:
        live.close()


# -- compaction ---------------------------------------------------------------


def test_compact_folds_delta_and_trims_journal(
    schema, saved_index, corpus_text, records
):
    live = open_live(schema, saved_index)
    try:
        for record in records:
            live.append(record)
        report = live.compact()
        assert sum(report["folded"].values()) == len(records)
        status = live.status()
        assert status["pending_records"] == 0
        assert status["journal_bytes"] == 0
        assert live.query(QUERY).canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records)
        )
    finally:
        live.close()

    # A post-compaction open finds nothing to recover.
    reopened = open_live(schema, saved_index)
    try:
        result = reopened.query(QUERY)
        assert result.warnings == []
        assert result.canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records)
        )
    finally:
        reopened.close()


def test_applied_seq_checkpoint_rides_the_shard_manifest(
    schema, saved_index, records
):
    from repro.index.persist import applied_seq

    live = open_live(schema, saved_index)
    try:
        for record in records[:3]:
            live.append(record)
        live.compact()
        tail = live.status()["tail"]
        manifest = load_shard_manifest(saved_index)
        (entry,) = [s for s in manifest.shards if s.name == tail]
        assert applied_seq(saved_index / entry.directory) == 3
        # Sequence numbers never restart, even with the journal gone.
        assert live.append(records[3]) == 4
    finally:
        live.close()


def test_compact_is_idempotent_when_clean(schema, saved_index):
    live = open_live(schema, saved_index)
    try:
        assert live.compact()["folded"] == {}
    finally:
        live.close()


# -- crash points -------------------------------------------------------------


class Boom(RuntimeError):
    pass


@pytest.mark.parametrize(
    "point", ["compact:shard-saved", "compact:manifest-updated"]
)
def test_crash_between_compaction_commit_points_recovers(
    schema, saved_index, corpus_text, records, point
):
    def crash(name: str) -> None:
        if name == point:
            raise Boom(name)

    live = open_live(schema, saved_index, crash_hook=crash)
    try:
        for record in records:
            live.append(record)
        with pytest.raises(Boom):
            live.compact()
    finally:
        live.close()

    reopened = open_live(schema, saved_index)
    try:
        assert reopened.query(QUERY).canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records)
        )
        reopened.compact()
        assert reopened.query(QUERY).canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records)
        )
    finally:
        reopened.close()


def test_torn_journal_tail_recovers_acked_records_only(
    schema, saved_index, corpus_text, records
):
    live = open_live(schema, saved_index)
    try:
        for record in records[:2]:
            live.append(record)
        tail = live.status()["tail"]
    finally:
        live.close()
    # Forge the crash: half of an unacked frame reaches the journal.
    manifest = load_shard_manifest(saved_index)
    (entry,) = [s for s in manifest.shards if s.name == tail]
    from pathlib import Path

    wal = saved_index / WAL_SUBDIR / f"{Path(entry.directory).name}.wal"
    partial = encode_frame(3, records[2])
    with open(wal, "ab") as handle:
        handle.write(partial[: len(partial) // 2])

    reopened = open_live(schema, saved_index)
    try:
        assert reopened.query(QUERY).canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records[:2])
        )
        # The torn bytes are physically gone; the seq was never acked and
        # is reused for the retry.
        assert replay_journal(wal).torn_bytes == 0
        assert reopened.append(records[2]) == 3
    finally:
        reopened.close()


def test_corrupt_journal_raises_typed_error_on_open(
    schema, saved_index, records
):
    live = open_live(schema, saved_index)
    try:
        live.append(records[0])
        tail = live.status()["tail"]
    finally:
        live.close()
    manifest = load_shard_manifest(saved_index)
    (entry,) = [s for s in manifest.shards if s.name == tail]
    from pathlib import Path

    wal = saved_index / WAL_SUBDIR / f"{Path(entry.directory).name}.wal"
    data = bytearray(wal.read_bytes())
    data[10] ^= 0xFF  # in-place damage inside the first frame's payload
    wal.write_bytes(bytes(data))
    with pytest.raises(JournalCorruptError):
        open_live(schema, saved_index)


# -- splitting ----------------------------------------------------------------


def test_oversized_tail_splits_during_compaction(
    schema, saved_index, corpus_text, records
):
    live = open_live(schema, saved_index, max_shard_bytes=1)
    try:
        for record in records:
            live.append(record)
        report = live.compact()
        assert report["split"] is not None
        assert len(report["split"]["into"]) == 2
        status = live.status()
        assert len(status["shards"]) == 5
        assert live.query(QUERY).canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records)
        )
    finally:
        live.close()

    reopened = open_live(schema, saved_index)
    try:
        result = reopened.query(QUERY)
        assert result.warnings == []
        assert result.canonical_rows() == rebuild_rows(
            schema, corpus_text + "".join(records)
        )
    finally:
        reopened.close()


def test_appends_continue_into_the_new_tail_after_split(
    schema, saved_index, corpus_text, records
):
    live = open_live(schema, saved_index, max_shard_bytes=1)
    try:
        live.append(records[0])
        live.compact()  # folds, then splits the tail
        seq = live.append(records[1])
        assert seq == 2
        live.compact()
        assert live.query(QUERY).canonical_rows() == rebuild_rows(
            schema, corpus_text + records[0] + records[1]
        )
    finally:
        live.close()
