"""RIG model and Definition 3.1 satisfaction."""

import pytest

from repro.algebra.region import Instance, RegionSet
from repro.errors import RigError
from repro.rig.graph import RegionInclusionGraph


class TestConstruction:
    def test_from_adjacency(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B", "C"], "B": ["C"]})
        assert graph.nodes == {"A", "B", "C"}
        assert graph.has_edge("A", "B")
        assert graph.has_edge("B", "C")
        assert not graph.has_edge("C", "A")

    def test_successors_predecessors(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B", "C"]})
        assert graph.successors("A") == {"B", "C"}
        assert graph.predecessors("B") == {"A"}
        assert graph.successors("C") == frozenset()

    def test_coincident_requires_edge(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"]})
        graph.mark_coincident("A", "B")
        assert ("A", "B") in graph.coincident_edges
        with pytest.raises(RigError):
            graph.mark_coincident("B", "A")

    def test_contains(self):
        graph = RegionInclusionGraph(nodes=["A"])
        assert "A" in graph
        assert "B" not in graph

    def test_subgraph(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"], "B": ["C"]})
        sub = graph.subgraph(["A", "B"])
        assert sub.nodes == {"A", "B"}
        assert sub.has_edge("A", "B")
        assert not sub.has_node("C")


class TestSatisfaction:
    def test_satisfying_instance(self, paper_rig):
        instance = Instance(
            {
                "Reference": RegionSet.of((0, 100)),
                "Authors": RegionSet.of((10, 40)),
                "Name": RegionSet.of((12, 30)),
                "Last_Name": RegionSet.of((20, 28)),
            }
        )
        assert paper_rig.is_satisfied_by(instance)

    def test_missing_edge_is_violation(self, paper_rig):
        # A Last_Name directly inside a Reference is not allowed by the
        # paper's RIG (it must be under a Name).
        instance = Instance(
            {
                "Reference": RegionSet.of((0, 100)),
                "Last_Name": RegionSet.of((20, 28)),
            }
        )
        assert not paper_rig.is_satisfied_by(instance)
        violations = paper_rig.violations(instance)
        assert any("Last_Name" in violation for violation in violations)

    def test_indirect_inclusion_is_fine(self, paper_rig):
        # Reference contains Last_Name *through* Authors/Name: no direct pair.
        instance = Instance(
            {
                "Reference": RegionSet.of((0, 100)),
                "Authors": RegionSet.of((10, 40)),
                "Last_Name": RegionSet.of((20, 28)),
            }
        )
        # Authors between Reference and Last_Name; but Authors -> Last_Name
        # has no edge either, so still a violation.
        assert not paper_rig.is_satisfied_by(instance)

    def test_unknown_name_is_violation(self, paper_rig):
        instance = Instance({"Mystery": RegionSet.of((0, 5), (0, 5))})
        assert paper_rig.is_satisfied_by(instance)  # single name, no pairs
        instance = Instance(
            {"Mystery": RegionSet.of((0, 5)), "Reference": RegionSet.of((0, 5))}
        )
        assert not paper_rig.is_satisfied_by(instance)

    def test_equal_extents_need_coincidence(self):
        graph = RegionInclusionGraph.from_adjacency({"Authors": ["Name"]})
        instance = Instance(
            {"Authors": RegionSet.of((0, 10)), "Name": RegionSet.of((0, 10))}
        )
        assert not graph.is_satisfied_by(instance)
        graph.mark_coincident("Authors", "Name")
        assert graph.is_satisfied_by(instance)

    def test_violation_limit(self, paper_rig):
        instance = Instance(
            {
                "Reference": RegionSet.of((0, 10), (20, 30), (40, 50)),
                "Last_Name": RegionSet.of((2, 4), (22, 24), (42, 44)),
            }
        )
        assert len(paper_rig.violations(instance, limit=2)) == 2

    def test_empty_instance_satisfies(self, paper_rig):
        assert paper_rig.is_satisfied_by(Instance())
