"""Path analyses: the optimizer's graph-side preconditions."""

from repro.rig.graph import RegionInclusionGraph
from repro.rig.paths import (
    co_reach_plus,
    coincident_related,
    every_path_ends_with_edge,
    every_path_starts_with_edge,
    every_path_through,
    has_intermediate,
    reach_plus,
    simple_paths,
    walks_of_length,
)


def diamond() -> RegionInclusionGraph:
    #    A -> B -> D,  A -> C -> D,  A -> D
    return RegionInclusionGraph.from_adjacency(
        {"A": ["B", "C", "D"], "B": ["D"], "C": ["D"]}
    )


def paper_graph(paper_rig) -> RegionInclusionGraph:
    return paper_rig


class TestReachability:
    def test_reach_plus(self):
        graph = diamond()
        assert reach_plus(graph, "A") == {"B", "C", "D"}
        assert reach_plus(graph, "D") == frozenset()

    def test_co_reach_plus(self):
        graph = diamond()
        assert co_reach_plus(graph, "D") == {"A", "B", "C"}
        assert co_reach_plus(graph, "A") == frozenset()

    def test_reach_plus_with_cycle(self):
        graph = RegionInclusionGraph.from_adjacency({"S": ["S", "P"]})
        assert reach_plus(graph, "S") == {"S", "P"}


class TestHasIntermediate:
    def test_diamond_has_intermediates(self):
        assert has_intermediate(diamond(), "A", "D")

    def test_single_edge_has_none(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"]})
        assert not has_intermediate(graph, "A", "B")

    def test_paper_reference_authors(self, paper_rig):
        # Nothing can sit between Reference and Authors.
        assert not has_intermediate(paper_rig, "Reference", "Authors")
        # Name can sit between Reference and Last_Name.
        assert has_intermediate(paper_rig, "Reference", "Last_Name")

    def test_cycle_through_target_is_intermediate(self):
        # Section -> Section self-nesting: a Section can sit between.
        graph = RegionInclusionGraph.from_adjacency({"Doc": ["Sec"], "Sec": ["Sec"]})
        assert has_intermediate(graph, "Doc", "Sec")


class TestEveryPathStartsWithEdge:
    def test_requires_edge(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"], "B": ["C"]})
        assert not every_path_starts_with_edge(graph, "A", "C")

    def test_single_edge(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"]})
        assert every_path_starts_with_edge(graph, "A", "B")

    def test_bypass_path_fails(self):
        assert not every_path_starts_with_edge(diamond(), "A", "D")

    def test_cycle_after_edge_still_starts_with_it(self):
        # Doc -> Sec, Sec -> Sec: every walk Doc ->* Sec starts with the edge.
        graph = RegionInclusionGraph.from_adjacency({"Doc": ["Sec"], "Sec": ["Sec"]})
        assert every_path_starts_with_edge(graph, "Doc", "Sec")

    def test_self_loop_on_source_fails(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["A", "B"]})
        assert not every_path_starts_with_edge(graph, "A", "B")


class TestEveryPathEndsWithEdge:
    def test_single_edge(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"]})
        assert every_path_ends_with_edge(graph, "A", "B")

    def test_other_predecessor_reachable_fails(self):
        assert not every_path_ends_with_edge(diamond(), "A", "D")

    def test_unreachable_predecessor_is_fine(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"], "X": ["B"]})
        assert every_path_ends_with_edge(graph, "A", "B")


class TestEveryPathThrough:
    def test_paper_shortening_condition(self, paper_rig):
        # Every path Authors -> Last_Name goes through Name.
        assert every_path_through(paper_rig, "Authors", "Last_Name", "Name")
        # Not every path Reference -> Last_Name goes through Authors
        # (Editors is an alternative).
        assert not every_path_through(paper_rig, "Reference", "Last_Name", "Authors")
        # But every path Reference -> Last_Name goes through Name.
        assert every_path_through(paper_rig, "Reference", "Last_Name", "Name")

    def test_no_walk_at_all(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"]})
        assert not every_path_through(graph, "B", "A", "X")

    def test_endpoint_via(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"], "B": ["C"]})
        assert every_path_through(graph, "A", "C", "A")
        assert every_path_through(graph, "A", "C", "C")


class TestCoincidence:
    def test_unrelated_by_default(self, paper_rig):
        assert not coincident_related(paper_rig, "Authors", "Name")

    def test_chain_in_either_direction(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"], "B": ["C"]})
        graph.mark_coincident("A", "B")
        graph.mark_coincident("B", "C")
        assert coincident_related(graph, "A", "C")
        assert coincident_related(graph, "C", "A")

    def test_same_name(self, paper_rig):
        assert coincident_related(paper_rig, "Name", "Name")

    def test_broken_chain(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"], "B": ["C"]})
        graph.mark_coincident("A", "B")
        assert not coincident_related(graph, "A", "C")


class TestEnumeration:
    def test_simple_paths_diamond(self):
        paths = sorted(simple_paths(diamond(), "A", "D"))
        assert paths == [("A", "B", "D"), ("A", "C", "D"), ("A", "D")]

    def test_simple_paths_none(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"]})
        assert list(simple_paths(graph, "B", "A")) == []

    def test_simple_paths_same_node(self):
        graph = RegionInclusionGraph.from_adjacency({"A": ["B"]})
        assert list(simple_paths(graph, "A", "A")) == [("A",)]

    def test_walks_of_length(self):
        graph = RegionInclusionGraph.from_adjacency({"S": ["S", "P"]})
        assert list(walks_of_length(graph, "S", "P", 1)) == [("S", "P")]
        assert list(walks_of_length(graph, "S", "P", 2)) == [("S", "S", "P")]
        assert list(walks_of_length(graph, "S", "P", 0)) == []
