"""Deriving RIGs from grammars (Sections 4.2 and 6.1)."""

import pytest

from repro.errors import RigError
from repro.rig.derive import derive_full_rig, derive_partial_rig
from repro.workloads.bibtex import bibtex_grammar
from repro.workloads.sgml import sgml_grammar


class TestFullRig:
    def test_bibtex_matches_paper_figure(self):
        graph = derive_full_rig(bibtex_grammar(), include_root=False)
        # The fragment shown in Section 3.2:
        assert graph.has_edge("Reference", "Authors")
        assert graph.has_edge("Reference", "Editors")
        assert graph.has_edge("Reference", "Key")
        assert graph.has_edge("Reference", "Title")
        assert graph.has_edge("Authors", "Name")
        assert graph.has_edge("Editors", "Name")
        assert graph.has_edge("Name", "First_Name")
        assert graph.has_edge("Name", "Last_Name")
        # And no inverted or skipping edges:
        assert not graph.has_edge("Authors", "Reference")
        assert not graph.has_edge("Reference", "Name")
        assert not graph.has_edge("Reference", "Last_Name")

    def test_root_excluded_when_requested(self):
        grammar = bibtex_grammar()
        with_root = derive_full_rig(grammar, include_root=True)
        without_root = derive_full_rig(grammar, include_root=False)
        assert grammar.start in with_root.nodes
        assert grammar.start not in without_root.nodes

    def test_star_rules_are_coincidence_capable(self):
        graph = derive_full_rig(bibtex_grammar())
        # A single Name can span the whole Authors list.
        assert ("Authors", "Name") in graph.coincident_edges
        # But a Name never spans a whole Reference (literal braces).
        assert ("Reference", "Key") not in graph.coincident_edges

    def test_sgml_rig_is_cyclic(self):
        graph = derive_full_rig(sgml_grammar())
        assert graph.has_edge("Section", "Subsections")
        assert graph.has_edge("Subsections", "Section")


class TestPartialRig:
    def test_paper_partial_index(self):
        # Section 6.1: Ip = {Reference, Key, Last_Name}.
        graph = derive_partial_rig(
            bibtex_grammar(), {"Reference", "Key", "Last_Name"}
        )
        assert graph.nodes == {"Reference", "Key", "Last_Name"}
        assert graph.has_edge("Reference", "Key")
        assert graph.has_edge("Reference", "Last_Name")
        assert not graph.has_edge("Key", "Last_Name")

    def test_contraction_through_one_level(self):
        graph = derive_partial_rig(bibtex_grammar(), {"Reference", "Name"})
        # Reference -> (Authors|Editors) -> Name, interiors unindexed.
        assert graph.has_edge("Reference", "Name")

    def test_indexed_interior_blocks_contraction(self):
        graph = derive_partial_rig(
            bibtex_grammar(), {"Reference", "Authors", "Last_Name"}
        )
        # Reference -> Last_Name via Editors/Name (both unindexed) exists...
        assert graph.has_edge("Reference", "Last_Name")
        # ...and Authors -> Last_Name via unindexed Name exists too.
        assert graph.has_edge("Authors", "Last_Name")

    def test_unknown_name_rejected(self):
        with pytest.raises(RigError):
            derive_partial_rig(bibtex_grammar(), {"Nonsense"})

    def test_contraction_over_star_wrapper(self):
        # Section -> Subsections -> Section contracts to a self-edge, but it
        # is *not* coincidence-capable: the <sec> literals keep a parent
        # section's extent strictly larger than any child's.
        grammar = sgml_grammar()
        graph = derive_partial_rig(grammar, {"Section", "Document"})
        assert graph.has_edge("Section", "Section")
        assert ("Section", "Section") not in graph.coincident_edges

    def test_coincident_contraction_through_unit_chain(self):
        # A -> B (unit), B -> C*: contracting B away keeps A -> C coincident
        # (a single C can span the whole A).
        from repro.schema.grammar import Grammar, NonTerminal, SeqRule, StarRule, TWord

        grammar = Grammar(
            [
                SeqRule("A", [NonTerminal("B")]),
                StarRule("B", NonTerminal("C")),
                SeqRule("C", [TWord()]),
            ],
            start="A",
        )
        graph = derive_partial_rig(grammar, {"A", "C"})
        assert graph.has_edge("A", "C")
        assert ("A", "C") in graph.coincident_edges

    def test_non_coincident_paths_stay_plain(self):
        graph = derive_partial_rig(
            bibtex_grammar(), {"Reference", "Last_Name"}
        )
        # Reference -> ... -> Last_Name passes a literal-delimited step.
        assert ("Reference", "Last_Name") not in graph.coincident_edges


class TestDerivedRigIsSatisfied:
    @pytest.mark.parametrize("entries", [5, 20])
    def test_bibtex_instances_satisfy_full_rig(self, entries):
        from repro.index.builder import build_instance
        from repro.index.config import IndexConfig
        from repro.workloads.bibtex import bibtex_schema, generate_bibtex

        schema = bibtex_schema()
        text = generate_bibtex(entries=entries, seed=entries)
        tree = schema.parse(text)
        instance = build_instance(tree, IndexConfig.full(), schema.grammar.start)
        graph = derive_full_rig(schema.grammar, include_root=False)
        assert graph.violations(instance, limit=3) == []

    def test_sgml_instances_satisfy_full_rig(self):
        from repro.index.builder import build_instance
        from repro.index.config import IndexConfig
        from repro.workloads.sgml import generate_sgml, sgml_schema

        schema = sgml_schema()
        text = generate_sgml(documents=4, depth=3, seed=2)
        tree = schema.parse(text)
        instance = build_instance(tree, IndexConfig.full(), schema.grammar.start)
        graph = derive_full_rig(schema.grammar, include_root=False)
        assert graph.violations(instance, limit=3) == []

    def test_partial_instances_satisfy_partial_rig(self):
        from repro.index.builder import build_instance
        from repro.index.config import IndexConfig
        from repro.workloads.bibtex import bibtex_schema, generate_bibtex

        schema = bibtex_schema()
        text = generate_bibtex(entries=10, seed=3)
        tree = schema.parse(text)
        names = {"Reference", "Key", "Last_Name"}
        instance = build_instance(
            tree, IndexConfig.partial(names), schema.grammar.start
        )
        graph = derive_partial_rig(schema.grammar, names)
        assert graph.violations(instance, limit=3) == []
