"""The chaos harness itself: the invariant oracle's verdict logic, seed
parsing, the scenario registry's shape, and one end-to-end faulted run
per backend judged against the healthy twin."""

from __future__ import annotations

import pytest

from repro.chaos import (
    BACKENDS,
    SCENARIOS,
    Fixtures,
    Verdict,
    parse_seeds,
    render_report,
    run_matrix,
    run_one,
)
from repro.errors import BudgetExceededError, IndexCorruptError


# -- the oracle ----------------------------------------------------------------


class TestVerdict:
    def test_identical_rows_pass(self):
        verdict = Verdict()
        verdict.rows_identical_or_flagged({("a",)}, {("a",)}, codes=[])
        assert verdict.passed

    def test_flagged_subset_passes(self):
        verdict = Verdict()
        verdict.rows_identical_or_flagged(
            {("a",)}, {("a",), ("b",)}, codes=["partial-result"]
        )
        assert verdict.passed

    def test_silent_loss_fails(self):
        verdict = Verdict()
        verdict.rows_identical_or_flagged({("a",)}, {("a",), ("b",)}, codes=[])
        assert not verdict.passed
        assert "WITHOUT" in verdict.failures[0].message

    def test_invented_rows_fail_even_when_flagged(self):
        verdict = Verdict()
        verdict.rows_identical_or_flagged(
            {("a",), ("x",)}, {("a",)}, codes=["partial-result"]
        )
        assert not verdict.passed
        assert "invented" in verdict.failures[0].message

    def test_undocumented_warning_code_fails(self):
        verdict = Verdict()
        verdict.codes_within(["shard-failed", "surprise"], ["shard-failed"])
        assert not verdict.passed

    def test_bound_violation_fails(self):
        verdict = Verdict()
        verdict.bounded(elapsed_s=2.0, bound_s=0.5)
        assert not verdict.passed

    def test_typed_error_must_be_documented(self):
        verdict = Verdict()
        verdict.typed_error(BudgetExceededError("wall_clock", 1, 2), (IndexCorruptError,))
        assert not verdict.passed
        verdict = Verdict()
        verdict.typed_error(None, (IndexCorruptError,))
        assert not verdict.passed  # a fault that vanished silently is a failure

    def test_envelope_error_accepts_any_expected_status(self):
        verdict = Verdict()
        payload = {"error": {"code": "server-draining"}}
        verdict.envelope_error(503, payload, {429, 503}, ["server-draining"])
        assert verdict.passed


# -- seed parsing --------------------------------------------------------------


def test_parse_seeds() -> None:
    assert parse_seeds("3") == [3]
    assert parse_seeds("0..3") == [0, 1, 2, 3]
    assert parse_seeds("0..2,7") == [0, 1, 2, 7]
    with pytest.raises(ValueError):
        parse_seeds("5..1")
    with pytest.raises(ValueError):
        parse_seeds("")


# -- the registry --------------------------------------------------------------


def test_every_scenario_declares_valid_backends() -> None:
    assert SCENARIOS, "the registry must not be empty"
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.backends, name
        assert set(scenario.backends) <= set(BACKENDS), name
        assert scenario.description and scenario.injection, name


def test_issue_required_scenarios_are_registered() -> None:
    # The CI matrix's fixed axes must exist by name.
    assert {"hang", "corrupt", "transient-io", "overload"} <= set(SCENARIOS)


# -- end-to-end runs -----------------------------------------------------------


@pytest.fixture(scope="module")
def fixtures() -> Fixtures:
    return Fixtures.build()


def test_hung_shard_run_passes_the_oracle(fixtures) -> None:
    runs = run_matrix([0], scenarios=["hang"], fixtures=fixtures)
    assert len(runs) == 2  # solo + sharded
    for run in runs:
        assert run.passed, run.describe()


def test_runs_are_deterministic_per_seed(fixtures) -> None:
    scenario = SCENARIOS["corrupt"]
    first = run_one(scenario, fixtures, "solo", seed=6)
    second = run_one(scenario, fixtures, "solo", seed=6)
    assert first.passed and second.passed
    # Same seed, same fault choices: the oracle ran the same checks and
    # reached the same conclusions both times.
    assert [c.name for c in first.verdict.checks] == [
        c.name for c in second.verdict.checks
    ]


def test_crashing_scenario_is_a_failed_run_not_an_exception(fixtures) -> None:
    from repro.chaos.scenarios import Scenario

    def explode(fx, rng, backend, workdir):
        raise RuntimeError("scenario bug")

    bomb = Scenario(
        name="bomb",
        description="always crashes",
        injection="none",
        backends=("solo",),
        run=explode,
    )
    run = run_one(bomb, fixtures, "solo", seed=0)
    assert not run.passed
    assert run.error is not None and "scenario bug" in run.error
    assert "harness crashed" in run.describe()
    report = render_report([run])
    assert "0/1" in report and "1 FAILED" in report
