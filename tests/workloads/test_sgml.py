"""The SGML workload (self-nested sections)."""

from repro.core.pathexpr import max_nesting_depth
from repro.workloads.sgml import SgmlGenerator, generate_sgml, sgml_schema


class TestGenerator:
    def test_deterministic(self):
        assert generate_sgml(documents=3, seed=1) == generate_sgml(documents=3, seed=1)

    def test_document_count(self):
        schema = sgml_schema()
        text = generate_sgml(documents=4, seed=0)
        image = schema.database_image(text)
        assert len(list(image.root)) == 4

    def test_nesting_depth_knob(self):
        schema = sgml_schema()
        shallow_text = SgmlGenerator(documents=6, depth=1, seed=3).generate()
        deep_text = SgmlGenerator(documents=6, depth=4, seed=3).generate()
        shallow_tree = schema.parse(shallow_text)
        deep_tree = schema.parse(deep_text)

        def section_depth(tree):
            from repro.algebra.region import Region, RegionSet

            spans = RegionSet(
                Region(s, e)
                for symbol, s, e in tree.nonterminal_spans()
                if symbol == "Section"
            )
            return max_nesting_depth(spans)

        assert section_depth(shallow_text and shallow_tree) == 0
        assert section_depth(deep_tree) >= 2

    def test_document_structure(self):
        schema = sgml_schema()
        text = generate_sgml(documents=2, seed=0)
        image = schema.database_image(text)
        document = list(image.root)[0]
        assert document.class_name == "Document"
        assert document.has("TitleText")  # Title is transparent
        assert document.has("Sections")

    def test_query_on_engine(self, sgml_engine):
        query = 'SELECT d FROM Document d WHERE d.*X.ParaText = "region index query"'
        result = sgml_engine.query(query)
        baseline = sgml_engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_star_title_query_matches_baseline(self, sgml_engine):
        query = 'SELECT d FROM Document d WHERE d.*X.TitleText = "Compaction"'
        result = sgml_engine.query(query)
        baseline = sgml_engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()
