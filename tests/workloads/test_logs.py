"""The structured-log workload."""

from repro.db.values import canonical
from repro.workloads.logs import LogGenerator, generate_log, log_schema


class TestGenerator:
    def test_deterministic(self):
        assert generate_log(entries=5, seed=1) == generate_log(entries=5, seed=1)

    def test_entry_count_parses(self):
        schema = log_schema()
        text = generate_log(entries=25, seed=0)
        image = schema.database_image(text)
        assert len(list(image.root)) == 25

    def test_error_rate_knob(self):
        high = LogGenerator(entries=200, seed=1, error_rate=0.9).generate()
        low = LogGenerator(entries=200, seed=1, error_rate=0.0).generate()
        assert high.count(" ERROR ") > 100
        assert low.count(" ERROR ") == 0

    def test_entry_structure(self):
        schema = log_schema()
        text = generate_log(entries=5, seed=0, requests_per_entry=2)
        image = schema.database_image(text)
        entry = list(image.root)[0]
        assert entry.class_name == "Entry"
        assert entry.has("Timestamp")
        assert entry.has("Level")
        assert entry.has("Requests")
        timestamp = entry.get("Timestamp")
        assert timestamp.has("Date")
        assert timestamp.has("Time")

    def test_requests_nested(self):
        schema = log_schema()
        text = generate_log(entries=50, seed=0, requests_per_entry=2)
        image = schema.database_image(text)
        some_requests = False
        for entry in image.root:
            for request in entry.get("Requests"):
                some_requests = True
                assert request.has("Method")
                assert request.has("Status")
        assert some_requests

    def test_query_on_engine(self, log_engine):
        result = log_engine.query('SELECT e FROM Entry e WHERE e.Level = "ERROR"')
        baseline = log_engine.baseline_query(
            'SELECT e FROM Entry e WHERE e.Level = "ERROR"'
        )
        assert result.canonical_rows() == baseline.canonical_rows()
        assert result.rows

    def test_nested_request_query(self, log_engine):
        query = (
            'SELECT e FROM Entry e WHERE e.Requests.Request.Status = "503"'
        )
        result = log_engine.query(query)
        baseline = log_engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()
        for row in result.rows:
            statuses = {
                canonical(r.get("Status")) for r in row[0].get("Requests")
            }
            assert "503" in statuses
