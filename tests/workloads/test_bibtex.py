"""The BibTeX workload."""

from repro.db.values import canonical
from repro.workloads.bibtex import (
    BibtexGenerator,
    bibtex_grammar,
    bibtex_schema,
    generate_bibtex,
)


class TestGenerator:
    def test_deterministic(self):
        assert generate_bibtex(entries=5, seed=1) == generate_bibtex(entries=5, seed=1)
        assert generate_bibtex(entries=5, seed=1) != generate_bibtex(entries=5, seed=2)

    def test_entry_count(self):
        text = generate_bibtex(entries=7, seed=0)
        assert text.count("@INCOLLECTION{") == 7

    def test_parses_cleanly(self):
        schema = bibtex_schema()
        for seed in range(5):
            text = generate_bibtex(entries=10, seed=seed)
            image = schema.database_image(text)
            assert len(list(image.root)) == 10

    def test_editor_overlap_knob(self):
        overlapping = BibtexGenerator(entries=60, seed=1, editor_overlap=1.0).generate()
        disjoint = BibtexGenerator(entries=60, seed=1, editor_overlap=0.0).generate()
        # With a disjoint editor pool, editor names are upper-cased variants.
        assert "CHANG" not in overlapping
        assert any(name in disjoint for name in ("CHANG", "MILO", "TOMPA", "GONNET"))

    def test_self_edited_rate(self):
        schema = bibtex_schema()
        text = BibtexGenerator(entries=40, seed=2, self_edited_rate=1.0).generate()
        image = schema.database_image(text)
        self_edited = 0
        for reference in image.root:
            authors = {canonical(n) for n in reference.get("Authors")}
            editors = {canonical(n) for n in reference.get("Editors")}
            if authors & editors:
                self_edited += 1
        assert self_edited == 40

    def test_size_scales_linearly(self):
        small = len(generate_bibtex(entries=10, seed=0))
        large = len(generate_bibtex(entries=100, seed=0))
        assert 8 < large / small < 12


class TestGrammar:
    def test_grammar_nonterminals(self):
        grammar = bibtex_grammar()
        expected = {
            "Ref_Set", "Reference", "Key", "Authors", "Editors", "Name",
            "First_Name", "Last_Name", "Title", "Booktitle", "Year",
            "Publisher", "Address", "Pages", "Referred", "RefKey",
            "Keywords", "Keyword", "Abstract",
        }
        assert set(grammar.nonterminals) == expected

    def test_nested_name_structure(self):
        schema = bibtex_schema()
        text = generate_bibtex(entries=1, seed=0)
        image = schema.database_image(text)
        reference = list(image.root)[0]
        for name in reference.get("Authors"):
            assert name.has("First_Name")
            assert name.has("Last_Name")

    def test_keywords_are_tagged_atoms(self):
        schema = bibtex_schema()
        text = generate_bibtex(entries=1, seed=0)
        image = schema.database_image(text)
        reference = list(image.root)[0]
        for keyword in reference.get("Keywords"):
            assert keyword.type_name == "Keyword"
