"""The source-code workload (programs, disjunctive statements)."""

import pytest

from repro.core.engine import FileQueryEngine
from repro.db.values import canonical
from repro.index.config import IndexConfig
from repro.rig.derive import derive_full_rig
from repro.workloads.source import (
    CALLERS_OF_ALLOC,
    SELF_CALLERS,
    TOP_LEVEL_CALLS,
    SourceGenerator,
    generate_source,
    source_grammar,
    source_schema,
)


@pytest.fixture(scope="module")
def engine() -> FileQueryEngine:
    return FileQueryEngine(source_schema(), generate_source(functions=25, seed=1))


class TestGenerator:
    def test_deterministic(self):
        assert generate_source(functions=5, seed=1) == generate_source(
            functions=5, seed=1
        )

    def test_function_count(self):
        text = generate_source(functions=9, seed=0)
        assert text.count("def ") == 9

    def test_parses_cleanly(self):
        schema = source_schema()
        for seed in range(4):
            image = schema.database_image(generate_source(functions=8, seed=seed))
            assert len(list(image.root)) == 8

    def test_depth_knob(self):
        flat = SourceGenerator(functions=20, depth=0, seed=2).generate()
        nested = SourceGenerator(functions=20, depth=3, seed=2).generate()
        assert "if" not in flat
        assert "if" in nested


class TestStructure:
    def test_disjunctive_stmt_is_transparent(self):
        schema = source_schema()
        assert "Stmt" in schema.transparent_nonterminals()

    def test_rig_is_cyclic_through_if(self):
        rig = derive_full_rig(source_grammar(), include_root=False)
        # The grammar's edges: Body -> Stmt -> If -> Body — a cycle.
        assert rig.has_edge("Body", "Stmt")
        assert rig.has_edge("Stmt", "If")
        assert rig.has_edge("If", "Body")
        from repro.rig.paths import reach_plus

        assert "Body" in reach_plus(rig, "Body")

    def test_statement_values_have_their_own_types(self, engine):
        database = engine.load_baseline_database()
        function = database.extent("Function")[0]
        body = function.get("Body")
        type_names = {
            value.class_name for value in body
        }
        assert type_names <= {"Call", "Assign", "If"}

    def test_call_objects_loaded_as_extent(self, engine):
        database = engine.load_baseline_database()
        assert database.extent("Call")
        assert database.extent("Assign")


class TestQueries:
    @pytest.mark.parametrize(
        "query", [CALLERS_OF_ALLOC, TOP_LEVEL_CALLS, SELF_CALLERS]
    )
    def test_matches_baseline(self, engine, query):
        result = engine.query(query)
        baseline = engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_star_query_finds_nested_calls(self, engine):
        any_depth = engine.query(CALLERS_OF_ALLOC)
        top_level = engine.query(
            'SELECT f FROM Function f WHERE f.Body.Call.Callee = "alloc"'
        )
        assert set(top_level.canonical_rows()) <= set(any_depth.canonical_rows())

    def test_concrete_path_through_disjunctive_wrapper(self, engine):
        # Body.Call navigates through the transparent Stmt.
        result = engine.query(TOP_LEVEL_CALLS)
        for row in result.rows:
            assert str(canonical(row[0]))

    def test_nested_if_path(self, engine):
        query = (
            "SELECT f.FuncName FROM Function f "
            'WHERE f.Body.If.Body.Call.Callee = "alloc"'
        )
        result = engine.query(query)
        baseline = engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_condition_query(self, engine):
        query = 'SELECT f FROM Function f WHERE f.*X.Cond = "has_lock"'
        result = engine.query(query)
        baseline = engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_partial_index_matches(self):
        config = IndexConfig.partial({"Function", "Callee"})
        engine = FileQueryEngine(
            source_schema(), generate_source(functions=15, seed=3), config
        )
        result = engine.query(CALLERS_OF_ALLOC)
        baseline = engine.baseline_query(CALLERS_OF_ALLOC)
        assert result.canonical_rows() == baseline.canonical_rows()
        assert result.plan.exact  # star gap: any path acceptable

    def test_call_extent_queries(self, engine):
        # Call is itself a class: query it directly.
        query = 'SELECT c FROM Call c WHERE c.Callee = "alloc"'
        result = engine.query(query)
        baseline = engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()
