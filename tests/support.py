"""Shared test helpers: random RIG-respecting instances, random inclusion
chains, and brute-force reference implementations.

The instance generator builds a synthetic *text* together with its region
instance by top-down expansion along RIG edges: every parent/child placement
follows an edge, siblings are separated by padding, and children sit
strictly inside their parents — so the produced instance always satisfies
the RIG (Definition 3.1) with distinct extents everywhere.
"""

from __future__ import annotations

import random

from repro.algebra.region import Instance, Region, RegionSet
from repro.index.word_index import WordIndex
from repro.rig.graph import RegionInclusionGraph

VOCABULARY = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


def random_rig(rng: random.Random, size: int = 5, cyclic: bool = False) -> RegionInclusionGraph:
    """A random connected-ish RIG over ``R0..R{size-1}``.

    Edges mostly go "downwards" (lower index to higher), so the graph is a
    DAG unless ``cyclic`` adds a back edge.
    """
    names = [f"R{i}" for i in range(size)]
    graph = RegionInclusionGraph(nodes=names)
    for i in range(size - 1):
        # A spine so every node is reachable.
        graph.add_edge(names[i], names[i + 1])
    for _ in range(rng.randint(0, size)):
        a, b = rng.randrange(size), rng.randrange(size)
        if a < b:
            graph.add_edge(names[a], names[b])
    if cyclic and size >= 3:
        graph.add_edge(names[rng.randint(1, size - 1)], names[rng.randint(0, 1)])
    return graph


def instance_from_rig(
    graph: RegionInclusionGraph,
    rng: random.Random,
    top_regions: int = 4,
    max_depth: int = 4,
    max_children: int = 3,
) -> tuple[str, Instance]:
    """Build ``(text, instance)`` satisfying ``graph`` by top-down expansion."""
    spans: dict[str, list[Region]] = {name: [] for name in graph.nodes}
    parts: list[str] = []
    cursor = 0

    def emit(piece: str) -> None:
        nonlocal cursor
        parts.append(piece)
        cursor += len(piece)

    def place(node: str, depth: int) -> None:
        nonlocal cursor
        start = cursor
        successors = sorted(graph.successors(node))
        children = (
            rng.randint(0, max_children) if depth < max_depth and successors else 0
        )
        if children == 0:
            emit(rng.choice(VOCABULARY))
        else:
            emit("(")
            for index in range(children):
                if index:
                    emit(" ")
                place(rng.choice(successors), depth + 1)
            emit(")")
        spans[node].append(Region(start, cursor))

    roots = sorted(graph.nodes)
    for index in range(top_regions):
        if index:
            emit(" | ")
        place(rng.choice(roots), 0)
    text = "".join(parts)
    instance = Instance({name: RegionSet(regions) for name, regions in spans.items()})
    return text, instance


def random_regionset(rng: random.Random, count: int = 8, span: int = 40) -> RegionSet:
    """Arbitrary (possibly overlapping) regions for algebra unit tests."""
    regions = []
    for _ in range(count):
        start = rng.randrange(span)
        end = start + rng.randrange(span - start + 1)
        regions.append(Region(start, end))
    return RegionSet(regions)


def random_chain_expression(
    graph: RegionInclusionGraph,
    rng: random.Random,
    max_length: int = 4,
    with_select: bool = True,
):
    """A random inclusion chain whose names follow RIG reachability (so it
    is usually non-trivial), with random ``>``/``>d`` operators."""
    from repro.algebra.ast import Inclusion, Name, Select

    names = sorted(graph.nodes)
    current = rng.choice(names)
    chain = [current]
    for _ in range(rng.randint(1, max_length - 1)):
        reachable = sorted(graph.successors(current))
        if not reachable:
            break
        current = rng.choice(reachable)
        chain.append(current)
    if len(chain) < 2:
        chain.append(rng.choice(names))
    tail = Name(chain[-1])
    if with_select and rng.random() < 0.6:
        tail = Select(child=tail, word=rng.choice(VOCABULARY), mode="exact")
    expression = tail
    for name in reversed(chain[:-1]):
        op = ">" if rng.random() < 0.5 else ">d"
        expression = Inclusion(op=op, left=Name(name), right=expression)
    return expression


def word_lookup_for(text: str) -> WordIndex:
    return WordIndex(text)


def brute_force_including(left: RegionSet, right: RegionSet) -> RegionSet:
    return RegionSet(
        l for l in left if any(l.includes(r) for r in right)
    )


def brute_force_included(left: RegionSet, right: RegionSet) -> RegionSet:
    return RegionSet(
        l for l in left if any(r.includes(l) for r in right)
    )


def brute_force_innermost(regions: RegionSet) -> RegionSet:
    return RegionSet(
        r
        for r in regions
        if not any(other != r and r.includes(other) for other in regions)
    )


def brute_force_outermost(regions: RegionSet) -> RegionSet:
    return RegionSet(
        r
        for r in regions
        if not any(other != r and other.includes(r) for other in regions)
    )
