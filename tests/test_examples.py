"""Every example script runs to completion (they self-verify against the
baseline internally)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def _run_example(name: str) -> None:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_examples_directory_has_expected_scripts():
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    _run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
