"""Tokenization."""

import pytest
from hypothesis import given, strategies as st

from repro.text.tokenizer import Token, tokenize, tokenize_words


class TestToken:
    def test_span_must_match_text(self):
        with pytest.raises(ValueError):
            Token(text="abc", start=0, end=2)

    def test_valid(self):
        token = Token(text="abc", start=5, end=8)
        assert token.start == 5


class TestTokenize:
    def test_simple_words(self):
        assert tokenize_words("hello world") == ["hello", "world"]

    def test_spans_address_original_text(self):
        text = "  foo  bar"
        tokens = list(tokenize(text))
        assert [(t.start, t.end) for t in tokens] == [(2, 5), (7, 10)]
        for token in tokens:
            assert text[token.start : token.end] == token.text

    def test_hyphen_and_underscore_are_word_chars(self):
        assert tokenize_words("Last_Name well-known") == ["Last_Name", "well-known"]

    def test_punctuation_splits(self):
        assert tokenize_words('AUTHOR = "G. Corliss"') == ["AUTHOR", "G", "Corliss"]

    def test_lowercase_option(self):
        tokens = list(tokenize("Chang", lowercase=True))
        assert tokens[0].text == "chang"
        assert (tokens[0].start, tokens[0].end) == (0, 5)

    def test_custom_word_chars(self):
        assert tokenize_words("10:15:03", extra_word_chars=":") == ["10:15:03"]
        assert tokenize_words("10:15:03", extra_word_chars="") == ["10", "15", "03"]

    def test_empty_text(self):
        assert tokenize_words("") == []

    def test_numbers_are_words(self):
        assert tokenize_words("pages 114--144") == ["pages", "114--144"]

    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=80))
    def test_tokens_never_overlap_and_are_in_order(self, text):
        tokens = list(tokenize(text))
        for before, after in zip(tokens, tokens[1:]):
            assert before.end <= after.start

    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=80))
    def test_token_spans_reproduce_text(self, text):
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text
