"""Documents and corpora."""

import pytest

from repro.errors import RegionError
from repro.text.document import Corpus, Document


class TestDocument:
    def test_length(self):
        assert len(Document("a", "hello")) == 5

    def test_from_path(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("contents")
        document = Document.from_path(path)
        assert document.text == "contents"
        assert document.name.endswith("f.txt")


class TestCorpus:
    def test_empty(self):
        corpus = Corpus()
        assert len(corpus) == 0
        assert corpus.text == ""
        assert corpus.documents == ()

    def test_single_document(self):
        corpus = Corpus([Document("a", "hello")])
        assert corpus.text == "hello"
        assert corpus.document_span(0) == (0, 5)

    def test_documents_separated_by_newline(self):
        corpus = Corpus.from_texts(["one", "two", "three"])
        assert corpus.text == "one\ntwo\nthree"
        assert corpus.document_span(0) == (0, 3)
        assert corpus.document_span(1) == (4, 7)
        assert corpus.document_span(2) == (8, 13)

    def test_locate(self):
        corpus = Corpus.from_texts(["one", "two"])
        assert corpus.locate(0) == (0, 0)
        assert corpus.locate(2) == (0, 2)
        assert corpus.locate(4) == (1, 0)
        assert corpus.locate(6) == (1, 2)

    def test_locate_separator_attributed_to_previous(self):
        corpus = Corpus.from_texts(["one", "two"])
        assert corpus.locate(3) == (0, 3)

    def test_locate_out_of_range(self):
        corpus = Corpus.from_texts(["one"])
        with pytest.raises(RegionError):
            corpus.locate(99)
        with pytest.raises(RegionError):
            corpus.locate(-1)

    def test_add_returns_start(self):
        corpus = Corpus()
        assert corpus.add(Document("a", "xx")) == 0
        assert corpus.add(Document("b", "yy")) == 3

    def test_iteration(self):
        corpus = Corpus.from_texts(["a", "b"])
        assert [d.text for d in corpus] == ["a", "b"]

    def test_from_paths(self, tmp_path):
        first = tmp_path / "a.txt"
        second = tmp_path / "b.txt"
        first.write_text("AAA")
        second.write_text("BBB")
        corpus = Corpus.from_paths([first, second])
        assert corpus.text == "AAA\nBBB"
