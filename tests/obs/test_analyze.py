"""EXPLAIN ANALYZE: the annotated plan with estimates next to actuals."""

from __future__ import annotations

import json

from repro.core.engine import FileQueryEngine
from repro.db.parser import parse_query
from repro.obs.analyze import Analysis, NodeAnalysis, build_node_table, node_label
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

SELECT = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


class TestNodeLabel:
    def test_labels(self):
        from repro.algebra.ast import parse_expression

        assert node_label(parse_expression("A")) == "A"
        assert node_label(parse_expression("A > B")) == "⊃"
        assert node_label(parse_expression("A >d B")) == "⊃d"
        assert node_label(parse_expression("A | B")) == "∪"
        assert node_label(parse_expression("sigma[w](A)")) == "σ[w]"
        assert node_label(parse_expression("innermost(A)")) == "ι"
        assert node_label(parse_expression("outermost(A)")) == "ω"


class TestBuildNodeTable:
    def test_estimates_without_log(self):
        from repro.algebra.ast import parse_expression

        expression = parse_expression("A > sigma[w](B)")
        rows = build_node_table(expression, None)
        assert [row.label for row in rows] == ["⊃", "A", "σ[w]", "B"]
        assert [row.depth for row in rows] == [0, 1, 1, 2]
        root = rows[0]
        assert root.estimated_subtree_cost == sum(r.estimated_cost for r in rows)
        assert all(row.actual_seconds is None for row in rows)


class TestEngineAnalyze:
    def test_analyze_accepts_string(self, bibtex_engine):
        analysis = bibtex_engine.analyze(SELECT)
        assert isinstance(analysis, Analysis)
        assert analysis.strategy in ("index-exact", "index-candidates")

    def test_analyze_accepts_query(self, bibtex_engine):
        analysis = bibtex_engine.analyze(parse_query(SELECT))
        assert isinstance(analysis, Analysis)

    def test_analyze_accepts_query_result(self, bibtex_engine):
        result = bibtex_engine.query(SELECT)
        analysis = bibtex_engine.analyze(result)
        assert analysis.plan is result.plan

    def test_every_node_measured(self):
        # A fresh engine so the instrumented re-run is not short-circuited
        # by earlier queries' caches.
        engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=12, seed=9))
        analysis = engine.analyze(SELECT)
        assert analysis.nodes
        for row in analysis.nodes:
            assert row.actual_seconds is not None, row.label
            assert row.actual_regions is not None, row.label
            assert row.actual_seconds >= 0.0
        # Subtree timing is inclusive: the root costs at least any child.
        root = analysis.nodes[0]
        assert all(
            root.actual_seconds >= row.actual_seconds for row in analysis.nodes[1:]
        )

    def test_render_sections(self, bibtex_engine):
        text = bibtex_engine.analyze(SELECT).render()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "strategy:" in text
        assert "optimized:" in text
        assert "plan nodes (estimated cost | measured):" in text
        assert "pipeline stages (measured):" in text
        assert "totals:" in text
        analysis = bibtex_engine.analyze(SELECT)
        assert str(analysis) == analysis.render()

    def test_to_dict_shape(self, bibtex_engine):
        data = bibtex_engine.analyze(SELECT).to_dict()
        assert set(data) >= {
            "query",
            "strategy",
            "exact",
            "notes",
            "expression",
            "nodes",
            "stages",
            "stats",
        }
        assert data["expression"]["optimized"]
        assert data["expression"]["estimated_cost"] > 0
        assert data["nodes"], "expected plan-node rows"
        for row in data["nodes"]:
            assert set(row) == {
                "depth",
                "label",
                "expression",
                "estimated_cost",
                "estimated_subtree_cost",
                "estimated_rows",
                "actual_s",
                "actual_regions",
                "cached",
            }
            # Rows-vs-rows: the cardinality estimate shares the unit of
            # actual_regions (satellite 1 of the feedback-calibration PR).
            assert row["estimated_rows"] is not None
            assert row["estimated_rows"] >= 0.0
        assert data["stages"]["name"] == "query"
        json.dumps(data)

    def test_analyze_without_expression(self, bibtex_engine):
        # An unknown attribute plans as `empty`: no region expression to
        # instrument, but analyze still returns a coherent report.
        analysis = bibtex_engine.analyze(
            'SELECT r FROM Reference r WHERE r.Bogus = "x"'
        )
        assert analysis.strategy == "empty"
        assert analysis.nodes == []
        data = analysis.to_dict()
        assert data["expression"] is None
        assert data["nodes"] == []

    def test_analyze_rows_match_query(self, bibtex_engine):
        result = bibtex_engine.query(SELECT)
        analysis = bibtex_engine.analyze(SELECT)
        assert analysis.stats.rows == len(result.rows)


class TestExplainAcceptsResult:
    @staticmethod
    def _plan_lines(text: str) -> list[str]:
        # Drop the engine-lifetime cache tallies, which advance between
        # calls; the plan description itself must be identical.
        return [line for line in text.splitlines() if not line.startswith("cache")]

    def test_explain_query_result(self, bibtex_engine):
        result = bibtex_engine.query(SELECT)
        text = bibtex_engine.explain(result)
        assert "strategy:" in text
        assert self._plan_lines(text) == self._plan_lines(bibtex_engine.explain(SELECT))

    def test_explain_still_accepts_string_and_query(self, bibtex_engine):
        from_string = bibtex_engine.explain(SELECT)
        from_query = bibtex_engine.explain(parse_query(SELECT))
        assert self._plan_lines(from_string) == self._plan_lines(from_query)
