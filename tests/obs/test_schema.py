"""The analyze --json contract against schemas/analyze.schema.json."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCHEMA_PATH = REPO_ROOT / "schemas" / "analyze.schema.json"
CHECKER_PATH = REPO_ROOT / "scripts" / "check_analyze_schema.py"

SELECT = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_analyze_schema", CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _schema() -> dict:
    return json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))


class TestAnalyzeSchema:
    def test_analyze_output_conforms(self, bibtex_engine):
        checker = _load_checker()
        document = bibtex_engine.analyze(SELECT).to_dict()
        assert checker.validate(document, _schema()) == []

    def test_empty_plan_output_conforms(self, bibtex_engine):
        checker = _load_checker()
        document = bibtex_engine.analyze(
            'SELECT r FROM Reference r WHERE r.Bogus = "x"'
        ).to_dict()
        assert checker.validate(document, _schema()) == []

    def test_validator_rejects_missing_key(self, bibtex_engine):
        checker = _load_checker()
        document = bibtex_engine.analyze(SELECT).to_dict()
        del document["strategy"]
        violations = checker.validate(document, _schema())
        assert any("strategy" in message for message in violations)

    def test_validator_rejects_wrong_type(self, bibtex_engine):
        checker = _load_checker()
        document = bibtex_engine.analyze(SELECT).to_dict()
        document["exact"] = "yes"
        violations = checker.validate(document, _schema())
        assert any("exact" in message for message in violations)

    def test_validator_rejects_bad_enum(self, bibtex_engine):
        checker = _load_checker()
        document = bibtex_engine.analyze(SELECT).to_dict()
        document["strategy"] = "warp-drive"
        violations = checker.validate(document, _schema())
        assert any("warp-drive" in message for message in violations)

    def test_validator_descends_into_spans(self, bibtex_engine):
        checker = _load_checker()
        document = bibtex_engine.analyze(SELECT).to_dict()
        document["stages"]["children"][0].pop("duration_s")
        violations = checker.validate(document, _schema())
        assert any("duration_s" in message for message in violations)
