"""The QueryStats facade: delegation, the stable to_dict shape, summaries."""

from __future__ import annotations

import json

from repro.core.engine import FileQueryEngine
from repro.obs.stats import QueryStats
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

SELECT = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'

#: The documented stable keys of QueryStats.to_dict() (additions allowed,
#: removals are a breaking change — keep in sync with the docstring).
STABLE_KEYS = {
    "strategy",
    "rows",
    "candidate_regions",
    "result_regions",
    "bytes_parsed",
    "values_built",
    "objects_filtered_out",
    "join_bytes_compared",
    "algebra",
    "cache",
    "duration_s",
    "trace",
}


class TestFacade:
    def test_query_result_stats_is_facade(self, bibtex_engine):
        result = bibtex_engine.query(SELECT)
        assert isinstance(result.stats, QueryStats)

    def test_delegates_execution_attributes(self, bibtex_engine):
        result = bibtex_engine.query(SELECT)
        stats = result.stats
        assert stats.strategy == stats.execution.strategy
        assert stats.bytes_parsed == stats.execution.bytes_parsed
        assert stats.rows == stats.execution.rows
        assert stats.algebra is stats.execution.algebra

    def test_cache_view_keys(self, bibtex_engine):
        cache = bibtex_engine.query(SELECT).stats.cache
        assert set(cache) == {
            "expression_hits",
            "expression_misses",
            "parse_hits",
            "parse_misses",
            "bytes_parse_avoided",
        }

    def test_duration_comes_from_trace(self, bibtex_engine):
        stats = bibtex_engine.query(SELECT).stats
        assert stats.duration_seconds == stats.trace.duration
        assert stats.duration_seconds > 0.0

    def test_duration_zero_when_untraced(self):
        engine = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=1), tracing=False
        )
        stats = engine.query("SELECT r.Key FROM Reference r").stats
        assert stats.trace is None
        assert stats.duration_seconds == 0.0


class TestToDict:
    def test_stable_keys_present(self, bibtex_engine):
        data = bibtex_engine.query(SELECT).stats.to_dict()
        assert STABLE_KEYS <= set(data)

    def test_json_serializable(self, bibtex_engine):
        data = bibtex_engine.query(SELECT).stats.to_dict()
        json.dumps(data)

    def test_trace_embedded_or_null(self, bibtex_engine):
        data = bibtex_engine.query(SELECT).stats.to_dict()
        assert data["trace"]["name"] == "query"
        untraced = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=1), tracing=False
        )
        data = untraced.query("SELECT r.Key FROM Reference r").stats.to_dict()
        assert data["trace"] is None
        assert data["duration_s"] == 0.0

    def test_values_match_execution(self, bibtex_engine):
        result = bibtex_engine.query(SELECT)
        data = result.stats.to_dict()
        assert data["strategy"] == result.stats.execution.strategy
        assert data["rows"] == len(result.rows)
        assert data["algebra"] == result.stats.execution.algebra.snapshot()


class TestSummary:
    def test_summary_includes_wall_time_when_traced(self, bibtex_engine):
        summary = bibtex_engine.query(SELECT).stats.summary()
        assert "wall time" in summary

    def test_summary_without_trace(self):
        engine = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=1), tracing=False
        )
        summary = engine.query("SELECT r.Key FROM Reference r").stats.summary()
        assert "wall time" not in summary
        assert "strategy" in summary
