"""The span/trace/tracer primitives and the trace attached to queries."""

from __future__ import annotations

import json

import pytest

from repro.core.engine import FileQueryEngine
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Trace, Tracer, ensure_tracer
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

SELECT = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


class TestSpan:
    def test_duration_zero_while_open(self):
        span = Span("s", started_at=1.0)
        assert span.duration == 0.0
        span.ended_at = 1.5
        assert span.duration == pytest.approx(0.5)

    def test_annotate_merges(self):
        span = Span("s").annotate(a=1).annotate(b=2, a=3)
        assert span.metrics == {"a": 3, "b": 2}

    def test_add_child_synthesized(self):
        parent = Span("p", started_at=2.0, ended_at=3.0)
        child = parent.add_child("op:>", applications=4)
        assert child in parent.children
        assert child.duration == 0.0
        assert child.metrics == {"applications": 4}

    def test_walk_preorder_and_find(self):
        root = Span("a")
        b = Span("b")
        root.children.append(b)
        b.children.append(Span("c"))
        root.children.append(Span("d"))
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]
        assert root.find("c").name == "c"
        assert root.find("nope") is None


class TestTracer:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer("query")
        with tracer.span("plan"):
            with tracer.span("parse-query"):
                pass
            with tracer.span("translate"):
                pass
        with tracer.span("execute"):
            tracer.annotate(rows=3)
        trace = tracer.finish()
        assert trace.span_names() == [
            "query",
            "plan",
            "parse-query",
            "translate",
            "execute",
        ]
        assert trace.find("execute").metrics == {"rows": 3}
        plan = trace.find("plan")
        assert [child.name for child in plan.children] == ["parse-query", "translate"]

    def test_timings_monotonic_and_nested(self):
        tracer = Tracer("query")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        trace = tracer.finish()
        root, a, b = trace.find("query"), trace.find("a"), trace.find("b")
        for span in (root, a, b):
            assert span.ended_at is not None
            assert span.duration >= 0.0
        # Children start no earlier than, and end no later than, the parent.
        assert root.started_at <= a.started_at <= b.started_at
        assert b.ended_at <= a.ended_at <= root.ended_at

    def test_finish_closes_dangling_spans(self):
        tracer = Tracer("query")
        context = tracer.span("open")
        context.__enter__()
        trace = tracer.finish()
        assert trace.find("open").ended_at is not None

    def test_exception_inside_span_still_closes_it(self):
        tracer = Tracer("query")
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        trace = tracer.finish()
        assert trace.find("boom").ended_at is not None

    def test_stage_seconds_sums_by_name(self):
        tracer = Tracer("query")
        with tracer.span("stage"):
            pass
        with tracer.span("stage"):
            pass
        totals = tracer.finish().stage_seconds()
        assert set(totals) == {"query", "stage"}
        assert totals["stage"] >= 0.0


class TestTraceSerialization:
    def _sample(self) -> Trace:
        tracer = Tracer("query")
        with tracer.span("plan", plan_cache="miss"):
            with tracer.span("translate"):
                pass
        with tracer.span("execute", rows=2, strategy="index-candidates"):
            pass
        return tracer.finish()

    def test_to_json_round_trips(self):
        trace = self._sample()
        reloaded = Trace.from_json(trace.to_json())
        assert reloaded.span_names() == trace.span_names()
        for before, after in zip(trace.spans(), reloaded.spans()):
            assert after.metrics == before.metrics
            assert after.duration == pytest.approx(before.duration, abs=1e-9)
        # Offsets are preserved relative to the trace origin.
        assert reloaded.to_dict() == trace.to_dict()

    def test_to_dict_shape(self):
        data = self._sample().to_dict()
        assert data["name"] == "query"
        assert data["offset_s"] == 0.0
        assert data["duration_s"] >= 0.0
        assert isinstance(data["metrics"], dict)
        assert [child["name"] for child in data["children"]] == ["plan", "execute"]
        json.dumps(data)  # JSON-safe

    def test_describe_renders_each_span(self):
        text = self._sample().describe()
        for name in ("query", "plan", "translate", "execute"):
            assert name in text
        assert "ms" in text


class TestNullTracer:
    def test_null_tracer_is_silent(self):
        tracer = ensure_tracer(None)
        assert tracer is NULL_TRACER
        assert isinstance(tracer, NullTracer)
        with tracer.span("anything", metric=1) as span:
            span.annotate(more=2)
            span.add_child("op:>", applications=3)
        tracer.annotate(late=True)
        assert tracer.finish() is None

    def test_ensure_tracer_passthrough(self):
        tracer = Tracer("query")
        assert ensure_tracer(tracer) is tracer


class TestPipelineTrace:
    """The trace tree attached to real query results mirrors pipeline order."""

    def test_query_trace_structure(self, bibtex_engine):
        result = bibtex_engine.query(SELECT)
        trace = result.trace
        assert trace is not None
        names = trace.span_names()
        assert names[0] == "query"
        # The pipeline stages appear in order: plan before execute.
        assert names.index("plan") < names.index("execute")
        plan = trace.find("plan")
        plan_children = [child.name for child in plan.children]
        if plan.metrics.get("plan_cache") != "hit":
            assert "translate" in plan_children
            assert "optimize" in plan_children
            assert plan_children.index("translate") < plan_children.index("optimize")
        execute = trace.find("execute")
        assert execute.metrics.get("strategy") == result.stats.strategy
        assert execute.metrics.get("rows") == len(result.rows)
        exec_children = [child.name for child in execute.children]
        assert "index-eval" in exec_children

    def test_index_eval_has_operator_children(self):
        # Fresh engine: a repeated query on a shared engine would hit the
        # expression cache and perform no algebra operations at all.
        engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=10, seed=3))
        result = engine.query(SELECT)
        index_eval = result.trace.find("index-eval")
        assert index_eval is not None
        op_names = [c.name for c in index_eval.children if c.name.startswith("op:")]
        assert op_names, "expected synthesized per-operator spans"
        for child in index_eval.children:
            if child.name.startswith("op:"):
                assert child.metrics.get("applications", 0) >= 1

    def test_child_spans_within_parent_interval(self, bibtex_engine):
        trace = bibtex_engine.query(SELECT).trace
        for span in trace.spans():
            for child in span.children:
                assert child.started_at >= span.started_at - 1e-9
                if child.ended_at is not None and span.ended_at is not None:
                    assert child.ended_at <= span.ended_at + 1e-9

    def test_traced_and_untraced_rows_identical(self, bibtex_text):
        schema = bibtex_schema()
        traced = FileQueryEngine(schema, bibtex_text)
        untraced = FileQueryEngine(schema, bibtex_text, tracing=False)
        queries = [
            SELECT,
            "SELECT r.Key FROM Reference r",
            'SELECT r.Title FROM Reference r WHERE r.*X.Last_Name = "Chang"',
        ]
        for query in queries:
            with_trace = traced.query(query)
            without_trace = untraced.query(query)
            assert with_trace.trace is not None
            assert without_trace.trace is None
            assert without_trace.stats.trace is None
            assert (
                with_trace.canonical_rows() == without_trace.canonical_rows()
            ), query

    def test_trace_root_duration_covers_children(self, bibtex_engine):
        trace = bibtex_engine.query("SELECT r.Key FROM Reference r").trace
        child_total = sum(child.duration for child in trace.root.children)
        assert trace.duration >= child_total - 1e-9

    def test_full_scan_trace(self):
        from repro.index.config import IndexConfig

        engine = FileQueryEngine(
            bibtex_schema(),
            generate_bibtex(entries=5, seed=2),
            IndexConfig.partial({"Key"}),
        )
        result = engine.query('SELECT r FROM Reference r WHERE r.Key = "x"')
        assert result.stats.strategy == "full-scan"
        names = result.trace.span_names()
        assert "full-scan-parse" in names
