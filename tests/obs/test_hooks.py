"""Span hooks: the registry, the collector, and engine integration."""

from __future__ import annotations

from repro.core.engine import FileQueryEngine
from repro.obs.hooks import HookRegistry, SpanCollector
from repro.obs.trace import Span, Tracer
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

SELECT = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


class TestHookRegistry:
    def test_register_and_remove(self):
        registry = HookRegistry()
        seen: list[str] = []
        remove = registry.register(lambda span: seen.append(span.name))
        assert len(registry) == 1 and bool(registry)
        for hook in registry:
            hook(Span("x"))
        assert seen == ["x"]
        remove()
        assert len(registry) == 0 and not registry
        remove()  # idempotent

    def test_hooks_fire_in_registration_order(self):
        registry = HookRegistry()
        order: list[int] = []
        registry.register(lambda span: order.append(1))
        registry.register(lambda span: order.append(2))
        for hook in registry:
            hook(Span("x"))
        assert order == [1, 2]

    def test_clear(self):
        registry = HookRegistry()
        registry.register(lambda span: None)
        registry.register(lambda span: None)
        registry.clear()
        assert not registry


class TestSpanCollector:
    def test_collects_by_name(self):
        collector = SpanCollector()
        tracer = Tracer("query", hooks=(collector,))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("a"):
            pass
        tracer.finish()
        assert collector.count("a") == 2
        assert collector.count("b") == 1
        assert collector.count("missing") == 0
        assert collector.total_seconds("a") >= 0.0
        assert collector.names() == ["a", "b", "query"]
        collector.reset()
        assert collector.names() == []


class TestEngineHooks:
    def test_on_span_observes_query_pipeline(self):
        engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=8, seed=5))
        collector = SpanCollector()
        remove = engine.on_span(collector)
        engine.query(SELECT)
        remove()
        assert collector.count("query") == 1
        assert collector.count("plan") == 1
        assert collector.count("execute") == 1
        # After deregistration the collector stops accumulating.
        engine.query("SELECT r.Key FROM Reference r")
        assert collector.count("query") == 1

    def test_hooks_are_engine_scoped(self):
        text = generate_bibtex(entries=6, seed=6)
        first = FileQueryEngine(bibtex_schema(), text)
        second = FileQueryEngine(bibtex_schema(), text)
        collector = SpanCollector()
        first.on_span(collector)
        second.query("SELECT r.Key FROM Reference r")
        assert collector.count("query") == 0

    def test_no_hooks_when_tracing_disabled(self):
        engine = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=6, seed=6), tracing=False
        )
        collector = SpanCollector()
        engine.on_span(collector)
        engine.query("SELECT r.Key FROM Reference r")
        assert collector.names() == []
