"""Engine-level feedback wiring: cold equivalence, persistence, plan-cache
invalidation, and per-shard history keying."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.feedback import FeedbackConfig, FeedbackHistory, HISTORY_FILENAME
from repro.shard import ShardedEngine
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

SELECT = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
QUERIES = [
    SELECT,
    'SELECT r.Title FROM Reference r WHERE r.Key = "Lamp93n"',
    "SELECT r.Key FROM Reference r",
]


@pytest.fixture(scope="module")
def corpus_text() -> str:
    return generate_bibtex(entries=40, seed=3)


class TestColdEquivalence:
    def test_cold_plans_match_feedback_free_build(self, corpus_text):
        """Feedback enabled but history empty: plans and rows must be
        indistinguishable from an engine without the subsystem."""
        plain = FileQueryEngine(bibtex_schema(), corpus_text)
        cold = FileQueryEngine(bibtex_schema(), corpus_text, feedback=True)
        for query in QUERIES:
            baseline = plain.query(query)
            result = cold.query(query)
            assert result.plan.strategy == baseline.plan.strategy
            assert str(result.plan.optimized_expression) == str(
                baseline.plan.optimized_expression
            )
            assert list(result.plan.notes) == list(baseline.plan.notes)
            assert result.canonical_rows() == baseline.canonical_rows()

    def test_feedback_disabled_by_default(self, corpus_text):
        engine = FileQueryEngine(bibtex_schema(), corpus_text)
        assert not engine.feedback_config.enabled
        state = engine.stats().calibration
        assert state["enabled"] is False


class TestAnalyzeFeedsHistory:
    def test_analyze_records_observations(self, corpus_text):
        engine = FileQueryEngine(bibtex_schema(), corpus_text, feedback=True)
        assert len(engine.feedback_history) == 0
        engine.analyze(SELECT)
        assert len(engine.feedback_history) > 0
        assert engine.cost_model.calibrated
        state = engine.stats().calibration
        assert state["observations"] > 0
        assert state["calibrated"] is True

    def test_analyze_persists_and_reloads(self, corpus_text, tmp_path):
        config = FeedbackConfig(directory=str(tmp_path))
        first = FileQueryEngine(bibtex_schema(), corpus_text, feedback=config)
        first.analyze(SELECT)
        assert (tmp_path / HISTORY_FILENAME).exists()
        second = FileQueryEngine(bibtex_schema(), corpus_text, feedback=config)
        assert len(second.feedback_history) == len(first.feedback_history)
        assert second.cost_model.calibrated

    def test_disabled_engine_records_nothing(self, corpus_text):
        engine = FileQueryEngine(bibtex_schema(), corpus_text)
        engine.analyze(SELECT)
        assert len(engine.feedback_history) == 0

    def test_calibrated_rows_match_uncalibrated(self, corpus_text):
        plain = FileQueryEngine(bibtex_schema(), corpus_text)
        engine = FileQueryEngine(bibtex_schema(), corpus_text, feedback=True)
        for _ in range(3):
            engine.analyze(SELECT)
        for query in QUERIES:
            assert (
                engine.query(query).canonical_rows()
                == plain.query(query).canonical_rows()
            )


class TestPlanCacheInvalidation:
    def test_version_bump_clears_plan_cache(self, corpus_text):
        engine = FileQueryEngine(bibtex_schema(), corpus_text, feedback=True)
        # Warm up until the executor's own observations converge — each
        # early query moves the corrections (and so the version) until the
        # running correction settles inside the 5% hysteresis band.
        for _ in range(10):
            engine.query(SELECT)
            if engine.cache_stats.plan_hits:
                break
        hits_before = engine.cache_stats.plan_hits
        assert hits_before >= 1
        # A material calibration change must invalidate plans chosen
        # under the stale cost model...  (A brand-new key bumps the
        # version without perturbing any estimate the executor re-feeds.)
        engine.feedback_history.observe(
            "name", "Unqueried_Region", engine.corpus_fingerprint, 10.0, 1000.0
        )
        engine.query(SELECT)
        assert engine.cache_stats.plan_hits == hits_before
        # ...and once the history is stable again, caching resumes.
        engine.query(SELECT)
        assert engine.cache_stats.plan_hits == hits_before + 1

    def test_stable_history_keeps_plan_cache(self, corpus_text):
        engine = FileQueryEngine(bibtex_schema(), corpus_text, feedback=True)
        engine.feedback_history.observe(
            "name", "Reference", engine.corpus_fingerprint, 10.0, 20.0
        )
        for _ in range(10):
            engine.query(SELECT)
            if engine.cache_stats.plan_hits:
                break
        hits = engine.cache_stats.plan_hits
        # Converged observations do not bump the version: cached plans
        # survive repeated identical feedback.
        engine.feedback_history.observe(
            "name", "Reference", engine.corpus_fingerprint, 10.0, 20.0
        )
        engine.query(SELECT)
        assert engine.cache_stats.plan_hits == hits + 1


class TestShardedFeedback:
    def test_shared_history_keys_by_shard_fingerprint(self):
        texts = [
            generate_bibtex(entries=12, seed=seed) for seed in (1, 2, 3)
        ]
        engine = ShardedEngine.from_texts(
            bibtex_schema(), texts, feedback=FeedbackConfig()
        )
        engine.analyze(SELECT)
        assert len(engine.feedback_history) > 0
        shard_fingerprints = {
            shard.engine.corpus_fingerprint
            for shard in engine._shards
            if shard.engine is not None
        }
        observed = {key[2] for key in engine.feedback_history.keys()}
        # analyze() instruments one healthy shard: its fingerprint — and
        # only fingerprints belonging to real shards — may be fed.
        assert observed
        assert observed <= shard_fingerprints
        state = engine.stats().calibration
        assert state["enabled"] and state["observations"] > 0

    def test_sharded_rows_unchanged_with_feedback(self):
        texts = [generate_bibtex(entries=12, seed=seed) for seed in (1, 2)]
        plain = ShardedEngine.from_texts(bibtex_schema(), texts)
        calibrated = ShardedEngine.from_texts(
            bibtex_schema(), texts, feedback=FeedbackConfig()
        )
        calibrated.analyze(SELECT)
        assert (
            calibrated.query(SELECT).canonical_rows()
            == plain.query(SELECT).canonical_rows()
        )

    def test_save_and_reopen_round_trips_history(self, tmp_path):
        texts = [generate_bibtex(entries=12, seed=seed) for seed in (1, 2)]
        engine = ShardedEngine.from_texts(
            bibtex_schema(), texts, feedback=FeedbackConfig()
        )
        engine.analyze(SELECT)
        engine.save(tmp_path)
        assert (tmp_path / HISTORY_FILENAME).exists()
        reopened = ShardedEngine.from_saved(
            bibtex_schema(), tmp_path, feedback=True
        )
        assert len(reopened.feedback_history) == len(engine.feedback_history)
