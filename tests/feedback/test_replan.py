"""Mid-query adaptive re-planning.

A replan must be invisible in the answer (row-identical to the plan it
abandoned) and loud in the diagnostics (a ``replanned`` warning, a
``replanned`` trace span, and a structured record in ``stats.replans``).
"""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.feedback import FeedbackConfig, FeedbackHistory
from repro.feedback.calibrate import (
    CalibratedCostModel,
    ReplanTriggered,
    make_node_guard,
)
from repro.resilience.warnings import REPLANNED
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

SELECT = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


def _underestimating_engine(text: str, **config_knobs) -> FileQueryEngine:
    """An engine whose history says every estimate runs ~64x too high, so
    real cardinalities blow past the corrected estimates and trigger the
    replan guard almost immediately."""
    config = FeedbackConfig(
        replan_factor=2.0, replan_min_rows=1, **config_knobs
    )
    engine = FileQueryEngine(bibtex_schema(), text, feedback=config)
    for name in engine.index.instance.names:
        for kind in ("name", "inclusion:>", "inclusion:>d", "select:exact"):
            engine.feedback_history.observe(
                kind, name, engine.corpus_fingerprint,
                estimated=1e6, actual=1.0,
            )
    assert engine.cost_model.calibrated
    return engine


@pytest.fixture(scope="module")
def corpus_text() -> str:
    return generate_bibtex(entries=40, seed=3)


class TestReplannedQueries:
    def test_rows_identical_to_unreplanned(self, corpus_text):
        plain = FileQueryEngine(bibtex_schema(), corpus_text)
        replanning = _underestimating_engine(corpus_text)
        expected = plain.query(SELECT)
        result = replanning.query(SELECT)
        assert result.stats.replans, "expected the replan guard to fire"
        assert len(result.rows) == len(expected.rows)
        assert result.canonical_rows() == expected.canonical_rows()

    def test_replan_diagnostics(self, corpus_text):
        engine = _underestimating_engine(corpus_text)
        result = engine.query(SELECT)
        assert result.stats.strategy == "full-scan(replanned)"
        [record] = result.stats.replans[:1]
        assert record["actual"] > record["estimated"] * 2.0
        assert record["to_strategy"] == "full-scan"
        codes = [warning.code for warning in result.stats.warnings]
        assert REPLANNED in codes
        trace = result.stats.trace
        assert trace is not None

        def span_names(span):
            yield span.name
            for child in span.children:
                yield from span_names(child)

        assert "replanned" in list(span_names(trace.root))

    def test_replans_surface_in_stats_json(self, corpus_text):
        engine = _underestimating_engine(corpus_text)
        payload = engine.query(SELECT).stats.to_dict()
        assert payload["replans"]
        record = payload["replans"][0]
        assert set(record) >= {
            "node", "estimated", "actual", "factor",
            "from_strategy", "to_strategy",
        }

    def test_cold_engine_never_replans(self, corpus_text):
        # Feedback on, history empty: the guard must stay inert, keeping
        # cold behavior identical to a feedback-free build.
        engine = FileQueryEngine(
            bibtex_schema(), corpus_text,
            feedback=FeedbackConfig(replan_factor=1.5, replan_min_rows=1),
        )
        result = engine.query(SELECT)
        assert result.stats.replans == []
        assert result.stats.strategy != "full-scan(replanned)"


class TestNodeGuard:
    def test_guard_respects_min_rows(self, bibtex_engine):
        history = FeedbackHistory()
        model = CalibratedCostModel(
            bibtex_engine.index.instance,
            "fp",
            history,
            config=FeedbackConfig(replan_factor=2.0, replan_min_rows=1000),
        )
        from repro.algebra.ast import parse_expression

        node = parse_expression("Last_Name")
        history.observe("name", "Last_Name", "fp", estimated=1e6, actual=1.0)
        guard = make_node_guard(model)
        # Far beyond factor x estimate, but below the absolute floor.
        guard(node, 999)

    def test_guard_raises_past_both_thresholds(self, bibtex_engine):
        history = FeedbackHistory()
        model = CalibratedCostModel(
            bibtex_engine.index.instance,
            "fp",
            history,
            config=FeedbackConfig(replan_factor=2.0, replan_min_rows=1),
        )
        from repro.algebra.ast import parse_expression

        node = parse_expression("Last_Name")
        history.observe("name", "Last_Name", "fp", estimated=1e6, actual=1.0)
        guard = make_node_guard(model)
        estimate = model.estimate_rows(node)
        with pytest.raises(ReplanTriggered) as excinfo:
            guard(node, int(estimate * 3) + 1)
        assert excinfo.value.actual > excinfo.value.estimated
