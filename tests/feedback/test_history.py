"""FeedbackHistory: observation arithmetic, versioning, persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import CalibrationCorruptError, FeedbackError, ReproError
from repro.feedback import FeedbackConfig, FeedbackHistory, HISTORY_FILENAME
from repro.feedback.history import MAX_CORRECTION, MIN_CORRECTION

FP = "sha256:corpus-a"


class TestObservation:
    def test_unknown_key_correction_is_neutral(self):
        history = FeedbackHistory()
        assert history.correction("name", "Reference", FP) == 1.0

    def test_correction_is_actual_over_estimated(self):
        history = FeedbackHistory()
        history.observe("name", "Reference", FP, estimated=10.0, actual=40.0)
        assert history.correction("name", "Reference", FP) == pytest.approx(4.0)

    def test_correction_accumulates_totals(self):
        history = FeedbackHistory()
        history.observe("select:exact", "Title", FP, estimated=10.0, actual=30.0)
        history.observe("select:exact", "Title", FP, estimated=10.0, actual=10.0)
        # (30 + 10) / (10 + 10)
        assert history.correction("select:exact", "Title", FP) == pytest.approx(2.0)

    def test_correction_is_clamped(self):
        history = FeedbackHistory()
        history.observe("name", "A", FP, estimated=1.0, actual=1e9)
        history.observe("name", "B", FP, estimated=1e9, actual=1.0)
        assert history.correction("name", "A", FP) == MAX_CORRECTION
        assert history.correction("name", "B", FP) == MIN_CORRECTION

    def test_keys_partition_by_fingerprint(self):
        history = FeedbackHistory()
        history.observe("name", "Reference", "fp-one", 10.0, 40.0)
        assert history.correction("name", "Reference", "fp-two") == 1.0
        assert history.has_history("fp-one")
        assert not history.has_history("fp-two")

    def test_version_bumps_on_new_key(self):
        history = FeedbackHistory()
        before = history.version
        assert history.observe("name", "Reference", FP, 10.0, 10.0)
        assert history.version == before + 1

    def test_version_stable_under_converged_observations(self):
        history = FeedbackHistory()
        history.observe("name", "Reference", FP, 10.0, 20.0)
        settled = history.version
        # Identical estimate/actual pairs keep the correction fixed: the
        # version must not bump, or repeated queries would thrash the
        # plan cache forever.
        for _ in range(5):
            assert not history.observe("name", "Reference", FP, 10.0, 20.0)
        assert history.version == settled

    def test_version_bumps_on_material_move(self):
        history = FeedbackHistory()
        history.observe("name", "Reference", FP, 10.0, 10.0)
        settled = history.version
        assert history.observe("name", "Reference", FP, 10.0, 1000.0)
        assert history.version > settled


class TestPersistence:
    def test_round_trip(self, tmp_path):
        history = FeedbackHistory()
        history.observe("name", "Reference", FP, 10.0, 40.0)
        history.observe("inclusion:>", "Reference", FP, 20.0, 5.0)
        target = tmp_path / HISTORY_FILENAME
        history.save(target)
        loaded = FeedbackHistory.load(target)
        assert len(loaded) == 2
        assert loaded.correction("name", "Reference", FP) == pytest.approx(4.0)
        assert loaded.correction("inclusion:>", "Reference", FP) == pytest.approx(0.25)
        assert loaded.has_history(FP)

    def test_load_or_fresh_on_missing_file(self, tmp_path):
        history = FeedbackHistory.load_or_fresh(tmp_path / "absent.json")
        assert len(history) == 0

    def test_load_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FeedbackHistory.load(tmp_path / "absent.json")

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all {",
            json.dumps(["not", "an", "object"]),
            json.dumps({"format": 99, "checksum": "x", "records": []}),
            json.dumps({"format": 1, "checksum": "x", "records": "nope"}),
        ],
        ids=["bad-json", "bad-envelope", "bad-format", "bad-records"],
    )
    def test_corrupt_payloads_raise_typed_error(self, tmp_path, payload):
        target = tmp_path / HISTORY_FILENAME
        target.write_text(payload, encoding="utf-8")
        with pytest.raises(CalibrationCorruptError) as excinfo:
            FeedbackHistory.load(target)
        assert excinfo.value.path == str(target)
        assert isinstance(excinfo.value, ReproError)

    def test_flipped_bit_fails_the_checksum(self, tmp_path):
        history = FeedbackHistory()
        history.observe("name", "Reference", FP, 10.0, 40.0)
        target = tmp_path / HISTORY_FILENAME
        history.save(target)
        envelope = json.loads(target.read_text(encoding="utf-8"))
        envelope["records"][0]["actual_total"] = 9999.0
        target.write_text(json.dumps(envelope), encoding="utf-8")
        with pytest.raises(CalibrationCorruptError, match="checksum"):
            FeedbackHistory.load(target)

    def test_load_or_fresh_still_raises_on_corruption(self, tmp_path):
        target = tmp_path / HISTORY_FILENAME
        target.write_text("garbage", encoding="utf-8")
        with pytest.raises(CalibrationCorruptError):
            FeedbackHistory.load_or_fresh(target)


class TestConfig:
    def test_coerce_shorthands(self):
        assert not FeedbackConfig.coerce(None).enabled
        assert not FeedbackConfig.coerce(False).enabled
        assert FeedbackConfig.coerce(True).enabled
        config = FeedbackConfig(replan_factor=8.0)
        assert FeedbackConfig.coerce(config) is config

    def test_invalid_knobs_raise(self):
        with pytest.raises(FeedbackError):
            FeedbackConfig(replan_factor=1.0)
        with pytest.raises(FeedbackError):
            FeedbackConfig(select_selectivity=0.0)
        with pytest.raises(FeedbackError):
            FeedbackConfig(inclusion_selectivity=1.5)
