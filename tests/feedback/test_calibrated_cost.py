"""The calibrated cost model.

The load-bearing property: on an *empty* history the calibrated model
agrees with the static rewrite ordering — every Definition 3.4 rewrite
the optimizer applies strictly decreases calibrated cost.  That is what
keeps cold-start planning identical to the uncalibrated engine.
"""

from __future__ import annotations

import pytest

from repro.algebra.ast import parse_expression
from repro.core.optimizer import OptimizationTrace, optimize
from repro.feedback import CalibratedCostModel, FeedbackConfig, FeedbackHistory
from repro.feedback.calibrate import anchor_region, node_kind

FP = "sha256:test-corpus"


class _EmptyInstance:
    """An instance with no indexed regions: every seed count is zero, so
    strict decrease must come from the model's structure alone."""

    def get(self, name):
        return ()


def _cold_model(instance) -> CalibratedCostModel:
    return CalibratedCostModel(instance, FP, FeedbackHistory())


#: Inclusion chains over the paper's BibTeX RIG that the Section 3.2
#: optimizer actually rewrites (both rule families, in combination).
REWRITABLE = [
    "Reference >d Title",
    "Reference >d Authors",
    "Reference >d Authors >d Name",
    "Reference >d Authors >d Name >d Last_Name",
    "Reference > Authors > Name > Last_Name",
    "Reference >d Authors >d Name >d sigma[chang](Last_Name)",
    "Reference >d Editors >d Name",
    "(Reference >d Authors >d Name) | (Reference >d Title)",
]


class TestRewritesStrictlyDecreaseCost:
    @pytest.mark.parametrize("text", REWRITABLE)
    def test_on_real_counts(self, text, bibtex_engine, paper_rig):
        model = _cold_model(bibtex_engine.index.instance)
        raw = parse_expression(text)
        trace = OptimizationTrace()
        optimized = optimize(raw, paper_rig, trace)
        assert trace.rewrite_count > 0, f"expected rewrites for {text}"
        assert model.cost(optimized) < model.cost(raw)

    @pytest.mark.parametrize("text", REWRITABLE)
    def test_on_empty_instance(self, text, paper_rig):
        # Zero region counts everywhere: the `1 +` inflow term must keep
        # the decrease strict even with nothing indexed.
        model = _cold_model(_EmptyInstance())
        raw = parse_expression(text)
        trace = OptimizationTrace()
        optimized = optimize(raw, paper_rig, trace)
        assert trace.rewrite_count > 0
        assert model.cost(optimized) < model.cost(raw)

    def test_relax_family_in_isolation(self, bibtex_engine):
        model = _cold_model(bibtex_engine.index.instance)
        direct = parse_expression("Reference >d Title")
        simple = parse_expression("Reference > Title")
        assert model.cost(simple) < model.cost(direct)

    def test_shorten_family_in_isolation(self, bibtex_engine):
        model = _cold_model(bibtex_engine.index.instance)
        long_chain = parse_expression("Reference > Authors > Last_Name")
        short_chain = parse_expression("Reference > Last_Name")
        assert model.cost(short_chain) < model.cost(long_chain)

    def test_every_intermediate_step_decreases(self, bibtex_engine, paper_rig):
        # Walk the longest chain down one shortening at a time: each
        # single-step rewrite (not only the fixpoint) must pay for itself.
        model = _cold_model(bibtex_engine.index.instance)
        steps = [
            "Reference >d Authors >d Name >d Last_Name",
            "Reference > Authors > Name > Last_Name",
            "Reference > Authors > Last_Name",
            "Reference > Last_Name",
        ]
        costs = [model.cost(parse_expression(text)) for text in steps]
        assert costs == sorted(costs, reverse=True)
        assert len(set(costs)) == len(costs)


class TestEstimates:
    def test_name_seeds_from_index_counts(self, bibtex_engine):
        model = _cold_model(bibtex_engine.index.instance)
        node = parse_expression("Reference")
        expected = len(bibtex_engine.index.instance.get("Reference"))
        assert model.estimate_rows(node) == pytest.approx(float(expected))

    def test_cold_model_is_not_calibrated(self, bibtex_engine):
        model = _cold_model(bibtex_engine.index.instance)
        assert not model.calibrated

    def test_corrections_scale_estimates(self, bibtex_engine):
        history = FeedbackHistory()
        model = CalibratedCostModel(
            bibtex_engine.index.instance, FP, history
        )
        node = parse_expression("Reference")
        cold = model.estimate_rows(node)
        history.observe(
            node_kind(node), anchor_region(node), FP, estimated=cold, actual=cold * 3
        )
        assert model.calibrated
        assert model.estimate_rows(node) == pytest.approx(cold * 3.0)

    def test_observe_tree_skips_cached_records(self, bibtex_engine):
        from repro.algebra.evaluator import NodeRecord

        history = FeedbackHistory()
        model = CalibratedCostModel(bibtex_engine.index.instance, FP, history)
        expression = parse_expression("Reference > Last_Name")
        node_log = {
            node: NodeRecord(elapsed=0.0, regions=5, cached=True)
            for node in expression.walk()
        }
        assert model.observe_tree(expression, node_log) == 0
        assert not model.calibrated

    def test_selectivity_knobs_apply(self, bibtex_engine):
        loose = CalibratedCostModel(
            bibtex_engine.index.instance,
            FP,
            FeedbackHistory(),
            config=FeedbackConfig(select_selectivity=1.0),
        )
        tight = CalibratedCostModel(
            bibtex_engine.index.instance,
            FP,
            FeedbackHistory(),
            config=FeedbackConfig(select_selectivity=0.1),
        )
        node = parse_expression("sigma[chang](Last_Name)")
        assert tight.estimate_rows(node) < loose.estimate_rows(node)
