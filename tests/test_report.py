"""The benchmark report generator."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import report  # noqa: E402  (benchmarks/report.py)


def _benchmark(fullname: str, name: str, median: float, extra=None) -> dict:
    return {
        "fullname": fullname,
        "name": name,
        "stats": {"median": median},
        "extra_info": extra or {},
    }


@pytest.fixture()
def sample_json(tmp_path):
    data = {
        "benchmarks": [
            _benchmark(
                "benchmarks/bench_e1_optimizer.py::bench_optimized_expression[100]",
                "bench_optimized_expression[100]",
                0.0002,
                {"size": 100},
            ),
            _benchmark(
                "benchmarks/bench_e1_optimizer.py::bench_unoptimized_expression[100]",
                "bench_unoptimized_expression[100]",
                0.0005,
                {"size": 100},
            ),
            _benchmark(
                "benchmarks/bench_e3_direct_inclusion.py::bench_simple_inclusion",
                "bench_simple_inclusion",
                0.001,
            ),
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestLoadResults:
    def test_groups_by_experiment(self, sample_json):
        grouped = report.load_results(sample_json)
        assert set(grouped) == {"E1:optimizer", "E3:direct_inclusion"}
        assert len(grouped["E1:optimizer"]) == 2


class TestPrintReport:
    def test_prints_tables_and_ratio(self, sample_json, capsys):
        grouped = report.load_results(sample_json)
        report.print_report(grouped)
        out = capsys.readouterr().out
        assert "E1:optimizer" in out
        assert "bench_optimized_expression[100]" in out
        assert "2.5x" in out  # 0.0005 / 0.0002

    def test_formats_units(self):
        assert "µs" in report._format_seconds(5e-5)
        assert "ms" in report._format_seconds(5e-3)
        assert "s " in report._format_seconds(5.0)


class TestMain:
    def test_main_happy_path(self, sample_json, capsys):
        assert report.main(["report.py", sample_json]) == 0
        assert "E1:optimizer" in capsys.readouterr().out

    def test_main_usage(self, capsys):
        assert report.main(["report.py"]) == 2

    def test_main_empty(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"benchmarks": []}))
        assert report.main(["report.py", str(path)]) == 1
