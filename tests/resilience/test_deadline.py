"""End-to-end deadline semantics: the absolute deadline is minted once
(`started()`), combined budgets take the tighter limit per field, and a
meter started late in the request's life measures against the original
instant — the clock never re-arms at a layer boundary."""

from __future__ import annotations

import time

import pytest

from repro.errors import BudgetExceededError
from repro.resilience import ResourceBudget, combine_budgets


class TestStarted:
    def test_started_mints_absolute_deadline(self):
        budget = ResourceBudget(deadline_s=0.5).started(now=100.0)
        assert budget.deadline_at == pytest.approx(100.5)
        assert budget.deadline_s == 0.5  # the declared window is kept

    def test_started_is_idempotent(self):
        once = ResourceBudget(deadline_s=0.5).started(now=100.0)
        twice = once.started(now=200.0)  # a later restamp must not extend
        assert twice.deadline_at == once.deadline_at

    def test_started_without_deadline_is_a_no_op(self):
        budget = ResourceBudget(max_regions=10)
        assert budget.started() is budget

    def test_remaining_counts_down_and_floors_at_zero(self):
        budget = ResourceBudget(deadline_s=1.0).started(now=100.0)
        assert budget.remaining_s(now=100.4) == pytest.approx(0.6)
        assert budget.remaining_s(now=105.0) == 0.0
        assert ResourceBudget(deadline_s=1.0).remaining_s() is None  # unstamped


class TestAtDispatch:
    def test_dispatch_clamps_to_remaining_time(self):
        budget = ResourceBudget(deadline_s=1.0).started(now=100.0)
        shard_view = budget.at_dispatch(now=100.7)
        assert shard_view.deadline_s == pytest.approx(0.3)
        assert shard_view.deadline_at == budget.deadline_at  # anchor kept

    def test_dispatch_never_extends(self):
        budget = ResourceBudget(deadline_s=0.2).started(now=100.0)
        # Dispatched immediately: full window remains, nothing to clamp.
        assert budget.at_dispatch(now=100.0).deadline_s == 0.2

    def test_dispatch_without_stamp_is_a_no_op(self):
        budget = ResourceBudget(deadline_s=1.0)
        assert budget.at_dispatch() is budget


class TestMeterAgainstAbsoluteDeadline:
    def test_late_meter_gets_no_fresh_window(self):
        # The request was admitted long ago; a meter created now must see
        # the deadline as already blown even though *its* clock just started.
        stamped = ResourceBudget(deadline_s=0.01).started(
            now=time.perf_counter() - 1.0
        )
        meter = stamped.meter()
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.check_deadline()
        error = excinfo.value
        assert error.resource == "wall_clock"
        assert error.partial["remaining_s"] == 0.0

    def test_unstamped_meter_restarts_relative_clock(self):
        # Without started(), deadline_s stays relative — the documented
        # legacy behaviour for single-layer callers.
        meter = ResourceBudget(deadline_s=30.0).meter()
        meter.check_deadline()  # plenty of relative time left


class TestCombineBudgets:
    def test_tighter_limit_wins_per_field(self):
        requested = ResourceBudget(deadline_s=5.0, max_regions=100)
        quota = ResourceBudget(deadline_s=1.0, max_bytes_parsed=4096)
        combined = combine_budgets(requested, quota)
        assert combined.deadline_s == 1.0
        assert combined.max_regions == 100
        assert combined.max_bytes_parsed == 4096

    def test_none_passes_the_other_through(self):
        quota = ResourceBudget(deadline_s=1.0)
        assert combine_budgets(None, quota) is quota
        assert combine_budgets(quota, None) is quota
        assert combine_budgets(None, None) is None

    def test_earlier_absolute_deadline_wins(self):
        early = ResourceBudget(deadline_s=1.0).started(now=100.0)
        late = ResourceBudget(deadline_s=1.0).started(now=200.0)
        assert combine_budgets(late, early).deadline_at == early.deadline_at

    def test_caller_cannot_widen_quota(self):
        quota = ResourceBudget(deadline_s=0.5)
        combined = combine_budgets(ResourceBudget(deadline_s=60.0), quota)
        assert combined.deadline_s == 0.5
