"""Staleness detection: a saved index whose source file changed after the
build must never silently answer from the stale index."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.errors import IndexStaleError
from repro.index.persist import stale_reason
from repro.resilience import (
    DEGRADED_FULL_SCAN,
    INDEX_REBUILT,
    INDEX_STALE,
    DegradationPolicy,
)
from repro.workloads.bibtex import generate_bibtex


@pytest.fixture(scope="module")
def fresh_text() -> str:
    return generate_bibtex(entries=26, seed=12)


class TestStaleDetection:
    def test_unchanged_source_is_fresh(self, saved_index, corpus_text):
        assert stale_reason(saved_index, source_text=corpus_text) is None

    def test_changed_source_reports_fingerprints(self, saved_index, fresh_text):
        reason = stale_reason(saved_index, source_text=fresh_text)
        assert reason is not None and "sha256:" in reason

    def test_no_source_means_no_verdict(self, saved_index):
        # Without the current source there is no basis for comparison.
        assert stale_reason(saved_index) is None

    def test_stale_raises_typed_error(self, saved_index, corpus_schema, fresh_text):
        with pytest.raises(IndexStaleError) as excinfo:
            FileQueryEngine.from_saved(
                corpus_schema,
                str(saved_index),
                policy=DegradationPolicy.strict(),
                source_text=fresh_text,
            )
        assert excinfo.value.path == str(saved_index)

    def test_stale_detected_via_source_path(
        self, saved_index, corpus_schema, fresh_text, tmp_path
    ):
        (tmp_path / "refs.bib").write_text(fresh_text, encoding="utf-8")
        with pytest.raises(IndexStaleError):
            FileQueryEngine.from_saved(
                corpus_schema,
                str(saved_index),
                policy=DegradationPolicy.strict(),
                source_path=tmp_path / "refs.bib",
            )


class TestStaleDegradation:
    def test_degrade_serves_the_fresh_text(
        self, saved_index, corpus_schema, fresh_text, query_text
    ):
        engine = FileQueryEngine.from_saved(
            corpus_schema,
            str(saved_index),
            policy=DegradationPolicy.degrade(),
            source_text=fresh_text,
        )
        # The degraded engine answers over the *current* source, never the
        # stale saved corpus.
        assert engine.text == fresh_text
        reference = FileQueryEngine(corpus_schema, fresh_text).query(query_text)
        result = engine.query(query_text)
        assert result.canonical_rows() == reference.canonical_rows()
        assert result.stats.strategy == "full-scan"
        codes = [warning.code for warning in result.warnings]
        assert INDEX_STALE in codes and DEGRADED_FULL_SCAN in codes
        assert result.trace is not None and result.trace.find("degraded") is not None

    def test_rebuild_reindexes_the_fresh_text(
        self, saved_index, corpus_schema, fresh_text, query_text
    ):
        engine = FileQueryEngine.from_saved(
            corpus_schema,
            str(saved_index),
            policy=DegradationPolicy.rebuild(),
            source_text=fresh_text,
        )
        assert engine.text == fresh_text
        result = engine.query(query_text)
        assert result.stats.strategy == "index-exact"
        reference = FileQueryEngine(corpus_schema, fresh_text).query(query_text)
        assert result.canonical_rows() == reference.canonical_rows()
        assert INDEX_REBUILT in [warning.code for warning in result.warnings]

    def test_fresh_source_loads_without_warnings(
        self, saved_index, corpus_schema, corpus_text, query_text
    ):
        engine = FileQueryEngine.from_saved(
            corpus_schema,
            str(saved_index),
            policy=DegradationPolicy.strict(),
            source_text=corpus_text,
        )
        result = engine.query(query_text)
        assert result.warnings == []
        assert result.stats.strategy == "index-exact"
