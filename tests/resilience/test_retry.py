"""Retry with capped jittered exponential backoff (`resilience/retry.py`)."""

from __future__ import annotations

import random

import pytest

from repro.resilience.retry import RetryPolicy, call_with_retry


class _Flaky:
    """Fails the first ``k`` calls with ``error``, then returns ``value``."""

    def __init__(self, k: int, error: Exception, value: str = "ok") -> None:
        self.k = k
        self.error = error
        self.value = value
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.k:
            raise self.error
        return self.value


def test_succeeds_without_retries() -> None:
    value, attempts = call_with_retry(lambda: 42, sleep=lambda s: None)
    assert (value, attempts) == (42, 1)


def test_retries_transient_errors_until_success() -> None:
    flaky = _Flaky(2, OSError("disk hiccup"))
    value, attempts = call_with_retry(flaky, sleep=lambda s: None)
    assert value == "ok"
    assert attempts == 3
    assert flaky.calls == 3


def test_raises_after_max_attempts() -> None:
    flaky = _Flaky(10, OSError("persistent"))
    policy = RetryPolicy(max_attempts=3)
    with pytest.raises(OSError, match="persistent"):
        call_with_retry(flaky, policy, sleep=lambda s: None)
    assert flaky.calls == 3


def test_non_retryable_errors_propagate_immediately() -> None:
    flaky = _Flaky(1, ValueError("logic bug"))
    with pytest.raises(ValueError):
        call_with_retry(flaky, sleep=lambda s: None)
    assert flaky.calls == 1


def test_backoff_grows_exponentially_and_caps() -> None:
    policy = RetryPolicy(
        max_attempts=6,
        base_delay_s=0.010,
        multiplier=2.0,
        max_delay_s=0.040,
        jitter=0.0,
    )
    rng = random.Random(0)
    delays = [policy.delay_s(attempt, rng) for attempt in range(1, 6)]
    assert delays == [0.010, 0.020, 0.040, 0.040, 0.040]


def test_jitter_only_shrinks_the_delay() -> None:
    policy = RetryPolicy(base_delay_s=0.100, jitter=0.5)
    rng = random.Random(123)
    for attempt in range(1, 4):
        delay = policy.delay_s(attempt, rng)
        ceiling = policy.delay_s(attempt, _ZeroRandom())
        assert 0 < delay <= ceiling


class _ZeroRandom(random.Random):
    def random(self) -> float:  # jitter term becomes zero -> full delay
        return 0.0


def test_deterministic_with_seeded_rng() -> None:
    policy = RetryPolicy(max_attempts=4)
    one = [policy.delay_s(n, random.Random(7)) for n in (1, 2, 3)]
    two = [policy.delay_s(n, random.Random(7)) for n in (1, 2, 3)]
    assert one == two


def test_sleeps_are_recorded_and_bounded() -> None:
    slept: list[float] = []
    flaky = _Flaky(3, TimeoutError("slow"))
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.010, max_delay_s=0.025)
    call_with_retry(flaky, policy, sleep=slept.append, rng=random.Random(0))
    assert len(slept) == 3
    assert all(0 < delay <= 0.025 for delay in slept)


def test_on_retry_callback_sees_each_failure() -> None:
    events: list[tuple[int, str]] = []
    flaky = _Flaky(2, OSError("blip"))
    call_with_retry(
        flaky,
        sleep=lambda s: None,
        on_retry=lambda attempt, error, delay: events.append((attempt, str(error))),
    )
    assert events == [(1, "blip"), (2, "blip")]


def test_policy_none_disables_retrying() -> None:
    flaky = _Flaky(1, OSError("once"))
    with pytest.raises(OSError):
        call_with_retry(flaky, RetryPolicy.none(), sleep=lambda s: None)
    assert flaky.calls == 1


def test_policy_validation() -> None:
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
