"""CLI fault tolerance (satellite f): ``--strict``/``--degrade`` flags,
budget flags, warnings on stderr, and warnings in the ``--json`` payload."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.engine import FileQueryEngine
from repro.resilience import corrupt_index_file

QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


@pytest.fixture
def cli_index(tmp_path, corpus_schema, corpus_text):
    source = tmp_path / "refs.bib"
    source.write_text(corpus_text, encoding="utf-8")
    directory = tmp_path / "idx"
    engine = FileQueryEngine(corpus_schema, corpus_text)
    engine.save(str(directory), source_path=source)
    return directory, source


def run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCorruptIndexCli:
    def test_degrade_exits_zero_with_warning(self, capsys, cli_index):
        directory, _ = cli_index
        corrupt_index_file(directory, part="regions", mode="garbage")
        code, out, err = run(
            capsys,
            ["query", "--workload", "bibtex", "--index", str(directory), "--degrade", QUERY],
        )
        assert code == 0
        assert out.strip()  # rows still produced, via full scan
        assert "warning: [index-corrupt]" in err
        assert "warning: [degraded-full-scan]" in err

    def test_strict_exits_nonzero(self, capsys, cli_index):
        directory, _ = cli_index
        corrupt_index_file(directory, part="regions", mode="garbage")
        code, out, err = run(
            capsys,
            ["query", "--workload", "bibtex", "--index", str(directory), "--strict", QUERY],
        )
        assert code == 1
        assert "error:" in err and "corrupt" in err

    def test_json_payload_carries_warnings(self, capsys, cli_index):
        directory, _ = cli_index
        corrupt_index_file(directory, part="regions", mode="garbage")
        code, out, err = run(
            capsys,
            [
                "query", "--workload", "bibtex", "--index", str(directory),
                "--degrade", "--json", QUERY,
            ],
        )
        assert code == 0
        payload = json.loads(out)
        codes = [warning["code"] for warning in payload["warnings"]]
        assert "index-corrupt" in codes and "degraded-full-scan" in codes
        assert payload["stats"]["warnings"] == payload["warnings"]
        assert payload["stats"]["strategy"] == "full-scan"

    def test_degraded_rows_match_healthy_rows(self, capsys, cli_index):
        directory, source = cli_index
        code, healthy_out, _ = run(
            capsys,
            ["query", "--workload", "bibtex", "--index", str(directory), "--json", QUERY],
        )
        assert code == 0
        corrupt_index_file(directory, part="regions", mode="garbage")
        code, degraded_out, _ = run(
            capsys,
            [
                "query", "--workload", "bibtex", "--index", str(directory),
                "--degrade", "--json", QUERY,
            ],
        )
        assert code == 0
        assert json.loads(degraded_out)["rows"] == json.loads(healthy_out)["rows"]

    def test_strict_and_degrade_are_mutually_exclusive(self, capsys, cli_index):
        directory, _ = cli_index
        with pytest.raises(SystemExit):
            main(
                ["query", "--workload", "bibtex", "--index", str(directory),
                 "--strict", "--degrade", QUERY]
            )


class TestStaleIndexCli:
    def test_stale_source_degrades_with_warning(self, capsys, cli_index):
        from repro.workloads.bibtex import generate_bibtex

        directory, source = cli_index
        source.write_text(generate_bibtex(entries=27, seed=13), encoding="utf-8")
        code, out, err = run(
            capsys,
            [
                "query", "--workload", "bibtex", "--index", str(directory),
                "--file", str(source), "--degrade", QUERY,
            ],
        )
        assert code == 0
        assert "warning: [index-stale]" in err

    def test_stale_source_strict_fails(self, capsys, cli_index):
        from repro.workloads.bibtex import generate_bibtex

        directory, source = cli_index
        source.write_text(generate_bibtex(entries=27, seed=13), encoding="utf-8")
        code, _, err = run(
            capsys,
            [
                "query", "--workload", "bibtex", "--index", str(directory),
                "--file", str(source), "--strict", QUERY,
            ],
        )
        assert code == 1
        assert "stale" in err


class TestBudgetCli:
    def test_budget_breach_fails_by_default(self, capsys, cli_index):
        _, source = cli_index
        code, _, err = run(
            capsys,
            [
                "query", "--workload", "bibtex", "--file", str(source),
                "--budget-regions", "1", QUERY,
            ],
        )
        assert code == 1
        assert "budget exceeded" in err

    def test_budget_breach_degrades_when_asked(self, capsys, cli_index):
        _, source = cli_index
        code, out, err = run(
            capsys,
            [
                "query", "--workload", "bibtex", "--file", str(source),
                "--budget-regions", "1", "--degrade", QUERY,
            ],
        )
        assert code == 0
        assert out.strip()
        assert "warning: [budget-degraded]" in err
