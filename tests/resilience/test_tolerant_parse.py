"""Tolerant candidate parsing: a malformed region is skipped with a
structured warning (default), or aborts the query with a
:class:`CandidateParseError` that preserves the underlying position and
symbol (strict) — satellite (a)'s fix for the dropped ``ParseError``
context."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.errors import CandidateParseError, ParseError
from repro.resilience import (
    MALFORMED_REGION,
    DegradationPolicy,
    FlakySchema,
)


def flaky_engine(corpus_schema, corpus_text, policy=None) -> FileQueryEngine:
    """An engine whose second candidate re-parse fails deterministically.

    Parse call 0 is the corpus parse at build time; candidate parses start
    at call 1, so ``fail_calls={2}`` rejects exactly the second candidate.
    """
    schema = FlakySchema(corpus_schema, fail_calls={2})
    return FileQueryEngine(schema, corpus_text, policy=policy)


class TestTolerantParsing:
    def test_malformed_region_skipped_with_warning(self, corpus_schema, corpus_text):
        engine = flaky_engine(corpus_schema, corpus_text)
        healthy = FileQueryEngine(corpus_schema, corpus_text).query(
            "SELECT r FROM Reference r"
        )
        result = engine.query("SELECT r FROM Reference r")
        assert len(result.rows) == len(healthy.rows) - 1
        assert result.stats.malformed_regions == 1
        warning = next(w for w in result.warnings if w.code == MALFORMED_REGION)
        assert warning.detail["symbol"] == "Reference"
        assert warning.detail["position"] == warning.detail["start"]
        assert warning.detail["end"] > warning.detail["start"]

    def test_memo_hit_re_surfaces_the_warning(self, corpus_schema, corpus_text):
        # The failed parse memoizes; a repeat query must report the same
        # malformed region again (from the memo, without re-reading bytes).
        engine = flaky_engine(corpus_schema, corpus_text)
        first = engine.query("SELECT r FROM Reference r")
        second = engine.query("SELECT r FROM Reference r")
        first_w = [w for w in first.warnings if w.code == MALFORMED_REGION]
        second_w = [w for w in second.warnings if w.code == MALFORMED_REGION]
        assert len(first_w) == len(second_w) == 1
        assert first_w[0].detail == second_w[0].detail
        assert second.stats.cache_parse_hits > 0

    def test_strict_policy_aborts_with_context_preserved(
        self, corpus_schema, corpus_text
    ):
        engine = flaky_engine(
            corpus_schema, corpus_text, policy=DegradationPolicy.strict()
        )
        with pytest.raises(CandidateParseError) as excinfo:
            engine.query("SELECT r FROM Reference r")
        error = excinfo.value
        # The wrapper keeps the original ParseError's position/symbol and
        # records which candidate region failed — nothing is stringified away.
        assert isinstance(error, ParseError)
        assert error.symbol == "Reference"
        assert error.region is not None
        assert error.position == error.region[0]
        assert error.__cause__ is not None
        assert isinstance(error.__cause__, ParseError)

    def test_rows_unaffected_when_nothing_is_malformed(
        self, corpus_schema, corpus_text
    ):
        strict = FileQueryEngine(
            corpus_schema, corpus_text, policy=DegradationPolicy.strict()
        )
        tolerant = FileQueryEngine(corpus_schema, corpus_text)
        query = "SELECT r.Key FROM Reference r"
        assert (
            strict.query(query).canonical_rows()
            == tolerant.query(query).canonical_rows()
        )
