"""Corrupted saved indexes: typed errors under a strict policy, graceful
full-scan degradation (byte-identical answers + warnings + a ``degraded``
trace span) otherwise — the PR's headline acceptance criterion."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.errors import IndexCorruptError, IndexNotFoundError
from repro.index.persist import load_index, verify_index
from repro.resilience import (
    DEGRADED_FULL_SCAN,
    INDEX_CORRUPT,
    INDEX_MISSING,
    INDEX_REBUILT,
    DegradationPolicy,
    corrupt_index_file,
)

#: Every (part, mode) fault and the strict-policy error it must raise
#: (``None`` = the index still loads: a deleted manifest demotes the
#: directory to a legacy v1 index, which has no checksums to fail).
FAULT_MATRIX = [
    ("corpus", "garbage", IndexCorruptError),
    ("corpus", "truncate", IndexCorruptError),
    ("corpus", "delete", IndexCorruptError),
    ("regions", "garbage", IndexCorruptError),
    ("regions", "truncate", IndexCorruptError),
    ("regions", "delete", IndexCorruptError),
    ("config", "garbage", IndexCorruptError),
    ("config", "truncate", IndexCorruptError),
    ("config", "delete", IndexNotFoundError),
    ("manifest", "garbage", IndexCorruptError),
    ("manifest", "truncate", IndexCorruptError),
    ("manifest", "delete", None),
]


class TestFaultMatrix:
    @pytest.mark.parametrize("part,mode,expected", FAULT_MATRIX)
    def test_strict_policy_raises_typed_errors(
        self, saved_index, corpus_schema, part, mode, expected
    ):
        corrupt_index_file(saved_index, part=part, mode=mode)
        if expected is None:
            engine = FileQueryEngine.from_saved(
                corpus_schema, str(saved_index), policy=DegradationPolicy.strict()
            )
            assert engine.indexed_names  # legacy load, still indexed
            return
        with pytest.raises(expected) as excinfo:
            FileQueryEngine.from_saved(
                corpus_schema, str(saved_index), policy=DegradationPolicy.strict()
            )
        assert excinfo.value.path == str(saved_index)

    @pytest.mark.parametrize("part,mode,expected", FAULT_MATRIX)
    def test_verify_index_matches_load_behaviour(self, saved_index, part, mode, expected):
        corrupt_index_file(saved_index, part=part, mode=mode)
        if expected is None:
            assert verify_index(saved_index) is None  # legacy: nothing to verify
            load_index(saved_index)
        else:
            with pytest.raises(expected):
                load_index(saved_index)


class TestGracefulDegradation:
    @pytest.mark.parametrize("part", ["regions", "config", "manifest"])
    def test_degraded_rows_identical_to_healthy(
        self, saved_index, corpus_schema, query_text, healthy_rows, part
    ):
        corrupt_index_file(saved_index, part=part, mode="garbage")
        engine = FileQueryEngine.from_saved(
            corpus_schema, str(saved_index), policy=DegradationPolicy.degrade()
        )
        result = engine.query(query_text)
        assert result.canonical_rows() == healthy_rows
        assert result.stats.strategy == "full-scan"
        codes = [warning.code for warning in result.warnings]
        assert INDEX_CORRUPT in codes
        assert DEGRADED_FULL_SCAN in codes
        assert result.trace is not None
        degraded = result.trace.find("degraded")
        assert degraded is not None
        assert degraded.metrics["code"] == INDEX_CORRUPT

    def test_degraded_full_scan_is_cached(
        self, saved_index, corpus_schema, query_text
    ):
        corrupt_index_file(saved_index, part="regions", mode="garbage")
        engine = FileQueryEngine.from_saved(
            corpus_schema, str(saved_index), policy=DegradationPolicy.degrade()
        )
        first = engine.query(query_text)
        second = engine.query(query_text)
        assert first.stats.cache_parse_misses == 1  # paid the corpus parse once
        assert second.stats.cache_parse_hits == 1
        assert second.stats.bytes_parsed == 0

    def test_corrupt_corpus_with_no_source_still_raises(
        self, saved_index, corpus_schema
    ):
        # Nothing trustworthy survives: the saved text itself is damaged and
        # no fresh source was provided — degrading would answer wrongly.
        corrupt_index_file(saved_index, part="corpus", mode="garbage")
        with pytest.raises(IndexCorruptError):
            FileQueryEngine.from_saved(
                corpus_schema, str(saved_index), policy=DegradationPolicy.degrade()
            )

    def test_corrupt_corpus_recovers_from_fresh_source(
        self, saved_index, corpus_schema, corpus_text, query_text, healthy_rows
    ):
        corrupt_index_file(saved_index, part="corpus", mode="garbage")
        engine = FileQueryEngine.from_saved(
            corpus_schema,
            str(saved_index),
            policy=DegradationPolicy.degrade(),
            source_text=corpus_text,
        )
        assert engine.query(query_text).canonical_rows() == healthy_rows

    def test_rebuild_policy_restores_indexed_execution(
        self, saved_index, corpus_schema, query_text, healthy_rows
    ):
        corrupt_index_file(saved_index, part="regions", mode="truncate")
        engine = FileQueryEngine.from_saved(
            corpus_schema, str(saved_index), policy=DegradationPolicy.rebuild()
        )
        result = engine.query(query_text)
        assert result.canonical_rows() == healthy_rows
        assert result.stats.strategy == "index-exact"  # indexed again
        codes = [warning.code for warning in result.warnings]
        assert INDEX_CORRUPT in codes
        assert INDEX_REBUILT in codes


class TestMissingIndex:
    def test_missing_directory_raises_typed_error(self, tmp_path, corpus_schema):
        missing = tmp_path / "nowhere"
        with pytest.raises(IndexNotFoundError) as excinfo:
            FileQueryEngine.from_saved(corpus_schema, str(missing))
        assert excinfo.value.path == str(missing)

    def test_missing_index_rebuilds_from_source(
        self, tmp_path, corpus_schema, corpus_text, query_text, healthy_rows
    ):
        missing = tmp_path / "nowhere"
        engine = FileQueryEngine.from_saved(
            corpus_schema,
            str(missing),
            policy=DegradationPolicy.degrade(),  # on_missing="rebuild"
            source_text=corpus_text,
        )
        result = engine.query(query_text)
        assert result.canonical_rows() == healthy_rows
        assert result.stats.strategy == "index-exact"
        codes = [warning.code for warning in result.warnings]
        assert INDEX_MISSING in codes and INDEX_REBUILT in codes

    def test_missing_index_without_source_raises_even_degraded(
        self, tmp_path, corpus_schema
    ):
        with pytest.raises(IndexNotFoundError):
            FileQueryEngine.from_saved(
                corpus_schema,
                str(tmp_path / "nowhere"),
                policy=DegradationPolicy.degrade(),
            )
