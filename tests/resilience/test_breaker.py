"""Circuit breaker state machine (`resilience/breaker.py`).

Every test injects a fake clock, so open → half-open transitions are
exercised without sleeping.
"""

from __future__ import annotations

import threading

import pytest

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make(clock: FakeClock, **overrides) -> CircuitBreaker:
    defaults = {"failure_threshold": 3, "reset_timeout_s": 30.0}
    defaults.update(overrides)
    return CircuitBreaker(BreakerConfig(**defaults), name="s0", clock=clock)


def test_starts_closed_and_allows(clock: FakeClock) -> None:
    breaker = make(clock)
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.trips == 0


def test_trips_open_after_threshold_consecutive_failures(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.trips == 1


def test_success_resets_the_failure_count(clock: FakeClock) -> None:
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # never reached 3 in a row


def test_open_refuses_until_cooldown_then_half_open(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    assert not breaker.allow()
    clock.advance(29.9)
    assert not breaker.allow()
    clock.advance(0.2)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()


def test_half_open_allows_exactly_one_probe_at_a_time(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.allow()  # reserves the probe slot
    assert not breaker.allow()  # concurrent caller is refused
    breaker.record_success()
    assert breaker.state == CLOSED


def test_successful_probe_closes_the_breaker(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.trips == 1


def test_failed_probe_reopens_and_restarts_cooldown(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2
    assert not breaker.allow()
    clock.advance(31)
    assert breaker.allow()  # a fresh cooldown elapsed


def test_multiple_probe_successes_required_when_configured(clock: FakeClock) -> None:
    breaker = make(clock, half_open_successes=2)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == HALF_OPEN  # one success is not enough
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED


def test_snapshot_shape(clock: FakeClock) -> None:
    breaker = make(clock)
    snap = breaker.snapshot()
    assert snap == {
        "state": CLOSED,
        "consecutive_failures": 0,
        "trips": 0,
        "open_for_s": None,
    }
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5)
    snap = breaker.snapshot()
    assert snap["state"] == OPEN
    assert snap["trips"] == 1
    assert snap["open_for_s"] == pytest.approx(5.0)


def test_thread_safety_under_concurrent_hammering(clock: FakeClock) -> None:
    breaker = make(clock, failure_threshold=1000000)
    errors: list[Exception] = []

    def hammer() -> None:
        try:
            for _ in range(500):
                if breaker.allow():
                    breaker.record_failure()
                    breaker.record_success()
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert breaker.state == CLOSED


def test_config_validation() -> None:
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(reset_timeout_s=-1)
    with pytest.raises(ValueError):
        BreakerConfig(half_open_successes=0)
