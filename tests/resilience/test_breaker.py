"""Circuit breaker state machine (`resilience/breaker.py`).

Every test injects a fake clock, so open → half-open transitions are
exercised without sleeping.
"""

from __future__ import annotations

import threading

import pytest

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make(clock: FakeClock, **overrides) -> CircuitBreaker:
    defaults = {"failure_threshold": 3, "reset_timeout_s": 30.0}
    defaults.update(overrides)
    return CircuitBreaker(BreakerConfig(**defaults), name="s0", clock=clock)


def test_starts_closed_and_allows(clock: FakeClock) -> None:
    breaker = make(clock)
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.trips == 0


def test_trips_open_after_threshold_consecutive_failures(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.trips == 1


def test_success_resets_the_failure_count(clock: FakeClock) -> None:
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # never reached 3 in a row


def test_open_refuses_until_cooldown_then_half_open(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    assert not breaker.allow()
    clock.advance(29.9)
    assert not breaker.allow()
    clock.advance(0.2)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()


def test_half_open_allows_exactly_one_probe_at_a_time(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.allow()  # reserves the probe slot
    assert not breaker.allow()  # concurrent caller is refused
    breaker.record_success()
    assert breaker.state == CLOSED


def test_successful_probe_closes_the_breaker(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.trips == 1


def test_failed_probe_reopens_and_restarts_cooldown(clock: FakeClock) -> None:
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2
    assert not breaker.allow()
    clock.advance(31)
    assert breaker.allow()  # a fresh cooldown elapsed


def test_multiple_probe_successes_required_when_configured(clock: FakeClock) -> None:
    breaker = make(clock, half_open_successes=2)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == HALF_OPEN  # one success is not enough
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED


def test_snapshot_shape(clock: FakeClock) -> None:
    breaker = make(clock)
    snap = breaker.snapshot()
    assert snap == {
        "state": CLOSED,
        "consecutive_failures": 0,
        "trips": 0,
        "open_for_s": None,
    }
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5)
    snap = breaker.snapshot()
    assert snap["state"] == OPEN
    assert snap["trips"] == 1
    assert snap["open_for_s"] == pytest.approx(5.0)


def test_thread_safety_under_concurrent_hammering(clock: FakeClock) -> None:
    breaker = make(clock, failure_threshold=1000000)
    errors: list[Exception] = []

    def hammer() -> None:
        try:
            for _ in range(500):
                if breaker.allow():
                    breaker.record_failure()
                    breaker.record_success()
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert breaker.state == CLOSED


def test_config_validation() -> None:
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(reset_timeout_s=-1)
    with pytest.raises(ValueError):
        BreakerConfig(half_open_successes=0)


# -- half-open probe reservation under contention -----------------------------


def tripped_to_half_open(clock: FakeClock, **overrides) -> CircuitBreaker:
    breaker = make(clock, **overrides)
    for _ in range(breaker.config.failure_threshold):
        breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(breaker.config.reset_timeout_s + 1)
    return breaker


def test_half_open_admits_exactly_one_probe_under_race(clock: FakeClock) -> None:
    """N threads hit the breaker at the instant the cooldown elapses: the
    single probe slot must be granted exactly once, no matter the
    interleaving."""
    breaker = tripped_to_half_open(clock)
    barrier = threading.Barrier(16)
    admitted: list[bool] = []
    lock = threading.Lock()

    def contend() -> None:
        barrier.wait()
        verdict = breaker.allow()
        with lock:
            admitted.append(verdict)

    threads = [threading.Thread(target=contend) for _ in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert admitted.count(True) == 1
    assert breaker.state == HALF_OPEN


def test_stale_success_without_probe_slot_is_not_evidence(clock: FakeClock) -> None:
    """A caller admitted while the breaker was still closed reports success
    only after the half-open transition: that success must not close the
    breaker (it says nothing about the backend *now*)."""
    breaker = make(clock, half_open_successes=1)
    assert breaker.allow()  # closed-era admission, outcome still pending
    for _ in range(3):
        breaker.record_failure()
    clock.advance(31)
    assert breaker.state == HALF_OPEN
    breaker.record_success()  # the stale caller reports in — no slot held
    assert breaker.state == HALF_OPEN  # still waiting for a real probe
    assert breaker.allow()  # the slot was never consumed
    breaker.record_success()  # the actual probe's outcome closes it
    assert breaker.state == CLOSED


def test_stale_success_from_other_thread_cannot_release_probe(
    clock: FakeClock,
) -> None:
    """The probe reservation is owned by the admitted thread: a stale
    success reported from a *different* thread while the probe is in flight
    neither releases the slot nor counts toward closing."""
    breaker = tripped_to_half_open(clock, half_open_successes=1)
    assert breaker.allow()  # this thread owns the probe slot

    outcome: list[str] = []

    def stale_reporter() -> None:
        breaker.record_success()
        outcome.append(breaker.state)

    thread = threading.Thread(target=stale_reporter)
    thread.start()
    thread.join()
    assert outcome == [HALF_OPEN]  # ignored: reporter does not hold the slot
    assert not breaker.allow()  # slot still reserved by the real probe
    breaker.record_success()  # owner reports: this one counts
    assert breaker.state == CLOSED


def test_failure_during_half_open_trips_regardless_of_owner(
    clock: FakeClock,
) -> None:
    breaker = tripped_to_half_open(clock)
    assert breaker.allow()

    def stale_failure() -> None:
        breaker.record_failure()

    thread = threading.Thread(target=stale_failure)
    thread.start()
    thread.join()
    assert breaker.state == OPEN  # failure is evidence whatever its era
    assert breaker.trips == 2


def test_probe_race_stress_over_many_cycles(clock: FakeClock) -> None:
    """Repeatedly cycle open → half-open while threads race for the probe:
    every cycle admits exactly one."""
    breaker = make(clock, failure_threshold=1, reset_timeout_s=10.0)
    for _ in range(20):
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(11)
        barrier = threading.Barrier(8)
        admitted: list[bool] = []
        lock = threading.Lock()

        def contend() -> None:
            barrier.wait()
            verdict = breaker.allow()
            with lock:
                admitted.append(verdict)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert admitted.count(True) == 1
