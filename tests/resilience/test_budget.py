"""Guarded evaluation: resource budgets abort runaway executions with
typed errors carrying partial progress, or degrade to the predictable-cost
full-scan pipeline under an ``on_budget="full-scan"`` policy."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.errors import BudgetExceededError
from repro.resilience import (
    BUDGET_DEGRADED,
    DegradationPolicy,
    ResourceBudget,
)


class TestResourceBudget:
    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            ResourceBudget(deadline_s=-1.0)
        with pytest.raises(ValueError):
            ResourceBudget(max_regions=-5)

    def test_unlimited_and_describe(self):
        assert ResourceBudget().unlimited
        budget = ResourceBudget(deadline_s=0.05, max_regions=10)
        assert not budget.unlimited
        assert "deadline 50ms" in budget.describe()
        assert "max 10 regions" in budget.describe()
        assert ResourceBudget().describe() == "unlimited"

    def test_meter_charges_and_raises(self):
        meter = ResourceBudget(max_regions=10).meter()
        meter.charge_regions(10)  # exactly at the limit: fine
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.charge_regions(1)
        error = excinfo.value
        assert error.resource == "regions"
        assert error.limit == 10 and error.spent == 11
        assert error.partial["regions_materialized"] == 11
        assert set(error.partial) >= {"elapsed_s", "bytes_parsed", "budget"}

    def test_meter_bytes_limit(self):
        meter = ResourceBudget(max_bytes_parsed=100).meter()
        meter.charge_bytes(100)
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.charge_bytes(1)
        assert excinfo.value.resource == "bytes"

    def test_zero_deadline_trips_immediately(self):
        meter = ResourceBudget(deadline_s=0.0).meter()
        with pytest.raises(BudgetExceededError) as excinfo:
            meter.check_deadline()
        assert excinfo.value.resource == "wall_clock"


class TestEngineBudgets:
    def test_regions_budget_raises_with_partial_stats_and_trace(
        self, corpus_schema, corpus_text, query_text
    ):
        engine = FileQueryEngine(corpus_schema, corpus_text)
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.query(query_text, budget=ResourceBudget(max_regions=1))
        error = excinfo.value
        assert error.resource == "regions"
        assert error.partial["regions_materialized"] > 1
        assert error.trace is not None  # the partial pipeline trace
        assert error.trace.find("index-eval") is not None

    def test_bytes_budget_guards_candidate_parsing(
        self, corpus_schema, corpus_text, query_text
    ):
        engine = FileQueryEngine(corpus_schema, corpus_text)
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.query(query_text, budget=ResourceBudget(max_bytes_parsed=1))
        assert excinfo.value.resource == "bytes"

    def test_deadline_budget(self, corpus_schema, corpus_text, query_text):
        engine = FileQueryEngine(corpus_schema, corpus_text)
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.query(query_text, budget=ResourceBudget(deadline_s=0.0))
        assert excinfo.value.resource == "wall_clock"

    def test_cache_hits_are_free(self, corpus_schema, corpus_text, query_text):
        # The budget meters *work*: a warm engine answering entirely from its
        # caches does no fresh evaluation or parsing, so nothing is charged.
        engine = FileQueryEngine(corpus_schema, corpus_text)
        engine.query(query_text)  # warm every cache
        result = engine.query(
            query_text, budget=ResourceBudget(max_regions=1, max_bytes_parsed=1)
        )
        assert result.rows  # served from cache, under budget

    def test_engine_wide_default_budget(self, corpus_schema, corpus_text, query_text):
        engine = FileQueryEngine(
            corpus_schema, corpus_text, budget=ResourceBudget(max_regions=1)
        )
        with pytest.raises(BudgetExceededError):
            engine.query(query_text)

    def test_budget_degradation_retries_via_full_scan(
        self, corpus_schema, corpus_text, query_text, healthy_rows
    ):
        engine = FileQueryEngine(
            corpus_schema, corpus_text, policy=DegradationPolicy.degrade()
        )
        result = engine.query(query_text, budget=ResourceBudget(max_regions=1))
        assert result.canonical_rows() == healthy_rows
        assert result.stats.strategy == "full-scan"
        warning = next(w for w in result.warnings if w.code == BUDGET_DEGRADED)
        assert warning.detail["resource"] == "regions"
        assert "partial" in warning.detail
        assert result.trace is not None
        degraded = result.trace.find("degraded")
        assert degraded is not None and degraded.metrics["code"] == BUDGET_DEGRADED

    def test_unlimited_budget_is_a_no_op(self, corpus_schema, corpus_text, query_text):
        engine = FileQueryEngine(corpus_schema, corpus_text)
        baseline = engine.query(query_text)
        budgeted = engine.query(query_text, budget=ResourceBudget())
        assert budgeted.canonical_rows() == baseline.canonical_rows()
