"""Concurrent engine use (satellite c): two or more threads querying one
engine must not corrupt the shared caches — region-expression results,
candidate-parse memo, plan cache, or the full-scan tree memo."""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import FileQueryEngine
from repro.index.persist import load_index  # noqa: F401  (import check)

QUERIES = [
    'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"',
    "SELECT r.Key FROM Reference r",
    "SELECT r FROM Reference r",
    'SELECT r.Title FROM Reference r WHERE r.Key = "missing-key"',
]


def hammer(engine: FileQueryEngine, expected: dict, threads: int = 8, rounds: int = 3):
    """Run every query from ``threads`` threads concurrently and compare
    each answer against the single-threaded reference."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads)

    def worker(index: int) -> None:
        try:
            barrier.wait(timeout=10)
            for round_number in range(rounds):
                query = QUERIES[(index + round_number) % len(QUERIES)]
                result = engine.query(query)
                assert result.canonical_rows() == expected[query], query
        except BaseException as error:  # noqa: BLE001 - re-raised on the main thread
            errors.append(error)

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=60)
    if errors:
        raise errors[0]


@pytest.fixture(scope="module")
def expected_rows(corpus_schema, corpus_text) -> dict:
    reference = FileQueryEngine(corpus_schema, corpus_text)
    return {query: reference.query(query).canonical_rows() for query in QUERIES}


def test_concurrent_queries_on_one_indexed_engine(
    corpus_schema, corpus_text, expected_rows
):
    engine = FileQueryEngine(corpus_schema, corpus_text)
    hammer(engine, expected_rows)
    # The shared caches saw real traffic while staying consistent.
    assert engine.cache_stats.parse_hits + engine.cache_stats.expression_hits > 0


def test_concurrent_queries_on_a_degraded_engine(
    tmp_path, corpus_schema, corpus_text, expected_rows
):
    # A degraded engine funnels everything through the full-scan pipeline,
    # so this exercises the full-scan tree memo's lock specifically.
    from repro.resilience import DegradationPolicy, corrupt_index_file

    directory = tmp_path / "idx"
    FileQueryEngine(corpus_schema, corpus_text).save(str(directory))
    corrupt_index_file(directory, part="regions", mode="garbage")
    engine = FileQueryEngine.from_saved(
        corpus_schema, str(directory), policy=DegradationPolicy.degrade()
    )
    hammer(engine, expected_rows, threads=6, rounds=2)
    # The corpus was parsed exactly once despite the concurrent full scans.
    assert engine.cache_stats.parse_misses == 1
