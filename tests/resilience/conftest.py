"""Fixtures for the fault-injection suite: a healthy corpus, its saved
index (with source fingerprint), and the reference answer rows."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.workloads.bibtex import bibtex_schema, generate_bibtex


@pytest.fixture(scope="module")
def corpus_schema():
    return bibtex_schema()


@pytest.fixture(scope="module")
def corpus_text() -> str:
    return generate_bibtex(entries=25, seed=11)


@pytest.fixture(scope="module")
def query_text() -> str:
    return 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


@pytest.fixture(scope="module")
def healthy_rows(corpus_schema, corpus_text, query_text):
    """The reference answer from an intact, fully indexed engine."""
    engine = FileQueryEngine(corpus_schema, corpus_text)
    result = engine.query(query_text)
    assert result.rows, "fixture query must match something"
    return result.canonical_rows()


@pytest.fixture
def saved_index(tmp_path, corpus_schema, corpus_text):
    """A freshly saved index directory, with the source file next to it."""
    source = tmp_path / "refs.bib"
    source.write_text(corpus_text, encoding="utf-8")
    directory = tmp_path / "idx"
    engine = FileQueryEngine(corpus_schema, corpus_text)
    engine.save(str(directory), source_path=source)
    return directory
