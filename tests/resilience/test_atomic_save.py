"""Crash-safety of `save_index`: a save killed mid-write must never leave
a torn index at the target path."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.engine import FileQueryEngine
from repro.index import persist
from repro.index.persist import load_index, save_index, verify_index


class _KilledMidSave(BaseException):
    """Stands in for SIGKILL: not an Exception, nothing downstream
    catches it."""


def _interrupt_after(monkeypatch, files_written: int):
    """Make `_write_index_files` die after writing ``files_written`` of the
    four index files — the moral equivalent of `kill -9` mid-save."""
    original = persist._write_index_files

    def wrapper(engine, path, *args, **kwargs):
        real_write_text = Path.write_text
        budget = {"left": files_written}

        def counting_write_text(self, *write_args, **write_kwargs):
            if budget["left"] <= 0:
                raise _KilledMidSave()
            budget["left"] -= 1
            return real_write_text(self, *write_args, **write_kwargs)

        with pytest.MonkeyPatch.context() as inner:
            inner.setattr(Path, "write_text", counting_write_text)
            return original(engine, path, *args, **kwargs)

    monkeypatch.setattr(persist, "_write_index_files", wrapper)


@pytest.mark.parametrize("files_written", [0, 1, 2, 3])
def test_kill_mid_save_leaves_no_index_behind(
    tmp_path, corpus_schema, corpus_text, monkeypatch, files_written
) -> None:
    """A first-time save killed at any point leaves no target directory at
    all (and no stray staging directory), instead of a torn index."""
    engine = FileQueryEngine(corpus_schema, corpus_text)
    target = tmp_path / "idx"
    _interrupt_after(monkeypatch, files_written)
    with pytest.raises(_KilledMidSave):
        engine.save(str(target))
    assert not target.exists()
    assert list(tmp_path.iterdir()) == []  # staging cleaned up too


@pytest.mark.parametrize("files_written", [0, 2, 3])
def test_kill_mid_resave_preserves_the_old_index(
    tmp_path, corpus_schema, corpus_text, query_text, healthy_rows,
    monkeypatch, files_written,
) -> None:
    """Re-saving over an existing index dies mid-write: the previous index
    must still verify and answer queries."""
    engine = FileQueryEngine(corpus_schema, corpus_text)
    target = tmp_path / "idx"
    engine.save(str(target))
    _interrupt_after(monkeypatch, files_written)
    with pytest.raises(_KilledMidSave):
        engine.save(str(target))
    monkeypatch.undo()
    assert verify_index(target) is not None
    reloaded = FileQueryEngine.from_saved(corpus_schema, str(target))
    assert reloaded.query(query_text).canonical_rows() == healthy_rows


def test_failed_promote_restores_the_old_index(
    tmp_path, corpus_schema, corpus_text, monkeypatch
) -> None:
    """If the final staging→target rename itself fails, the retired old
    index is put back before the error propagates."""
    engine = FileQueryEngine(corpus_schema, corpus_text)
    target = tmp_path / "idx"
    engine.save(str(target))

    real_rename = os.rename
    calls = {"n": 0}

    def failing_rename(src, dst):
        calls["n"] += 1
        if calls["n"] == 2:  # 1: retire old, 2: promote new
            raise OSError("injected rename failure")
        return real_rename(src, dst)

    monkeypatch.setattr(persist.os, "rename", failing_rename)
    with pytest.raises(OSError, match="injected rename failure"):
        engine.save(str(target))
    monkeypatch.undo()
    assert verify_index(target) is not None
    assert load_index(target).instance is not None


def test_successful_resave_replaces_and_cleans_up(
    tmp_path, corpus_schema, corpus_text
) -> None:
    engine = FileQueryEngine(corpus_schema, corpus_text)
    target = tmp_path / "idx"
    engine.save(str(target))
    engine.save(str(target))  # replace in place
    assert verify_index(target) is not None
    leftovers = [p.name for p in tmp_path.iterdir() if p.name != "idx"]
    assert leftovers == []
