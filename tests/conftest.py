"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.index.config import IndexConfig
from repro.rig.graph import RegionInclusionGraph
from repro.workloads.bibtex import bibtex_schema, generate_bibtex
from repro.workloads.logs import generate_log, log_schema
from repro.workloads.sgml import generate_sgml, sgml_schema


@pytest.fixture(scope="session")
def paper_rig() -> RegionInclusionGraph:
    """The BibTeX RIG figure of Section 3.2."""
    return RegionInclusionGraph.from_adjacency(
        {
            "Reference": ["Key", "Title", "Authors", "Editors"],
            "Authors": ["Name"],
            "Editors": ["Name"],
            "Name": ["First_Name", "Last_Name"],
        }
    )


@pytest.fixture(scope="session")
def bibtex_text() -> str:
    return generate_bibtex(entries=30, seed=7, self_edited_rate=0.3)


@pytest.fixture(scope="session")
def bibtex_engine(bibtex_text: str) -> FileQueryEngine:
    return FileQueryEngine(bibtex_schema(), bibtex_text)


@pytest.fixture(scope="session")
def bibtex_partial_engine(bibtex_text: str) -> FileQueryEngine:
    """The paper's partial index Ip = {Reference, Key, Last_Name}."""
    config = IndexConfig.partial({"Reference", "Key", "Last_Name"})
    return FileQueryEngine(bibtex_schema(), bibtex_text, config)


@pytest.fixture(scope="session")
def log_engine() -> FileQueryEngine:
    return FileQueryEngine(log_schema(), generate_log(entries=120, seed=3))


@pytest.fixture(scope="session")
def sgml_engine() -> FileQueryEngine:
    return FileQueryEngine(sgml_schema(), generate_sgml(documents=6, depth=4, seed=1))
