"""Shared fixtures and a global per-test watchdog.

The watchdog exists for the scatter-gather suite: a deadlocked shard
pool would otherwise hang the whole run silently.  ``pytest-timeout`` is
not a dependency, so the hook below arms a SIGALRM per test on platforms
that have it (no-op elsewhere) and fails the test with a stack-friendly
error instead of wedging CI.  Override per test with
``@pytest.mark.timeout(seconds)``.
"""

from __future__ import annotations

import signal

import pytest

from repro.core.engine import FileQueryEngine
from repro.index.config import IndexConfig
from repro.rig.graph import RegionInclusionGraph
from repro.workloads.bibtex import bibtex_schema, generate_bibtex
from repro.workloads.logs import generate_log, log_schema
from repro.workloads.sgml import generate_sgml, sgml_schema


DEFAULT_TEST_TIMEOUT_S = 120


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock limit (SIGALRM watchdog)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item):
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return
    marker = item.get_closest_marker("timeout")
    limit = int(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT_S

    def on_alarm(signum, frame):  # pragma: no cover - only fires on a hang
        raise TimeoutError(
            f"test exceeded the {limit}s watchdog (deadlocked scatter-gather?)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(limit)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def paper_rig() -> RegionInclusionGraph:
    """The BibTeX RIG figure of Section 3.2."""
    return RegionInclusionGraph.from_adjacency(
        {
            "Reference": ["Key", "Title", "Authors", "Editors"],
            "Authors": ["Name"],
            "Editors": ["Name"],
            "Name": ["First_Name", "Last_Name"],
        }
    )


@pytest.fixture(scope="session")
def bibtex_text() -> str:
    return generate_bibtex(entries=30, seed=7, self_edited_rate=0.3)


@pytest.fixture(scope="session")
def bibtex_engine(bibtex_text: str) -> FileQueryEngine:
    return FileQueryEngine(bibtex_schema(), bibtex_text)


@pytest.fixture(scope="session")
def bibtex_partial_engine(bibtex_text: str) -> FileQueryEngine:
    """The paper's partial index Ip = {Reference, Key, Last_Name}."""
    config = IndexConfig.partial({"Reference", "Key", "Last_Name"})
    return FileQueryEngine(bibtex_schema(), bibtex_text, config)


@pytest.fixture(scope="session")
def log_engine() -> FileQueryEngine:
    return FileQueryEngine(log_schema(), generate_log(entries=120, seed=3))


@pytest.fixture(scope="session")
def sgml_engine() -> FileQueryEngine:
    return FileQueryEngine(sgml_schema(), generate_sgml(documents=6, depth=4, seed=1))
