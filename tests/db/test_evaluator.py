"""The naive in-database evaluator (the baseline)."""

import pytest

from repro.db.evaluator import NaiveEvaluator
from repro.db.model import Database
from repro.db.parser import parse_query
from repro.db.values import (
    AtomicValue,
    ObjectValue,
    SetValue,
    TupleValue,
    atom,
    canonical,
)


def make_reference(key, author_lasts, editor_lasts, year="1990"):
    def names(lasts):
        return SetValue(
            [
                TupleValue(
                    "Name",
                    {
                        "First_Name": AtomicValue("A.", "First_Name"),
                        "Last_Name": AtomicValue(last, "Last_Name"),
                    },
                )
                for last in lasts
            ]
        )

    return ObjectValue(
        "Reference",
        {
            "Key": AtomicValue(key, "Key"),
            "Year": AtomicValue(year, "Year"),
            "Authors": names(author_lasts),
            "Editors": names(editor_lasts),
        },
    )


@pytest.fixture()
def database() -> Database:
    db = Database()
    db.insert(make_reference("r1", ["Chang", "Corliss"], ["Griewank"]))
    db.insert(make_reference("r2", ["Milo"], ["Chang"], year="1994"))
    db.insert(make_reference("r3", ["Consens"], ["Consens", "Tompa"]))
    return db


def keys(rows):
    return {canonical(row[0].get("Key")) for row in rows}


class TestSelection:
    def test_existential_semantics(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
            )
        )
        assert keys(rows) == {"r1"}

    def test_and_or(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r FROM Reference r WHERE '
                'r.Authors.Name.Last_Name = "Milo" OR r.Year = "1990"'
            )
        )
        assert keys(rows) == {"r1", "r2", "r3"}
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r FROM Reference r WHERE '
                'r.Year = "1990" AND r.Authors.Name.Last_Name = "Consens"'
            )
        )
        assert keys(rows) == {"r3"}

    def test_not(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r FROM Reference r WHERE NOT r.Year = "1990"'
            )
        )
        assert keys(rows) == {"r2"}

    def test_not_equal_exists(self, database):
        evaluator = NaiveEvaluator(database)
        # <> is existential too: some author whose last name differs.
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name <> "Chang"'
            )
        )
        assert keys(rows) == {"r1", "r2", "r3"}

    def test_empty_result(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query('SELECT r FROM Reference r WHERE r.Key = "nope"')
        )
        assert rows == []


class TestStarVariables:
    def test_star_reaches_any_depth(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query('SELECT r FROM Reference r WHERE r.*X.Last_Name = "Chang"')
        )
        assert keys(rows) == {"r1", "r2"}

    def test_plain_variable_single_step(self, database):
        evaluator = NaiveEvaluator(database)
        # r.X.Name.Last_Name: X ranges over Authors/Editors.
        rows = evaluator.evaluate(
            parse_query('SELECT r FROM Reference r WHERE r.X.Name.Last_Name = "Chang"')
        )
        assert keys(rows) == {"r1", "r2"}

    def test_variable_consistency_across_conditions(self, database):
        evaluator = NaiveEvaluator(database)
        # Same X must be the same attribute in both conditions: some list
        # containing both Consens and Tompa — only r3's Editors.
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r FROM Reference r WHERE '
                'r.X.Name.Last_Name = "Consens" AND r.X.Name.Last_Name = "Tompa"'
            )
        )
        assert keys(rows) == {"r3"}

    def test_variable_consistency_rules_out(self, database):
        evaluator = NaiveEvaluator(database)
        # Chang and Corliss are both authors only in r1.
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r FROM Reference r WHERE '
                'r.X.Name.Last_Name = "Chang" AND r.X.Name.Last_Name = "Corliss"'
            )
        )
        assert keys(rows) == {"r1"}


class TestJoins:
    def test_path_comparison(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query(
                "SELECT r FROM Reference r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name"
            )
        )
        assert keys(rows) == {"r3"}

    def test_tuple_comparison(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query("SELECT r FROM Reference r WHERE r.Editors.Name = r.Authors.Name")
        )
        assert keys(rows) == {"r3"}


class TestOutputs:
    def test_projection_collects_all_values(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r.Authors.Name.Last_Name FROM Reference r WHERE r.Key = "r1"'
            )
        )
        assert {canonical(row[0]) for row in rows} == {"Chang", "Corliss"}

    def test_multi_output_cross_product(self, database):
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(
            parse_query('SELECT r.Key, r.Year FROM Reference r WHERE r.Key = "r2"')
        )
        assert [(canonical(a), canonical(b)) for a, b in rows] == [("r2", "1994")]

    def test_variable_output_respects_bindings(self, database):
        evaluator = NaiveEvaluator(database)
        # Output the last names reached by the same X that matched Chang.
        rows = evaluator.evaluate(
            parse_query(
                'SELECT r.X.Name.Last_Name FROM Reference r '
                'WHERE r.X.Name.Last_Name = "Griewank"'
            )
        )
        assert {canonical(row[0]) for row in rows} == {"Griewank"}


class TestReport:
    def test_work_is_tallied(self, database):
        evaluator = NaiveEvaluator(database)
        evaluator.evaluate(
            parse_query('SELECT r FROM Reference r WHERE r.Key = "r1"')
        )
        assert evaluator.report.objects_scanned == 3
        assert evaluator.report.comparisons >= 3
        assert evaluator.report.rows == 1
