"""The full-load baseline pipeline."""

from repro.db.loader import load_database
from repro.workloads.bibtex import bibtex_schema, generate_bibtex


class TestLoadDatabase:
    def test_loads_all_references(self):
        text = generate_bibtex(entries=12, seed=9)
        loaded = load_database(bibtex_schema(), text)
        assert len(loaded.database.extent("Reference")) == 12

    def test_report_costs(self):
        text = generate_bibtex(entries=12, seed=9)
        loaded = load_database(bibtex_schema(), text)
        # The baseline parses the whole file and builds every value.
        assert loaded.report.bytes_parsed >= len(text) - 10
        assert loaded.report.objects_loaded == 12
        assert loaded.report.values_built > 12 * 10

    def test_root_and_tree_exposed(self):
        text = generate_bibtex(entries=3, seed=9)
        loaded = load_database(bibtex_schema(), text)
        assert len(list(loaded.root)) == 3
        assert loaded.tree.symbol == "Ref_Set"
