"""The object database."""

import pytest

from repro.db.model import Database, database_from_values, iter_objects
from repro.db.values import ObjectValue, SetValue, TupleValue, atom
from repro.errors import DatabaseError


def sample_root() -> SetValue:
    return SetValue(
        [
            ObjectValue("Ref", {"Key": atom("a")}),
            ObjectValue(
                "Ref",
                {
                    "Key": atom("b"),
                    "Meta": TupleValue(
                        "Meta", {"Owner": ObjectValue("Person", {"N": atom("p")})}
                    ),
                },
            ),
        ]
    )


class TestDatabase:
    def test_load_value_walks_nested_objects(self):
        database = Database()
        loaded = database.load_value(sample_root())
        assert loaded == 3
        assert len(database.extent("Ref")) == 2
        assert len(database.extent("Person")) == 1
        assert database.classes == ("Person", "Ref")
        assert database.object_count == 3

    def test_insert_idempotent(self):
        database = Database()
        obj = ObjectValue("Ref", {})
        database.insert(obj)
        database.insert(obj)
        assert len(database.extent("Ref")) == 1

    def test_unknown_extent_empty(self):
        assert Database().extent("Nope") == ()

    def test_require_class(self):
        database = Database()
        with pytest.raises(DatabaseError):
            database.require_class("Ref")
        database.insert(ObjectValue("Ref", {}))
        assert len(database.require_class("Ref")) == 1

    def test_extent_preserves_insertion_order(self):
        database = Database()
        first = ObjectValue("Ref", {"Key": atom("1")})
        second = ObjectValue("Ref", {"Key": atom("2")})
        database.insert(first)
        database.insert(second)
        assert database.extent("Ref") == (first, second)


class TestIterObjects:
    def test_preorder(self):
        root = sample_root()
        classes = [obj.class_name for obj in iter_objects(root)]
        assert classes.count("Ref") == 2
        assert classes.count("Person") == 1

    def test_atomic_has_none(self):
        assert list(iter_objects(atom("x"))) == []


def test_database_from_values():
    database = database_from_values([sample_root()])
    assert database.object_count == 3
