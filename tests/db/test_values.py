"""The value model."""

import pytest

from repro.db.values import (
    AtomicValue,
    ListValue,
    ObjectValue,
    SetValue,
    TupleValue,
    atom,
    canonical,
    iter_children,
)
from repro.errors import DatabaseError


class TestAtomic:
    def test_str(self):
        assert str(atom("x")) == "x"

    def test_type_tag_ignored_by_canonical(self):
        assert canonical(AtomicValue("x", "Key")) == canonical(AtomicValue("x"))


class TestTuple:
    def test_get(self):
        name = TupleValue("Name", {"Last_Name": atom("Chang")})
        assert name.get("Last_Name") == atom("Chang")
        assert name.has("Last_Name")
        assert not name.has("First_Name")

    def test_get_missing_raises(self):
        name = TupleValue("Name", {})
        with pytest.raises(DatabaseError):
            name.get("Last_Name")

    def test_equality_by_content(self):
        a = TupleValue("Name", {"x": atom("1")})
        b = TupleValue("Name", {"x": atom("1")})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_type_name(self):
        assert TupleValue("A", {}) != TupleValue("B", {})


class TestSetAndList:
    def test_set_equality_ignores_order(self):
        a = SetValue([atom("1"), atom("2")])
        b = SetValue([atom("2"), atom("1")])
        assert a == b
        assert hash(a) == hash(b)

    def test_list_preserves_order(self):
        values = ListValue([atom("1"), atom("2")])
        assert [str(v) for v in values] == ["1", "2"]
        assert len(values) == 2

    def test_set_len_and_iter(self):
        values = SetValue([atom("1")])
        assert len(values) == 1
        assert list(values) == [atom("1")]


class TestObject:
    def test_identity_semantics(self):
        a = ObjectValue("Ref", {"Key": atom("k")})
        b = ObjectValue("Ref", {"Key": atom("k")})
        assert a != b
        assert a == a
        assert a.oid != b.oid

    def test_get_missing(self):
        obj = ObjectValue("Ref", {})
        with pytest.raises(DatabaseError):
            obj.get("Key")


class TestCanonical:
    def test_object_content_equality(self):
        a = ObjectValue("Ref", {"Key": atom("k")})
        b = ObjectValue("Ref", {"Key": atom("k")})
        assert canonical(a) == canonical(b)

    def test_nested_structures(self):
        value = SetValue(
            [TupleValue("Name", {"Last_Name": atom("Chang")})]
        )
        assert canonical(value) == frozenset(
            {("tuple", "Name", (("Last_Name", "Chang"),))}
        )

    def test_list_becomes_tuple(self):
        assert canonical(ListValue([atom("a")])) == ("a",)


class TestIterChildren:
    def test_tuple_children_named(self):
        value = TupleValue("Name", {"x": atom("1")})
        assert list(iter_children(value)) == [("x", atom("1"))]

    def test_set_children_unnamed(self):
        value = SetValue([atom("1")])
        assert list(iter_children(value)) == [(None, atom("1"))]

    def test_atomic_no_children(self):
        assert list(iter_children(atom("1"))) == []
