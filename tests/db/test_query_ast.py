"""Query AST invariants and helpers."""

import pytest

from repro.db.parser import parse_query
from repro.db.query import (
    And,
    Attr,
    Comparison,
    Or,
    PathExpr,
    Query,
    Source,
    TrueCondition,
    condition_range_variables,
    conjoin,
    split_conjuncts,
)
from repro.errors import QueryError


class TestQueryConstruction:
    def test_legacy_single_source_kwargs(self):
        query = Query(
            outputs=(PathExpr("r"),), source_class="Reference", var="r"
        )
        assert query.sources == (Source("Reference", "r"),)
        assert query.source_class == "Reference"
        assert query.var == "r"

    def test_needs_sources(self):
        with pytest.raises(QueryError):
            Query(outputs=(PathExpr("r"),))

    def test_no_outputs_rejected(self):
        with pytest.raises(QueryError):
            Query(outputs=(), source_class="R", var="r")

    def test_comparison_operator_validation(self):
        with pytest.raises(QueryError):
            Comparison(path=PathExpr("r", (Attr("A"),)), op="~=", literal="x")


class TestConjunctHelpers:
    def test_split_and_rebuild(self):
        query = parse_query(
            'SELECT r FROM R r WHERE r.A = "1" AND r.B = "2" AND r.C = "3"'
        )
        conjuncts = split_conjuncts(query.where)
        assert len(conjuncts) == 3
        rebuilt = conjoin(conjuncts)
        assert split_conjuncts(rebuilt) == conjuncts

    def test_or_is_one_conjunct(self):
        query = parse_query('SELECT r FROM R r WHERE r.A = "1" OR r.B = "2"')
        assert len(split_conjuncts(query.where)) == 1

    def test_true_condition_splits_to_nothing(self):
        assert split_conjuncts(TrueCondition()) == []
        assert isinstance(conjoin([]), TrueCondition)

    def test_condition_range_variables(self):
        query = parse_query(
            "SELECT r1 FROM R r1, R r2 WHERE r1.A = r2.B AND r1.C = \"x\""
        )
        assert isinstance(query.where, And)
        assert condition_range_variables(query.where) == {"r1", "r2"}
        left, right = split_conjuncts(query.where)
        assert condition_range_variables(right) == {"r1"}


class TestRendering:
    def test_condition_rendering_roundtrip(self):
        sources = [
            'SELECT r FROM R r WHERE (r.A = "1" OR r.B = "2") AND NOT r.C = "3"',
            'SELECT r FROM R r WHERE r.A <> "1"',
            "SELECT r FROM R r WHERE r.A = r.B",
            'SELECT r FROM R r WHERE r.K LIKE "Ch*"',
        ]
        for source in sources:
            query = parse_query(source)
            assert parse_query(query.render()) == query
