"""The XSQL-subset query parser."""

import pytest

from repro.db.parser import parse_query
from repro.db.query import (
    And,
    Attr,
    Comparison,
    Not,
    Or,
    PathComparison,
    PathExpr,
    Query,
    SeqVars,
    StarVar,
    TrueCondition,
)
from repro.errors import QueryError, QuerySyntaxError


class TestBasicQueries:
    def test_paper_query(self):
        query = parse_query(
            'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"'
        )
        assert query.source_class == "References"
        assert query.var == "r"
        assert query.is_identity_select()
        condition = query.where
        assert isinstance(condition, Comparison)
        assert condition.literal == "Chang"
        assert condition.path.steps == (
            Attr("Authors"),
            Attr("Name"),
            Attr("Last_Name"),
        )

    def test_no_where(self):
        query = parse_query("SELECT r FROM References r")
        assert isinstance(query.where, TrueCondition)

    def test_projection_output(self):
        query = parse_query(
            "SELECT r.Authors.Name.Last_Name FROM References r"
        )
        assert not query.is_identity_select()
        assert query.outputs[0].steps[-1] == Attr("Last_Name")

    def test_multiple_outputs(self):
        query = parse_query("SELECT r.Key, r.Year FROM References r")
        assert len(query.outputs) == 2

    def test_keywords_case_insensitive(self):
        query = parse_query("select r from References r where r.Key = \"x\"")
        assert query.source_class == "References"


class TestVariables:
    def test_star_variable(self):
        query = parse_query(
            'SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"'
        )
        assert query.where.path.steps == (StarVar("X"), Attr("Last_Name"))

    def test_plain_variables(self):
        query = parse_query(
            'SELECT r FROM References r WHERE r.X1.X2.Last_Name = "Chang"'
        )
        assert query.where.path.steps == (
            SeqVars("X1"),
            SeqVars("X2"),
            Attr("Last_Name"),
        )

    def test_attribute_names_are_not_variables(self):
        query = parse_query('SELECT r FROM References r WHERE r.Year = "1982"')
        assert query.where.path.steps == (Attr("Year"),)

    def test_variable_names(self):
        path = PathExpr("r", (StarVar("X"), Attr("A"), SeqVars("Y")))
        assert path.variable_names() == {"X", "Y"}
        assert path.has_variables()
        assert path.attribute_names() == ["A"]


class TestConditions:
    def test_and_or_precedence(self):
        query = parse_query(
            'SELECT r FROM R r WHERE r.A = "1" OR r.B = "2" AND r.C = "3"'
        )
        assert isinstance(query.where, Or)
        assert isinstance(query.where.right, And)

    def test_parentheses(self):
        query = parse_query(
            'SELECT r FROM R r WHERE (r.A = "1" OR r.B = "2") AND r.C = "3"'
        )
        assert isinstance(query.where, And)
        assert isinstance(query.where.left, Or)

    def test_not(self):
        query = parse_query('SELECT r FROM R r WHERE NOT r.A = "1"')
        assert isinstance(query.where, Not)

    def test_path_comparison(self):
        query = parse_query(
            "SELECT r FROM R r WHERE r.Editors.Name = r.Authors.Name"
        )
        assert isinstance(query.where, PathComparison)

    def test_not_equal(self):
        query = parse_query('SELECT r FROM R r WHERE r.A <> "1"')
        assert query.where.op == "<>"


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('SELECT r FROM R r WHERE r.A = "1" extra')

    def test_missing_from(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT r WHERE r.A = \"1\"")

    def test_bad_operator(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('SELECT r FROM R r WHERE r.A ( "1"')

    def test_wrong_range_variable(self):
        with pytest.raises(QueryError):
            parse_query('SELECT s FROM R r WHERE r.A = "1"')

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('SELECT r FROM R r WHERE r.A = "oops')


class TestRender:
    def test_roundtrip(self):
        source = 'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"'
        query = parse_query(source)
        assert parse_query(query.render()) == query

    def test_roundtrip_with_variables_and_join(self):
        source = (
            "SELECT r FROM References r "
            'WHERE r.*X.Last_Name = "Chang" AND r.Editors.Name = r.Authors.Name'
        )
        query = parse_query(source)
        assert parse_query(query.render()) == query
