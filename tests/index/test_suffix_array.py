"""The PAT-style sistring array."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RegionIndexError
from repro.index.suffix_array import SuffixArray


class TestFind:
    def test_word_prefix_positions(self):
        text = "Chang wrote; Chapman edited; Chang reviewed"
        array = SuffixArray(text)
        hits = array.find("Chang")
        assert len(hits) == 2
        for region in hits:
            assert text[region.start : region.end] == "Chang"

    def test_prefix_matches_longer_words(self):
        array = SuffixArray("Chang Chapman chart")
        assert array.count("Cha") == 2  # case-sensitive: not "chart"

    def test_phrase_search_across_words(self):
        # PAT sistrings extend past word boundaries: a phrase query works.
        text = "Taylor series; Taylor polynomial"
        array = SuffixArray(text)
        assert array.count("Taylor series") == 1
        assert array.count("Taylor poly") == 1
        assert array.count("Taylor") == 2

    def test_no_match(self):
        array = SuffixArray("alpha beta")
        assert array.count("gamma") == 0

    def test_empty_prefix_rejected(self):
        array = SuffixArray("alpha")
        with pytest.raises(RegionIndexError):
            array.find("")

    def test_overlong_prefix_rejected(self):
        array = SuffixArray("alpha", key_length=4)
        with pytest.raises(RegionIndexError):
            array.find("alpha")

    def test_bad_key_length(self):
        with pytest.raises(RegionIndexError):
            SuffixArray("alpha", key_length=0)

    def test_explicit_positions(self):
        text = "abcabc"
        array = SuffixArray(text, positions=[0, 3])
        assert array.count("abc") == 2
        assert len(array) == 2


@given(st.text(alphabet="ab ", min_size=1, max_size=40), st.text(alphabet="ab", min_size=1, max_size=4))
def test_find_matches_bruteforce(text, prefix):
    from repro.text.tokenizer import tokenize

    array = SuffixArray(text)
    starts = [token.start for token in tokenize(text)]
    expected = {start for start in starts if text.startswith(prefix, start)}
    assert {region.start for region in array.find(prefix)} == expected


class TestBinarySearchAgreesWithBruteForce:
    """Seeded-random agreement: two-binary-search find/count vs. a linear scan.

    Guards the O(log n + occurrences) rewrite of :meth:`SuffixArray.find`:
    on arbitrary texts the sliced ``_array[low:high]`` window must contain
    exactly the word starts a brute-force prefix check selects.
    """

    def _random_text(self, rng, words=200):
        vocabulary = ["ab", "abc", "abd", "ba", "bab", "a", "b", "cab", "abcd"]
        return " ".join(rng.choice(vocabulary) for _ in range(words))

    def test_find_and_count_match_linear_scan(self):
        import random

        from repro.text.tokenizer import tokenize

        rng = random.Random(42)
        prefixes = ["a", "b", "c", "ab", "ba", "abc", "abd", "bab", "cab", "abcd", "zz"]
        for _ in range(20):
            text = self._random_text(rng)
            array = SuffixArray(text)
            starts = [token.start for token in tokenize(text)]
            for prefix in prefixes:
                expected = sorted(s for s in starts if text.startswith(prefix, s))
                hits = array.find(prefix)
                assert sorted(r.start for r in hits) == expected, (text[:60], prefix)
                assert array.count(prefix) == len(expected), (text[:60], prefix)
                for region in hits:
                    assert region.end - region.start == len(prefix)
