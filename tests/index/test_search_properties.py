"""Property tests for the PAT search operations."""

from hypothesis import given, strategies as st

from repro.algebra.region import Region, RegionSet
from repro.index import search

spans = st.tuples(st.integers(0, 40), st.integers(1, 6)).map(
    lambda pair: Region(pair[0], pair[0] + pair[1])
)
span_sets = st.lists(spans, max_size=8).map(RegionSet)


@given(span_sets, span_sets, st.integers(0, 20))
def test_followed_by_matches_bruteforce(first, second, max_gap):
    expected = RegionSet(
        Region(left.start, right.end)
        for left in first
        for right in second
        if 0 <= right.start - left.end <= max_gap
    )
    assert search.followed_by(first, second, max_gap) == expected


@given(span_sets, span_sets, st.integers(0, 20))
def test_proximity_is_symmetric(first, second, max_gap):
    assert search.proximity(first, second, max_gap) == search.proximity(
        second, first, max_gap
    )


@given(span_sets, st.integers(0, 40), st.integers(0, 40))
def test_within_window_matches_bruteforce(occurrences, a, b):
    start, end = min(a, b), max(a, b)
    expected = RegionSet(
        region
        for region in occurrences
        if start <= region.start and region.end <= end
    )
    assert search.within_window(occurrences, start, end) == expected


@given(span_sets, span_sets)
def test_contextual_matches_bruteforce(occurrences, contexts):
    expected = RegionSet(
        occurrence
        for occurrence in occurrences
        if any(context.includes(occurrence) for context in contexts)
    )
    assert search.contextual(occurrences, contexts) == expected


@given(span_sets, span_sets)
def test_frequency_consistency(regions, occurrences):
    counts = search.frequency_in(regions, occurrences)
    for region, count in counts.items():
        assert count == sum(
            1 for occurrence in occurrences if region.includes(occurrence)
        )
    # select_by_frequency(k) is exactly the regions with count >= k.
    for min_count in (1, 2):
        selected = search.select_by_frequency(regions, occurrences, min_count)
        expected = RegionSet(
            region for region, count in counts.items() if count >= min_count
        )
        assert selected == expected


@given(span_sets, span_sets, st.integers(0, 20))
def test_followed_by_spans_cover_both_words(first, second, max_gap):
    for span in search.followed_by(first, second, max_gap):
        assert any(span.start == left.start for left in first)
        assert any(span.end == right.end for right in second)
