"""Index construction from parse trees."""

import pytest

from repro.errors import IndexConfigError
from repro.index.builder import build_engine, build_instance, collect_spans
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

TEXT = generate_bibtex(entries=5, seed=2)
SCHEMA = bibtex_schema()
TREE = SCHEMA.parse(TEXT)
ROOT = SCHEMA.grammar.start


class TestCollectSpans:
    def test_every_nonterminal_collected(self):
        spans = collect_spans(TREE)
        assert len(spans["Reference"]) == 5
        assert "Last_Name" in spans
        assert ROOT in spans  # the root span is collected, filtering is later

    def test_spans_are_real_text(self):
        spans = collect_spans(TREE)
        for start, end in spans["Key"]:
            assert TEXT[start:end].strip()


class TestBuildInstance:
    def test_full_excludes_root(self):
        instance = build_instance(TREE, IndexConfig.full(), ROOT)
        assert ROOT not in instance
        assert "Reference" in instance

    def test_partial_only_requested(self):
        config = IndexConfig.partial({"Reference", "Key"})
        instance = build_instance(TREE, config, ROOT)
        assert set(instance.names) == {"Reference", "Key"}

    def test_unknown_partial_name_rejected(self):
        config = IndexConfig.partial({"Bogus"})
        with pytest.raises(IndexConfigError):
            build_instance(TREE, config, ROOT)

    def test_scoped_index(self):
        config = IndexConfig.partial({"Reference"}).with_scoped(
            "Last_Name", "Authors"
        )
        instance = build_instance(TREE, config, ROOT)
        scoped = instance.get("Last_Name@Authors")
        full_instance = build_instance(TREE, IndexConfig.full(), ROOT)
        all_last_names = full_instance.get("Last_Name")
        authors = full_instance.get("Authors")
        assert 0 < len(scoped) < len(all_last_names)
        for region in scoped:
            assert authors.any_including(region)

    def test_scoped_index_custom_name(self):
        config = IndexConfig.partial({"Reference"}).with_scoped(
            "Last_Name", "Authors", name="AuthorSurnames"
        )
        instance = build_instance(TREE, config, ROOT)
        assert "AuthorSurnames" in instance


class TestBuildEngine:
    def test_word_index_built_by_default(self):
        engine = build_engine(TEXT, TREE, root=ROOT)
        assert engine.word_index is not None
        assert engine.word_index.posting_count > 0
        assert engine.suffix_array is None

    def test_word_index_disabled(self):
        engine = build_engine(TEXT, TREE, IndexConfig.full(word_index=False), root=ROOT)
        assert engine.word_index is None

    def test_word_scope(self):
        config = IndexConfig.full(word_scope="Authors")
        engine = build_engine(TEXT, TREE, config, root=ROOT)
        unscoped = build_engine(TEXT, TREE, root=ROOT)
        assert engine.word_index.posting_count < unscoped.word_index.posting_count

    def test_suffix_array_option(self):
        engine = build_engine(TEXT, TREE, IndexConfig.full(suffix_array=True), root=ROOT)
        assert engine.suffix_array is not None
        assert len(engine.suffix_array) > 0

    def test_statistics(self):
        engine = build_engine(TEXT, TREE, root=ROOT)
        stats = engine.statistics()
        assert stats.text_bytes == len(TEXT)
        assert stats.total_region_entries > 0
        assert stats.word_postings > 0
        assert stats.estimated_bytes > 0
        assert "region entries" in stats.summary()

    def test_partial_index_is_smaller(self):
        full = build_engine(TEXT, TREE, root=ROOT).statistics()
        partial = build_engine(
            TEXT, TREE, IndexConfig.partial({"Reference", "Last_Name"}), root=ROOT
        ).statistics()
        assert partial.total_region_entries < full.total_region_entries
        assert partial.estimated_bytes < full.estimated_bytes
