"""The inverted word index."""

from repro.algebra.region import Region, RegionSet
from repro.index.word_index import WordIndex

TEXT = 'AUTHOR = "G. Corliss and Y. Chang" KEYWORDS = "Taylor series; Chang"'


class TestOccurrences:
    def test_positions(self):
        index = WordIndex(TEXT)
        chang = index.occurrences("Chang")
        assert len(chang) == 2
        for region in chang:
            assert TEXT[region.start : region.end] == "Chang"

    def test_missing_word(self):
        index = WordIndex(TEXT)
        assert index.occurrences("absent") == RegionSet.empty()

    def test_case_sensitivity_default(self):
        index = WordIndex(TEXT)
        assert len(index.occurrences("chang")) == 0

    def test_lowercase_folding(self):
        index = WordIndex(TEXT, lowercase=True)
        assert len(index.occurrences("chang")) == 2
        assert len(index.occurrences("CHANG")) == 2

    def test_frequency_and_contains(self):
        index = WordIndex(TEXT)
        assert index.frequency("Chang") == 2
        assert index.frequency("nope") == 0
        assert "Chang" in index
        assert "nope" not in index


class TestTokenCounting:
    def test_token_count_between(self):
        index = WordIndex("alpha beta gamma")
        assert index.token_count_between(0, 16) == 3
        assert index.token_count_between(0, 5) == 1
        assert index.token_count_between(0, 4) == 0  # "alph" cut short
        assert index.token_count_between(6, 10) == 1

    def test_exact_selection_support(self):
        # A Last_Name region is "the word Chang" iff it holds exactly one
        # token and that token is Chang.
        index = WordIndex('"Chang" "Chang Corliss"')
        single = Region(1, 6)
        double = Region(9, 22)
        assert index.token_count_between(single.start, single.end) == 1
        assert index.token_count_between(double.start, double.end) == 2


class TestScope:
    def test_selective_word_indexing(self):
        # Section 7: index only the words inside chosen regions.
        scope = RegionSet.of((0, 34))  # the AUTHOR field only
        index = WordIndex(TEXT, scope=scope)
        assert index.frequency("Chang") == 1
        assert index.frequency("Taylor") == 0

    def test_scope_reduces_postings(self):
        full = WordIndex(TEXT)
        scoped = WordIndex(TEXT, scope=RegionSet.of((0, 34)))
        assert scoped.posting_count < full.posting_count


class TestVocabulary:
    def test_sorted_vocabulary(self):
        index = WordIndex("beta alpha beta")
        assert index.vocabulary == ("alpha", "beta")
        assert index.vocabulary_size == 2
        assert index.posting_count == 3

    def test_prefix_search(self):
        index = WordIndex("Chang Chapman Corliss chart")
        assert list(index.words_with_prefix("Cha")) == ["Chang", "Chapman"]
        occurrences = index.occurrences_with_prefix("Cha")
        assert len(occurrences) == 2

    def test_prefix_search_no_match(self):
        index = WordIndex("alpha")
        assert list(index.words_with_prefix("z")) == []
