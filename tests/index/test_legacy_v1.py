"""Legacy (format version 1) saved indexes: directories from before
manifests existed must still load — unverified — and upgrade to v2 on the
next save."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.engine import FileQueryEngine
from repro.index.persist import load_index, load_manifest, verify_index
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


@pytest.fixture(scope="module")
def schema():
    return bibtex_schema()


@pytest.fixture(scope="module")
def text() -> str:
    return generate_bibtex(entries=25, seed=11)


@pytest.fixture
def v1_index(tmp_path, schema, text) -> Path:
    """A v2 save downgraded to the exact v1 on-disk shape: no
    manifest.json, config version 1, no schema fingerprint."""
    directory = tmp_path / "idx"
    engine = FileQueryEngine(schema, text)
    engine.save(str(directory))
    (directory / "manifest.json").unlink()
    config_path = directory / "config.json"
    config = json.loads(config_path.read_text(encoding="utf-8"))
    config["version"] = 1
    config.pop("schema_fingerprint", None)
    config_path.write_text(json.dumps(config, indent=2), encoding="utf-8")
    return directory


def test_v1_round_trips_through_load_index(v1_index, text) -> None:
    index = load_index(v1_index)
    assert index.text == text
    assert len(index.instance.names) > 0


def test_v1_loads_unverified(v1_index) -> None:
    # No manifest -> nothing to verify: verify_index reports "legacy" by
    # returning None instead of raising.
    assert verify_index(v1_index) is None
    assert load_manifest(v1_index) is None


def test_v1_engine_answers_like_a_fresh_build(v1_index, schema, text) -> None:
    fresh_rows = FileQueryEngine(schema, text).query(QUERY).canonical_rows()
    loaded = FileQueryEngine.from_saved(schema, str(v1_index))
    result = loaded.query(QUERY)
    assert result.canonical_rows() == fresh_rows
    # A legacy load still answers, but flags that nothing could be
    # checksum-verified — the one durability promise a v1 layout cannot make.
    codes = [warning.code for warning in result.warnings]
    assert codes == ["unverified-legacy-index"]


def test_v1_survives_strict_policy(v1_index, schema) -> None:
    from repro.resilience import DegradationPolicy

    # Strict mode raises on *detected* corruption/staleness; a legacy index
    # is merely unverifiable and must still load.
    engine = FileQueryEngine.from_saved(
        schema, str(v1_index), policy=DegradationPolicy.strict()
    )
    assert len(engine.query(QUERY).rows) > 0


def test_next_save_upgrades_v1_to_v2(v1_index, schema, text) -> None:
    engine = FileQueryEngine.from_saved(schema, str(v1_index))
    engine.save(str(v1_index))  # re-save in place: the upgrade path
    manifest = load_manifest(v1_index)
    assert manifest is not None
    assert manifest["format_version"] == 2
    assert set(manifest["checksums"]) == {
        "corpus.txt",
        "regions.json",
        "config.json",
    }
    assert verify_index(v1_index) == manifest
    config = json.loads((v1_index / "config.json").read_text(encoding="utf-8"))
    assert config["version"] == 2
    reloaded = FileQueryEngine.from_saved(schema, str(v1_index))
    assert reloaded.query(QUERY).canonical_rows() == engine.query(QUERY).canonical_rows()
