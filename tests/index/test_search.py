"""PAT-style proximity / position / contextual / frequency search."""

import pytest

from repro.algebra.region import Region, RegionSet
from repro.index import search
from repro.index.word_index import WordIndex

TEXT = "Taylor series converge; the Taylor polynomial diverges; series end"


@pytest.fixture()
def words() -> WordIndex:
    return WordIndex(TEXT)


class TestFollowedBy:
    def test_adjacent_words(self, words):
        spans = search.followed_by(
            words.occurrences("Taylor"), words.occurrences("series"), max_gap=1
        )
        assert len(spans) == 1
        span = next(iter(spans))
        assert TEXT[span.start : span.end] == "Taylor series"

    def test_gap_limit(self, words):
        none = search.followed_by(
            words.occurrences("Taylor"), words.occurrences("end"), max_gap=5
        )
        assert none == RegionSet.empty()
        far = search.followed_by(
            words.occurrences("Taylor"), words.occurrences("end"), max_gap=60
        )
        assert len(far) >= 1

    def test_order_matters(self, words):
        spans = search.followed_by(
            words.occurrences("series"), words.occurrences("Taylor"), max_gap=1
        )
        assert spans == RegionSet.empty()

    def test_negative_gap_rejected(self, words):
        with pytest.raises(ValueError):
            search.followed_by(RegionSet.empty(), RegionSet.empty(), max_gap=-1)


class TestProximity:
    def test_either_order(self, words):
        spans = search.proximity(
            words.occurrences("series"), words.occurrences("Taylor"), max_gap=1
        )
        assert len(spans) == 1

    def test_symmetric(self, words):
        a = search.proximity(
            words.occurrences("Taylor"), words.occurrences("converge"), max_gap=10
        )
        b = search.proximity(
            words.occurrences("converge"), words.occurrences("Taylor"), max_gap=10
        )
        assert a == b


class TestWindowAndContext:
    def test_within_window(self, words):
        first_half = search.within_window(words.occurrences("Taylor"), 0, 30)
        assert len(first_half) == 1
        everything = search.within_window(words.occurrences("Taylor"), 0, len(TEXT))
        assert len(everything) == 2

    def test_contextual(self, words):
        contexts = RegionSet.of((0, 23))  # first clause
        inside = search.contextual(words.occurrences("series"), contexts)
        assert len(inside) == 1


class TestFrequency:
    def test_frequency_in(self, words):
        regions = RegionSet.of((0, 23), (24, 55), (56, 67))
        counts = search.frequency_in(regions, words.occurrences("series"))
        assert counts == {Region(0, 23): 1, Region(56, 67): 1}

    def test_select_by_frequency(self, words):
        regions = RegionSet.of((0, len(TEXT)), (0, 23))
        twice = search.select_by_frequency(
            regions, words.occurrences("Taylor"), min_count=2
        )
        assert twice == RegionSet.of((0, len(TEXT)))

    def test_min_count_validation(self, words):
        with pytest.raises(ValueError):
            search.select_by_frequency(RegionSet.empty(), RegionSet.empty(), 0)


class TestEngineConveniences:
    def test_phrase(self, bibtex_engine):
        spans = bibtex_engine.index.phrase("Taylor", "series", max_gap=2)
        for span in spans:
            assert bibtex_engine.index.region_text(span) == "Taylor series"
        assert spans

    def test_phrase_needs_words(self, bibtex_engine):
        from repro.errors import RegionIndexError

        with pytest.raises(RegionIndexError):
            bibtex_engine.index.phrase()

    def test_near(self, bibtex_engine):
        spans = bibtex_engine.index.near("AUTHOR", "TITLE", max_gap=100)
        assert spans

    def test_regions_with_frequency(self, bibtex_engine):
        # References mentioning "Taylor" at least twice (title + keywords
        # or abstract).
        at_least_once = bibtex_engine.index.regions_with_frequency(
            "Reference", "Taylor", 1
        )
        at_least_twice = bibtex_engine.index.regions_with_frequency(
            "Reference", "Taylor", 2
        )
        assert set(at_least_twice) <= set(at_least_once)
