"""Index persistence."""

import pytest

from repro.core.engine import FileQueryEngine
from repro.errors import RegionIndexError
from repro.index.config import IndexConfig
from repro.index.persist import (
    load_index,
    load_schema_fingerprint,
    save_index,
    schema_fingerprint,
)
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema, generate_bibtex
from repro.workloads.logs import log_schema


@pytest.fixture(scope="module")
def built_engine():
    return FileQueryEngine(
        bibtex_schema(), generate_bibtex(entries=15, seed=8)
    )


class TestRoundtrip:
    def test_save_and_load_index(self, built_engine, tmp_path):
        save_index(built_engine.index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.text == built_engine.index.text
        assert set(loaded.instance.names) == set(built_engine.index.instance.names)
        for name in loaded.instance.names:
            assert loaded.instance.get(name) == built_engine.index.instance.get(name)

    def test_word_index_rebuilt(self, built_engine, tmp_path):
        save_index(built_engine.index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.word_index is not None
        assert (
            loaded.word_index.posting_count
            == built_engine.index.word_index.posting_count
        )

    def test_engine_from_saved_answers_identically(self, built_engine, tmp_path):
        built_engine.save(str(tmp_path / "idx"))
        restored = FileQueryEngine.from_saved(bibtex_schema(), str(tmp_path / "idx"))
        original = built_engine.query(CHANG_AUTHOR_QUERY)
        reloaded = restored.query(CHANG_AUTHOR_QUERY)
        assert original.canonical_rows() == reloaded.canonical_rows()
        assert original.stats.strategy == reloaded.stats.strategy

    def test_partial_config_survives(self, tmp_path):
        config = IndexConfig.partial({"Reference", "Key"}).with_scoped(
            "Last_Name", "Authors"
        )
        engine = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=1), config
        )
        engine.save(str(tmp_path / "idx"))
        restored = FileQueryEngine.from_saved(bibtex_schema(), str(tmp_path / "idx"))
        assert restored.config.region_names == frozenset({"Reference", "Key"})
        assert restored.config.scoped[0].name == "Last_Name@Authors"
        assert "Last_Name@Authors" in restored.index.instance.names

    def test_word_scope_survives(self, tmp_path):
        config = IndexConfig.full(word_scope="Authors")
        engine = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=1), config
        )
        engine.save(str(tmp_path / "idx"))
        restored = load_index(tmp_path / "idx")
        assert (
            restored.word_index.posting_count
            == engine.index.word_index.posting_count
        )


class TestSchemaFingerprint:
    def test_fingerprint_round_trips(self, built_engine, tmp_path):
        built_engine.save(str(tmp_path / "idx"))
        saved = load_schema_fingerprint(tmp_path / "idx")
        assert saved == schema_fingerprint(bibtex_schema())
        restored = FileQueryEngine.from_saved(bibtex_schema(), str(tmp_path / "idx"))
        assert restored.query(CHANG_AUTHOR_QUERY).canonical_rows() == (
            built_engine.query(CHANG_AUTHOR_QUERY).canonical_rows()
        )

    def test_mismatched_schema_rejected(self, built_engine, tmp_path):
        built_engine.save(str(tmp_path / "idx"))
        with pytest.raises(RegionIndexError, match="different structuring schema"):
            FileQueryEngine.from_saved(log_schema(), str(tmp_path / "idx"))

    def test_legacy_save_without_fingerprint_loads(self, built_engine, tmp_path):
        # Directories written before fingerprints existed carry no key:
        # they load without a check rather than failing.
        save_index(built_engine.index, tmp_path / "idx")
        assert load_schema_fingerprint(tmp_path / "idx") is None
        restored = FileQueryEngine.from_saved(log_schema(), str(tmp_path / "idx"))
        assert restored.index.text == built_engine.index.text

    def test_fingerprint_is_stable_and_schema_sensitive(self):
        assert schema_fingerprint(bibtex_schema()) == schema_fingerprint(bibtex_schema())
        assert schema_fingerprint(bibtex_schema()) != schema_fingerprint(log_schema())


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(RegionIndexError):
            load_index(tmp_path / "nope")

    def test_version_check(self, built_engine, tmp_path):
        import json

        save_index(built_engine.index, tmp_path / "idx")
        config_path = tmp_path / "idx" / "config.json"
        data = json.loads(config_path.read_text())
        data["version"] = 99
        config_path.write_text(json.dumps(data))
        with pytest.raises(RegionIndexError):
            load_index(tmp_path / "idx")
