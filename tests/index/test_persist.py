"""Index persistence."""

import pytest

from repro.core.engine import FileQueryEngine
from repro.errors import RegionIndexError
from repro.index.config import IndexConfig
from repro.index.persist import (
    load_index,
    load_schema_fingerprint,
    save_index,
    schema_fingerprint,
)
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema, generate_bibtex
from repro.workloads.logs import log_schema


@pytest.fixture(scope="module")
def built_engine():
    return FileQueryEngine(
        bibtex_schema(), generate_bibtex(entries=15, seed=8)
    )


class TestRoundtrip:
    def test_save_and_load_index(self, built_engine, tmp_path):
        save_index(built_engine.index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.text == built_engine.index.text
        assert set(loaded.instance.names) == set(built_engine.index.instance.names)
        for name in loaded.instance.names:
            assert loaded.instance.get(name) == built_engine.index.instance.get(name)

    def test_word_index_rebuilt(self, built_engine, tmp_path):
        save_index(built_engine.index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.word_index is not None
        assert (
            loaded.word_index.posting_count
            == built_engine.index.word_index.posting_count
        )

    def test_engine_from_saved_answers_identically(self, built_engine, tmp_path):
        built_engine.save(str(tmp_path / "idx"))
        restored = FileQueryEngine.from_saved(bibtex_schema(), str(tmp_path / "idx"))
        original = built_engine.query(CHANG_AUTHOR_QUERY)
        reloaded = restored.query(CHANG_AUTHOR_QUERY)
        assert original.canonical_rows() == reloaded.canonical_rows()
        assert original.stats.strategy == reloaded.stats.strategy

    def test_partial_config_survives(self, tmp_path):
        config = IndexConfig.partial({"Reference", "Key"}).with_scoped(
            "Last_Name", "Authors"
        )
        engine = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=1), config
        )
        engine.save(str(tmp_path / "idx"))
        restored = FileQueryEngine.from_saved(bibtex_schema(), str(tmp_path / "idx"))
        assert restored.config.region_names == frozenset({"Reference", "Key"})
        assert restored.config.scoped[0].name == "Last_Name@Authors"
        assert "Last_Name@Authors" in restored.index.instance.names

    def test_word_scope_survives(self, tmp_path):
        config = IndexConfig.full(word_scope="Authors")
        engine = FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=1), config
        )
        engine.save(str(tmp_path / "idx"))
        restored = load_index(tmp_path / "idx")
        assert (
            restored.word_index.posting_count
            == engine.index.word_index.posting_count
        )


class TestSchemaFingerprint:
    def test_fingerprint_round_trips(self, built_engine, tmp_path):
        built_engine.save(str(tmp_path / "idx"))
        saved = load_schema_fingerprint(tmp_path / "idx")
        assert saved == schema_fingerprint(bibtex_schema())
        restored = FileQueryEngine.from_saved(bibtex_schema(), str(tmp_path / "idx"))
        assert restored.query(CHANG_AUTHOR_QUERY).canonical_rows() == (
            built_engine.query(CHANG_AUTHOR_QUERY).canonical_rows()
        )

    def test_mismatched_schema_rejected(self, built_engine, tmp_path):
        built_engine.save(str(tmp_path / "idx"))
        with pytest.raises(RegionIndexError, match="different structuring schema"):
            FileQueryEngine.from_saved(log_schema(), str(tmp_path / "idx"))

    def test_legacy_save_without_fingerprint_loads(self, built_engine, tmp_path):
        # Directories written before fingerprints existed carry no key:
        # they load without a check rather than failing.
        save_index(built_engine.index, tmp_path / "idx")
        assert load_schema_fingerprint(tmp_path / "idx") is None
        restored = FileQueryEngine.from_saved(log_schema(), str(tmp_path / "idx"))
        assert restored.index.text == built_engine.index.text

    def test_fingerprint_is_stable_and_schema_sensitive(self):
        assert schema_fingerprint(bibtex_schema()) == schema_fingerprint(bibtex_schema())
        assert schema_fingerprint(bibtex_schema()) != schema_fingerprint(log_schema())


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(RegionIndexError):
            load_index(tmp_path / "nope")

    def test_version_check(self, built_engine, tmp_path):
        import json

        save_index(built_engine.index, tmp_path / "idx")
        config_path = tmp_path / "idx" / "config.json"
        data = json.loads(config_path.read_text())
        data["version"] = 99
        config_path.write_text(json.dumps(data))
        with pytest.raises(RegionIndexError):
            load_index(tmp_path / "idx")


class TestStagingSweep:
    def test_orphaned_staging_dirs_are_swept_on_save(self, built_engine, tmp_path):
        from repro.index.persist import sweep_stale_staging

        target = tmp_path / "idx"
        save_index(built_engine.index, target)
        # A crashed save leaves a staging sibling; a crashed swap leaves a
        # retired one.  Both are garbage once the target is in place.
        staging = tmp_path / f".{target.name}.saving-12345"
        retired = tmp_path / f".{target.name}.retired-12345"
        for orphan in (staging, retired):
            orphan.mkdir()
            (orphan / "corpus.txt").write_text("half-written", encoding="utf-8")
        save_index(built_engine.index, target)
        assert not staging.exists()
        assert not retired.exists()
        assert sweep_stale_staging(target) == []

    def test_sweep_reports_what_it_removed(self, built_engine, tmp_path):
        from repro.index.persist import sweep_stale_staging

        target = tmp_path / "idx"
        save_index(built_engine.index, target)
        orphan = tmp_path / f".{target.name}.saving-999"
        orphan.mkdir()
        removed = sweep_stale_staging(target)
        assert removed == [str(orphan)]

    def test_from_saved_warns_about_swept_staging(self, built_engine, tmp_path):
        target = tmp_path / "idx"
        built_engine.save(str(target))
        orphan = tmp_path / f".{target.name}.saving-42"
        orphan.mkdir()
        restored = FileQueryEngine.from_saved(bibtex_schema(), str(target))
        result = restored.query(CHANG_AUTHOR_QUERY)
        codes = [warning.code for warning in result.warnings]
        assert codes == ["stale-staging-removed"]
        assert not orphan.exists()
        # The warning is a load-time fact; it repeats on every query of
        # this engine but not after a clean reopen.
        fresh = FileQueryEngine.from_saved(bibtex_schema(), str(target))
        assert fresh.query(CHANG_AUTHOR_QUERY).warnings == []


class TestLiveManifest:
    def test_live_checkpoint_rides_the_manifest(self, built_engine, tmp_path):
        from repro.index.persist import applied_seq, load_live_state, verify_index

        target = tmp_path / "idx"
        save_index(built_engine.index, target, live={"applied_seq": 17})
        assert load_live_state(target) == {"applied_seq": 17}
        assert applied_seq(target) == 17
        # v3 manifests still checksum-verify and reload.
        assert verify_index(target) is not None
        assert load_index(target).text == built_engine.index.text

    def test_plain_saves_stay_format_version_2(self, built_engine, tmp_path):
        import json

        from repro.index.persist import load_live_state, load_manifest

        target = tmp_path / "idx"
        save_index(built_engine.index, target)
        assert load_manifest(target)["format_version"] == 2
        config = json.loads((target / "config.json").read_text(encoding="utf-8"))
        assert config["version"] == 2
        assert load_live_state(target) is None

    def test_live_save_bumps_to_version_3(self, built_engine, tmp_path):
        from repro.index.persist import load_manifest

        target = tmp_path / "idx"
        save_index(built_engine.index, target, live={"applied_seq": 1})
        assert load_manifest(target)["format_version"] == 3
