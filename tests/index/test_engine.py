"""The index-engine facade."""

import pytest

from repro.algebra.region import Region
from repro.errors import RegionIndexError, UnknownRegionNameError
from repro.index.builder import build_engine
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

TEXT = generate_bibtex(entries=8, seed=4)
SCHEMA = bibtex_schema()
TREE = SCHEMA.parse(TEXT)


@pytest.fixture(scope="module")
def engine():
    return build_engine(TEXT, TREE, root=SCHEMA.grammar.start)


class TestEvaluate:
    def test_string_expression(self, engine):
        references = engine.evaluate("Reference")
        assert len(references) == 8

    def test_ast_expression(self, engine):
        from repro.algebra.ast import including, name

        result = engine.evaluate(including(name("Reference"), name("Authors")))
        assert len(result) == 8

    def test_unknown_name_raises(self, engine):
        with pytest.raises(UnknownRegionNameError):
            engine.evaluate("Bogus")

    def test_run_collects_counters(self, engine):
        stats = engine.run("Reference > Authors")
        assert stats.counters.operations["⊃"] == 1
        assert len(stats.result) == 8

    def test_selection_via_word_index(self, engine):
        result = engine.evaluate("sigma[Chang](Last_Name)")
        for region in result:
            assert engine.region_text(region) == "Chang"


class TestWordLookupProtocol:
    def test_occurrences(self, engine):
        assert len(engine.occurrences("AUTHOR")) == 8

    def test_token_count(self, engine):
        assert engine.token_count_between(0, len(TEXT)) > 0

    def test_without_word_index(self):
        engine = build_engine(
            TEXT, TREE, IndexConfig.full(word_index=False), root=SCHEMA.grammar.start
        )
        with pytest.raises(RegionIndexError):
            engine.occurrences("Chang")
        with pytest.raises(RegionIndexError):
            engine.token_count_between(0, 5)


class TestAccess:
    def test_region_text(self, engine):
        region = next(iter(engine.instance.get("Key")))
        assert engine.region_text(region) == TEXT[region.start : region.end]

    def test_region_names(self, engine):
        names = engine.region_names()
        assert "Reference" in names
        assert SCHEMA.grammar.start not in names
