"""The top-level public API surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_workflow(self):
        from repro.workloads.bibtex import bibtex_schema, generate_bibtex

        engine = repro.FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=0)
        )
        result = engine.query("SELECT r FROM Reference r")
        assert isinstance(result, repro.QueryResult)
        assert len(result) == 5

    def test_expression_api(self):
        expression = repro.parse_expression("A > sigma[w](B)")
        graph = repro.RegionInclusionGraph.from_adjacency({"A": ["B"]})
        assert repro.optimize(expression, graph) == expression
        assert not repro.is_trivially_empty(expression, graph)

    def test_errors_hierarchy(self):
        from repro import errors

        subclasses = [
            errors.RegionError,
            errors.AlgebraError,
            errors.UnknownRegionNameError,
            errors.RigError,
            errors.GrammarError,
            errors.ParseError,
            errors.QueryError,
            errors.QuerySyntaxError,
            errors.TranslationError,
            errors.PlanningError,
            errors.DatabaseError,
            errors.IndexError_,
            errors.IndexConfigError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, errors.ReproError)

    def test_error_details(self):
        from repro import errors

        name_error = errors.UnknownRegionNameError("X", ("A", "B"))
        assert "X" in str(name_error)
        assert "A" in str(name_error)
        parse_error = errors.ParseError("bad", position=7, symbol="Entry")
        assert parse_error.position == 7
        assert "Entry" in str(parse_error)
        syntax_error = errors.QuerySyntaxError("oops", position=3)
        assert syntax_error.position == 3
