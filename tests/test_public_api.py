"""The top-level public API surface."""

import warnings

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.6.0"

    def test_shard_exports(self):
        from repro import shard

        assert repro.ShardedEngine is shard.ShardedEngine
        assert repro.ShardedQueryResult is shard.ShardedQueryResult
        assert repro.ShardedStats is shard.ShardedStats
        assert repro.split_corpus is shard.split_corpus
        assert issubclass(repro.ShardFailedError, repro.ShardError)
        assert issubclass(repro.ShardError, repro.ReproError)

    def test_resilience_exports(self):
        from repro import resilience

        assert repro.RetryPolicy is resilience.RetryPolicy
        assert repro.call_with_retry is resilience.call_with_retry
        assert repro.CircuitBreaker is resilience.CircuitBreaker
        assert repro.BreakerConfig is resilience.BreakerConfig

    def test_feedback_exports(self):
        from repro import feedback

        assert repro.FeedbackConfig is feedback.FeedbackConfig
        assert repro.FeedbackHistory is feedback.FeedbackHistory
        assert repro.CalibratedCostModel is feedback.CalibratedCostModel
        assert repro.ReplanTriggered is feedback.ReplanTriggered
        assert issubclass(repro.CalibrationCorruptError, repro.FeedbackError)
        assert issubclass(repro.FeedbackError, repro.ReproError)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_workflow(self):
        from repro.workloads.bibtex import bibtex_schema, generate_bibtex

        engine = repro.FileQueryEngine(
            bibtex_schema(), generate_bibtex(entries=5, seed=0)
        )
        result = engine.query("SELECT r FROM Reference r")
        assert isinstance(result, repro.QueryResult)
        assert len(result) == 5

    def test_expression_api(self):
        expression = repro.parse_expression("A > sigma[w](B)")
        graph = repro.RegionInclusionGraph.from_adjacency({"A": ["B"]})
        assert repro.optimize(expression, graph) == expression
        assert not repro.is_trivially_empty(expression, graph)

    def test_errors_hierarchy(self):
        from repro import errors

        subclasses = [
            errors.RegionError,
            errors.AlgebraError,
            errors.UnknownRegionNameError,
            errors.RigError,
            errors.GrammarError,
            errors.ParseError,
            errors.QueryError,
            errors.QuerySyntaxError,
            errors.TranslationError,
            errors.PlanningError,
            errors.DatabaseError,
            errors.RegionIndexError,
            errors.IndexConfigError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, errors.ReproError)

    def test_errors_reexported_at_top_level(self):
        for name in (
            "ReproError",
            "RegionError",
            "AlgebraError",
            "UnknownRegionNameError",
            "RigError",
            "GrammarError",
            "ParseError",
            "QueryError",
            "QuerySyntaxError",
            "TranslationError",
            "PlanningError",
            "DatabaseError",
            "RegionIndexError",
            "IndexConfigError",
        ):
            assert name in repro.__all__, name
            from repro import errors

            assert getattr(repro, name) is getattr(errors, name), name

    def test_result_types_reexported(self):
        from repro.core.engine import QueryResult
        from repro.core.partial import ExecutionStats
        from repro.core.planner import Plan
        from repro.obs.trace import Trace

        assert repro.QueryResult is QueryResult
        assert repro.Plan is Plan
        assert repro.ExecutionStats is ExecutionStats
        assert repro.Trace is Trace

    def test_observability_exports(self):
        from repro import obs

        assert repro.Analysis is obs.Analysis
        assert repro.QueryStats is obs.QueryStats
        assert repro.Span is obs.Span
        assert repro.Tracer is obs.Tracer
        assert repro.HookRegistry is obs.HookRegistry
        assert repro.SpanCollector is obs.SpanCollector

    def test_index_error_alias_warns_and_resolves(self):
        from repro import errors

        with pytest.warns(DeprecationWarning, match="RegionIndexError"):
            alias = errors.IndexError_
        assert alias is errors.RegionIndexError
        with pytest.warns(DeprecationWarning, match="RegionIndexError"):
            top_level_alias = repro.IndexError_
        assert top_level_alias is errors.RegionIndexError

    def test_new_spelling_does_not_warn(self):
        from repro import errors

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert errors.RegionIndexError is repro.RegionIndexError

    def test_error_details(self):
        from repro import errors

        name_error = errors.UnknownRegionNameError("X", ("A", "B"))
        assert "X" in str(name_error)
        assert "A" in str(name_error)
        parse_error = errors.ParseError("bad", position=7, symbol="Entry")
        assert parse_error.position == 7
        assert "Entry" in str(parse_error)
        syntax_error = errors.QuerySyntaxError("oops", position=3)
        assert syntax_error.position == 3
