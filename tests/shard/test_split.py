"""Schema-aware corpus splitting (`shard/split.py`)."""

from __future__ import annotations

import pytest

from repro.errors import GrammarError
from repro.shard import split_corpus
from repro.workloads.bibtex import generate_bibtex
from repro.workloads.logs import generate_log, log_schema
from repro.workloads.sgml import generate_sgml, sgml_schema


def test_chunks_cover_all_records_in_order(schema, corpus_text) -> None:
    chunks = split_corpus(schema, corpus_text, 8)
    assert len(chunks) == 8
    # Every record survives: re-parsing the chunks yields as many
    # top-level records as the whole corpus.
    total = len(list(schema.parse(corpus_text).children))
    recovered = sum(len(list(schema.parse(chunk).children)) for chunk in chunks)
    assert recovered == total


def test_every_chunk_parses_under_the_same_schema(schema, corpus_text) -> None:
    for chunk in split_corpus(schema, corpus_text, 5):
        tree = schema.parse(chunk)  # must not raise
        assert list(tree.children)


def test_chunks_are_contiguous_slices_of_the_corpus(schema, corpus_text) -> None:
    chunks = split_corpus(schema, corpus_text, 4)
    cursor = 0
    for chunk in chunks:
        position = corpus_text.find(chunk, cursor)
        assert position >= cursor
        cursor = position + len(chunk)


def test_byte_balance_is_reasonable(schema, corpus_text) -> None:
    chunks = split_corpus(schema, corpus_text, 4)
    sizes = [len(chunk) for chunk in chunks]
    assert max(sizes) < 2 * (sum(sizes) / len(sizes))


def test_more_shards_than_records_caps_at_record_count(schema) -> None:
    text = generate_bibtex(entries=3, seed=5)
    chunks = split_corpus(schema, text, 10)
    assert len(chunks) == 3
    for chunk in chunks:
        assert len(list(schema.parse(chunk).children)) == 1


def test_single_shard_returns_the_whole_corpus(schema, corpus_text) -> None:
    (chunk,) = split_corpus(schema, corpus_text, 1)
    assert chunk == corpus_text


def test_rejects_nonpositive_shard_count(schema, corpus_text) -> None:
    with pytest.raises(ValueError):
        split_corpus(schema, corpus_text, 0)


def test_empty_corpus_raises_grammar_error(schema) -> None:
    with pytest.raises(GrammarError):
        split_corpus(schema, "", 4)


@pytest.mark.parametrize(
    "make_schema, make_text",
    [
        (log_schema, lambda: generate_log(entries=60, seed=3)),
        (sgml_schema, lambda: generate_sgml(documents=6, seed=1)),
    ],
)
def test_other_workloads_split_cleanly(make_schema, make_text) -> None:
    workload_schema = make_schema()
    text = make_text()
    chunks = split_corpus(workload_schema, text, 3)
    assert len(chunks) == 3
    for chunk in chunks:
        assert list(workload_schema.parse(chunk).children)


# -- degenerate shapes --------------------------------------------------------


def test_one_giant_record_among_tiny_ones(schema) -> None:
    """Byte balancing must not split the giant record or starve a shard:
    every chunk still holds at least one whole record."""
    tiny = generate_bibtex(entries=6, seed=2)
    # Inflate one quoted field value: still a perfectly grammatical entry,
    # just ~20 kB — larger than all the tiny records combined.
    giant = generate_bibtex(entries=1, seed=3).replace("Taylor", "x" * 20_000, 1)
    text = tiny + giant + generate_bibtex(entries=6, seed=4)
    chunks = split_corpus(schema, text, 4)
    assert "".join(chunks) == text
    assert all(list(schema.parse(chunk).children) for chunk in chunks)
    # The giant record travels whole inside exactly one chunk.
    assert sum("x" * 20_000 in chunk for chunk in chunks) == 1


def test_exactly_as_many_records_as_shards(schema) -> None:
    text = generate_bibtex(entries=5, seed=9)
    chunks = split_corpus(schema, text, 5)
    assert len(chunks) == 5
    for chunk in chunks:
        assert len(list(schema.parse(chunk).children)) == 1
    assert "".join(chunks) == text


def test_chunks_tile_the_corpus_byte_for_byte(schema) -> None:
    """The crash-recovery oracle depends on this property: the logical
    corpus must be reconstructible from the shard chunks exactly.  Seeded
    sweep across workloads, corpus sizes, and shard counts."""
    cases = [
        (schema, generate_bibtex(entries=n, seed=seed))
        for n in (1, 2, 7, 23)
        for seed in (0, 11)
    ] + [
        (log_schema(), generate_log(entries=n, seed=5))
        for n in (1, 3, 50)
    ] + [
        (sgml_schema(), generate_sgml(documents=n, seed=8))
        for n in (1, 4)
    ]
    for workload_schema, text in cases:
        for shards in (1, 2, 3, 8, 64):
            chunks = split_corpus(workload_schema, text, shards)
            assert "".join(chunks) == text, (
                f"tiling broke at shards={shards}, corpus of {len(text)} bytes"
            )
