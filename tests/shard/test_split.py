"""Schema-aware corpus splitting (`shard/split.py`)."""

from __future__ import annotations

import pytest

from repro.errors import GrammarError
from repro.shard import split_corpus
from repro.workloads.bibtex import generate_bibtex
from repro.workloads.logs import generate_log, log_schema
from repro.workloads.sgml import generate_sgml, sgml_schema


def test_chunks_cover_all_records_in_order(schema, corpus_text) -> None:
    chunks = split_corpus(schema, corpus_text, 8)
    assert len(chunks) == 8
    # Every record survives: re-parsing the chunks yields as many
    # top-level records as the whole corpus.
    total = len(list(schema.parse(corpus_text).children))
    recovered = sum(len(list(schema.parse(chunk).children)) for chunk in chunks)
    assert recovered == total


def test_every_chunk_parses_under_the_same_schema(schema, corpus_text) -> None:
    for chunk in split_corpus(schema, corpus_text, 5):
        tree = schema.parse(chunk)  # must not raise
        assert list(tree.children)


def test_chunks_are_contiguous_slices_of_the_corpus(schema, corpus_text) -> None:
    chunks = split_corpus(schema, corpus_text, 4)
    cursor = 0
    for chunk in chunks:
        position = corpus_text.find(chunk, cursor)
        assert position >= cursor
        cursor = position + len(chunk)


def test_byte_balance_is_reasonable(schema, corpus_text) -> None:
    chunks = split_corpus(schema, corpus_text, 4)
    sizes = [len(chunk) for chunk in chunks]
    assert max(sizes) < 2 * (sum(sizes) / len(sizes))


def test_more_shards_than_records_caps_at_record_count(schema) -> None:
    text = generate_bibtex(entries=3, seed=5)
    chunks = split_corpus(schema, text, 10)
    assert len(chunks) == 3
    for chunk in chunks:
        assert len(list(schema.parse(chunk).children)) == 1


def test_single_shard_returns_the_record_span(schema, corpus_text) -> None:
    (chunk,) = split_corpus(schema, corpus_text, 1)
    records = list(schema.parse(corpus_text).children)
    assert chunk == corpus_text[records[0].start : records[-1].end]


def test_rejects_nonpositive_shard_count(schema, corpus_text) -> None:
    with pytest.raises(ValueError):
        split_corpus(schema, corpus_text, 0)


def test_empty_corpus_raises_grammar_error(schema) -> None:
    with pytest.raises(GrammarError):
        split_corpus(schema, "", 4)


@pytest.mark.parametrize(
    "make_schema, make_text",
    [
        (log_schema, lambda: generate_log(entries=60, seed=3)),
        (sgml_schema, lambda: generate_sgml(documents=6, seed=1)),
    ],
)
def test_other_workloads_split_cleanly(make_schema, make_text) -> None:
    workload_schema = make_schema()
    text = make_text()
    chunks = split_corpus(workload_schema, text, 3)
    assert len(chunks) == 3
    for chunk in chunks:
        assert list(workload_schema.parse(chunk).children)
