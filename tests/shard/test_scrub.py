"""The background scrubber (`shard/scrub.py`): verification findings,
quarantine-never-delete, anti-entropy repair, and the server-owned daemon."""

from __future__ import annotations

import shutil

import pytest

from repro.core.engine import FileQueryEngine
from repro.index.persist import (
    QUARANTINE_PREFIX,
    corpus_fingerprint,
    replica_dir_name,
)
from repro.shard import ScrubDaemon, ShardedEngine, scrub_index
from repro.shard.manifest import load_shard_manifest
from repro.shard.scrub import (
    COPIED_FROM_PEER,
    CORRUPT,
    MANIFEST_REWRITTEN,
    MISSING,
    QUARANTINE_ACTION,
    REBUILT_FROM_SOURCE,
    UNREPAIRABLE,
)


@pytest.fixture
def replicated_index(tmp_path, schema, corpus_text):
    """A 3-shard index with 2 replicas per shard."""
    directory = tmp_path / "sidx"
    ShardedEngine.split(schema, corpus_text, 3).save(directory, replicas=2)
    return directory


def shard_dirs(directory):
    return [
        directory / entry.directory
        for entry in load_shard_manifest(directory).shards
    ]


def corrupt_copy(replica_dir) -> None:
    target = replica_dir / "config.json"
    data = bytearray(target.read_bytes())
    data[20:24] = b"XXXX"
    target.write_bytes(bytes(data))


def quarantines(shard_dir):
    return sorted(d.name for d in shard_dir.glob(f"{QUARANTINE_PREFIX}*"))


class TestVerification:
    def test_clean_index_scrubs_clean(self, schema, replicated_index) -> None:
        report = scrub_index(schema, replicated_index)
        assert report.clean
        assert report.shards_checked == 3
        assert report.replicas_checked == 6

    def test_detects_corruption_without_touching_disk(
        self, schema, replicated_index
    ) -> None:
        first = shard_dirs(replicated_index)[0]
        corrupt_copy(first / replica_dir_name(0))
        report = scrub_index(schema, replicated_index)  # no repair
        assert [f.kind for f in report.findings] == [CORRUPT]
        assert report.findings[0].replica == replica_dir_name(0)
        assert not report.repairs
        assert not quarantines(first)

    def test_detects_a_missing_replica(self, schema, replicated_index) -> None:
        first = shard_dirs(replicated_index)[0]
        shutil.rmtree(first / replica_dir_name(1))
        report = scrub_index(schema, replicated_index)
        assert [f.kind for f in report.findings] == [MISSING]

    def test_plain_unreplicated_shards_are_verified_in_place(
        self, schema, saved_sharded
    ) -> None:
        report = scrub_index(schema, saved_sharded)
        assert report.clean
        assert report.replicas_checked == report.shards_checked


class TestRepair:
    def test_repair_quarantines_then_copies_from_verified_peer(
        self, schema, replicated_index, query_text, reference_rows
    ) -> None:
        first = shard_dirs(replicated_index)[0]
        corrupt_copy(first / replica_dir_name(0))
        report = scrub_index(schema, replicated_index, repair=True)
        actions = [r.action for r in report.repairs]
        assert actions == [QUARANTINE_ACTION, COPIED_FROM_PEER]
        assert quarantines(first)  # damaged copy preserved, never deleted
        assert {w.code for w in report.warnings} == {
            "replica-quarantined",
            "replica-repaired",
        }
        # Second pass: fully healed.
        assert scrub_index(schema, replicated_index).clean
        engine = ShardedEngine.from_saved(schema, replicated_index)
        assert engine.query(query_text).canonical_rows() == reference_rows

    def test_repair_all_shards_one_replica_each(
        self, schema, replicated_index
    ) -> None:
        for shard_dir in shard_dirs(replicated_index):
            corrupt_copy(shard_dir / replica_dir_name(1))
        report = scrub_index(schema, replicated_index, repair=True)
        assert len([r for r in report.repairs if r.action == COPIED_FROM_PEER]) == 3
        assert scrub_index(schema, replicated_index).clean

    def test_unrepairable_damage_is_left_in_place(
        self, schema, replicated_index
    ) -> None:
        """Every replica corrupt and no source file: the scrub must not
        quarantine the last copies into oblivion."""
        first = shard_dirs(replicated_index)[0]
        for name in (replica_dir_name(0), replica_dir_name(1)):
            corrupt_copy(first / name)
        report = scrub_index(schema, replicated_index, repair=True)
        actions = {r.action for r in report.repairs}
        assert actions == {UNREPAIRABLE}
        assert not quarantines(first)
        assert (first / replica_dir_name(0)).is_dir()
        assert (first / replica_dir_name(1)).is_dir()

    def test_rebuild_from_source_when_no_peer_survives(
        self, tmp_path, schema, corpus_text
    ) -> None:
        source = tmp_path / "refs.bib"
        source.write_text(corpus_text, encoding="utf-8")
        directory = tmp_path / "sidx"
        ShardedEngine.from_paths(schema, [str(source)]).save(directory, replicas=2)
        first = shard_dirs(directory)[0]
        for name in (replica_dir_name(0), replica_dir_name(1)):
            corrupt_copy(first / name)
        report = scrub_index(schema, directory, repair=True)
        actions = [r.action for r in report.repairs]
        assert actions.count(REBUILT_FROM_SOURCE) == 2
        assert len(quarantines(first)) == 2
        assert scrub_index(schema, directory).clean

    def test_changed_source_never_rebuilds_wrong_answers(
        self, tmp_path, schema, corpus_text
    ) -> None:
        source = tmp_path / "refs.bib"
        source.write_text(corpus_text, encoding="utf-8")
        directory = tmp_path / "sidx"
        ShardedEngine.from_paths(schema, [str(source)]).save(directory, replicas=2)
        source.write_text(corpus_text + "\n% drifted", encoding="utf-8")
        first = shard_dirs(directory)[0]
        for name in (replica_dir_name(0), replica_dir_name(1)):
            corrupt_copy(first / name)
        report = scrub_index(schema, directory, repair=True)
        assert {r.action for r in report.repairs} == {UNREPAIRABLE}
        assert "no longer matches the committed fingerprint" in (
            report.repairs[0].detail
        )

    def test_agreed_divergence_finishes_the_interrupted_commit(
        self, schema, replicated_index, corpus_text
    ) -> None:
        """All replicas of a shard agree on a *new* fingerprint that the
        shard manifest never committed (crash between replica folds and the
        manifest rewrite): the scrub promotes the agreed state instead of
        quarantining every copy."""
        first = shard_dirs(replicated_index)[0]
        drifted = corpus_text + "\n"
        for name in (replica_dir_name(0), replica_dir_name(1)):
            target = first / name
            shutil.rmtree(target)
            FileQueryEngine(schema, drifted).save(str(target))
        report = scrub_index(schema, replicated_index, repair=True)
        promoted = [r for r in report.repairs if r.action == MANIFEST_REWRITTEN]
        assert len(promoted) == 1
        assert not quarantines(first)
        from repro.index.persist import load_replica_manifest

        manifest = load_replica_manifest(first)
        assert manifest["corpus_fingerprint"] == corpus_fingerprint(drifted)
        assert scrub_index(schema, replicated_index).clean


class TestScrubDaemon:
    def test_run_once_records_report(self, schema, replicated_index) -> None:
        daemon = ScrubDaemon(
            lambda: scrub_index(schema, replicated_index, repair=True),
            interval_s=3600.0,
        )
        report = daemon.run_once()
        assert report is not None and report.clean
        snapshot = daemon.snapshot()
        assert snapshot["runs"] == 1
        assert snapshot["last_clean"] is True
        assert snapshot["last_findings"] == 0
        assert snapshot["last_error"] is None

    def test_runner_exceptions_are_contained(self) -> None:
        def boom():
            raise RuntimeError("disk on fire")

        daemon = ScrubDaemon(boom, interval_s=3600.0)
        assert daemon.run_once() is None
        snapshot = daemon.snapshot()
        assert snapshot["runs"] == 1
        assert "disk on fire" in snapshot["last_error"]

    def test_start_stop_is_idempotent(self, schema, replicated_index) -> None:
        daemon = ScrubDaemon(
            lambda: scrub_index(schema, replicated_index), interval_s=3600.0
        )
        daemon.start()
        daemon.start()
        daemon.stop()
        daemon.stop()

    def test_rejects_nonpositive_interval(self) -> None:
        with pytest.raises(ValueError):
            ScrubDaemon(lambda: None, interval_s=0)

    def test_repairs_heal_between_runs(self, schema, replicated_index) -> None:
        daemon = ScrubDaemon(
            lambda: scrub_index(schema, replicated_index, repair=True),
            interval_s=3600.0,
        )
        corrupt_copy(shard_dirs(replicated_index)[0] / replica_dir_name(0))
        first = daemon.run_once()
        assert not first.clean and first.repairs
        second = daemon.run_once()
        assert second.clean
        assert daemon.snapshot()["runs"] == 2
