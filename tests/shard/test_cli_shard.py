"""The `shard build` / `shard query` / `shard explain` / `shard analyze`
CLI surface, including the `--fail-fast` exit-code contract and the
`--json` payload with per-shard stats."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


def run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def cli_sharded(tmp_path, corpus_text, capsys):
    source = tmp_path / "refs.bib"
    source.write_text(corpus_text, encoding="utf-8")
    directory = tmp_path / "sidx"
    code, _, err = run(
        capsys,
        [
            "shard", "build", "--workload", "bibtex",
            "--file", str(source), "--shards", "8", "--out", str(directory),
        ],
    )
    assert code == 0
    assert "8 shard(s)" in err
    return directory


def corrupt_one_shard(directory, index: int = 2) -> None:
    victim = sorted((directory / "shards").iterdir())[index]
    (victim / "corpus.txt").write_text("garbage", encoding="utf-8")


def test_build_from_multiple_files(tmp_path, schema, corpus_text, capsys) -> None:
    from repro.shard import split_corpus

    parts = split_corpus(schema, corpus_text, 3)
    paths = []
    for number, part in enumerate(parts):
        path = tmp_path / f"part{number}.bib"
        path.write_text(part, encoding="utf-8")
        paths.append(str(path))
    directory = tmp_path / "sidx"
    code, _, err = run(
        capsys,
        ["shard", "build", "--workload", "bibtex", "--files", *paths,
         "--out", str(directory)],
    )
    assert code == 0
    assert "3 shard(s)" in err
    code, out, err = run(
        capsys,
        ["shard", "query", "--workload", "bibtex", "--index", str(directory), QUERY],
    )
    assert code == 0
    assert "3/3 shard(s)" in err
    assert out.strip()  # the query matches rows in this corpus


def test_build_requires_a_corpus_argument(tmp_path, capsys) -> None:
    with pytest.raises(SystemExit):
        main(["shard", "build", "--workload", "bibtex", "--out", str(tmp_path / "x")])


def test_query_healthy_matches_unsharded_cli(cli_sharded, tmp_path, capsys) -> None:
    code, sharded_out, err = run(
        capsys,
        ["shard", "query", "--workload", "bibtex", "--index", str(cli_sharded), QUERY],
    )
    assert code == 0
    assert "8/8 shard(s)" in err
    code, single_out, _ = run(
        capsys,
        ["query", "--workload", "bibtex", "--file", str(tmp_path / "refs.bib"), QUERY],
    )
    assert code == 0
    assert sorted(sharded_out.splitlines()) == sorted(single_out.splitlines())


def test_partial_result_json_and_warnings(cli_sharded, capsys) -> None:
    corrupt_one_shard(cli_sharded)
    code, out, err = run(
        capsys,
        ["shard", "query", "--workload", "bibtex", "--index", str(cli_sharded),
         "--json", QUERY],
    )
    assert code == 0
    payload = json.loads(out)
    codes = [warning["code"] for warning in payload["warnings"]]
    assert "shard-failed" in codes
    assert "partial-result" in codes
    statuses = [record["status"] for record in payload["stats"]["shards"]]
    assert statuses.count("failed") == 1
    assert statuses.count("ok") == 7
    assert "warning: [shard-failed]" in err
    assert "warning: [partial-result]" in err


def test_fail_fast_exits_nonzero(cli_sharded, capsys) -> None:
    corrupt_one_shard(cli_sharded)
    code, _, err = run(
        capsys,
        ["shard", "query", "--workload", "bibtex", "--index", str(cli_sharded),
         "--fail-fast", QUERY],
    )
    assert code == 1
    assert "error:" in err and "failed" in err


def test_max_parallel_flag(cli_sharded, capsys) -> None:
    code, _, err = run(
        capsys,
        ["shard", "query", "--workload", "bibtex", "--index", str(cli_sharded),
         "--max-parallel", "2", QUERY],
    )
    assert code == 0
    assert "8/8 shard(s)" in err


def test_explain_shows_roster(cli_sharded, capsys) -> None:
    code, out, _ = run(
        capsys,
        ["shard", "explain", "--workload", "bibtex", "--index", str(cli_sharded), QUERY],
    )
    assert code == 0
    assert "shards:    8" in out


def test_analyze_json_carries_shard_records(cli_sharded, capsys) -> None:
    code, out, _ = run(
        capsys,
        ["shard", "analyze", "--workload", "bibtex", "--index", str(cli_sharded),
         "--json", QUERY],
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["stats"]["strategy"] == "sharded"
    assert len(payload["stats"]["shards"]) == 8


def test_query_on_single_index_directory_errors_cleanly(
    tmp_path, schema, corpus_text, capsys
) -> None:
    from repro.core.engine import FileQueryEngine

    directory = tmp_path / "idx"
    FileQueryEngine(schema, corpus_text).save(str(directory))
    code, _, err = run(
        capsys,
        ["shard", "query", "--workload", "bibtex", "--index", str(directory), QUERY],
    )
    assert code == 1
    assert "not a sharded-index manifest" in err
