"""Replicated persistence and breaker-aware read routing
(`shard/replica.py`, the ``replicas=`` persist layout, and the sharded
engine's failover surface)."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.core.engine import FileQueryEngine
from repro.errors import IndexCorruptError, IndexNotFoundError
from repro.index.persist import (
    applied_seq,
    corpus_fingerprint,
    load_live_state,
    load_manifest,
    load_replica_manifest,
    replica_dir_name,
    replica_directories,
    save_replica_manifest,
)
from repro.resilience import DegradationPolicy
from repro.resilience.breaker import BreakerConfig
from repro.shard import ReplicaSet, ShardedEngine
from repro.shard.manifest import load_shard_manifest
from repro.shard.split import split_corpus


@pytest.fixture
def replicated_dir(tmp_path, schema, corpus_text):
    """A single index saved in the replicated layout (2 copies)."""
    directory = tmp_path / "ridx"
    FileQueryEngine(schema, corpus_text).save(str(directory), replicas=2)
    return directory


def corrupt_copy(replica_dir) -> None:
    """Flip bytes inside one replica's config so its checksum fails."""
    target = replica_dir / "config.json"
    data = bytearray(target.read_bytes())
    data[20:24] = b"XXXX"
    target.write_bytes(bytes(data))


# -- persist layout -----------------------------------------------------------


class TestReplicatedLayout:
    def test_save_with_replicas_writes_sibling_copies(
        self, replicated_dir, corpus_text
    ) -> None:
        names = [d.name for d in replica_directories(replicated_dir)]
        assert names == [replica_dir_name(0), replica_dir_name(1)]
        manifest = load_replica_manifest(replicated_dir)
        assert manifest["corpus_fingerprint"] == corpus_fingerprint(corpus_text)
        assert [e["directory"] for e in manifest["replicas"]] == names

    def test_each_replica_is_a_complete_loadable_index(
        self, replicated_dir, schema, corpus_text, query_text, reference_rows
    ) -> None:
        for directory in replica_directories(replicated_dir):
            engine = FileQueryEngine.from_saved(schema, str(directory))
            assert engine.query(query_text).canonical_rows() == reference_rows

    def test_from_saved_on_replicated_dir_routes_through_a_replica(
        self, replicated_dir, schema, query_text, reference_rows
    ) -> None:
        engine = FileQueryEngine.from_saved(schema, str(replicated_dir))
        assert engine.query(query_text).canonical_rows() == reference_rows

    def test_manifest_helpers_see_through_the_replicated_layout(
        self, replicated_dir, corpus_text
    ) -> None:
        manifest = load_manifest(replicated_dir)
        assert manifest is not None
        assert manifest["corpus_fingerprint"] == corpus_fingerprint(corpus_text)
        assert applied_seq(replicated_dir) == 0
        assert load_live_state(replicated_dir) is None

    def test_plain_dir_has_no_replica_manifest(
        self, tmp_path, schema, corpus_text
    ) -> None:
        directory = tmp_path / "plain"
        FileQueryEngine(schema, corpus_text).save(str(directory))
        assert load_replica_manifest(directory) is None
        assert ReplicaSet.open(directory) is None

    def test_damaged_replica_manifest_degrades_not_fails(
        self, replicated_dir
    ) -> None:
        (replicated_dir / "manifest.json").write_text("{ not json")
        manifest = load_replica_manifest(replicated_dir)
        assert manifest is not None
        assert manifest["manifest_damaged"] is True
        assert manifest["corpus_fingerprint"] is None
        assert len(manifest["replicas"]) == 2


# -- read routing -------------------------------------------------------------


class TestReplicaSetRouting:
    def loader(self, schema, query_text):
        def load(directory: str):
            # Strict, like the sharded engine's first pass: a damaged copy
            # must raise (and fail over), not degrade to a full scan.
            return (
                FileQueryEngine.from_saved(
                    schema, directory, policy=DegradationPolicy.strict()
                )
                .query(query_text)
                .canonical_rows()
            )

        return load

    def test_routes_to_first_replica_when_healthy(
        self, replicated_dir, schema, query_text, reference_rows
    ) -> None:
        replicas = ReplicaSet.open(replicated_dir)
        load = replicas.load(self.loader(schema, query_text))
        assert load.value == reference_rows
        assert load.replica_index == 0
        assert not load.warnings

    def test_fails_over_past_a_corrupt_copy_with_warning(
        self, replicated_dir, schema, query_text, reference_rows
    ) -> None:
        corrupt_copy(replicated_dir / replica_dir_name(0))
        replicas = ReplicaSet.open(replicated_dir)
        load = replicas.load(self.loader(schema, query_text))
        assert load.value == reference_rows
        assert load.replica_index == 1
        assert [w.code for w in load.warnings] == ["replica-failover"]

    def test_all_replicas_corrupt_raises_the_last_error(
        self, replicated_dir, schema, query_text
    ) -> None:
        for directory in replica_directories(replicated_dir):
            corrupt_copy(directory)
        replicas = ReplicaSet.open(replicated_dir)
        with pytest.raises(IndexCorruptError):
            replicas.load(self.loader(schema, query_text))

    def test_breaker_opens_after_repeated_failures_and_skips_upfront(
        self, replicated_dir, schema, query_text
    ) -> None:
        corrupt_copy(replicated_dir / replica_dir_name(0))
        replicas = ReplicaSet.open(
            replicated_dir,
            breaker_config=BreakerConfig(failure_threshold=2, reset_timeout_s=60.0),
        )
        load = self.loader(schema, query_text)
        replicas.load(load)
        replicas.load(load)  # second failure trips the breaker
        third = replicas.load(load)
        skip = [e for e in third.events if not e.ok]
        assert skip and skip[0].reason == "breaker-open"

    def test_diverged_replica_is_skipped_without_tripping_its_breaker(
        self, replicated_dir, schema, corpus_text, query_text, reference_rows
    ) -> None:
        # Rewrite replica-0 with *different* (self-consistent) content.
        other = corpus_text + "\n"
        target = replicated_dir / replica_dir_name(0)
        shutil.rmtree(target)
        FileQueryEngine(schema, other).save(str(target))
        replicas = ReplicaSet.open(replicated_dir)
        load = replicas.load(self.loader(schema, query_text))
        assert load.value == reference_rows
        assert load.replica_index == 1
        health = replicas.health()
        assert health["detail"][0]["status"] == "suspect"
        assert health["detail"][0]["breaker"] == "closed"

    def test_record_repaired_resets_health_and_breaker(
        self, replicated_dir, schema, query_text
    ) -> None:
        corrupt_copy(replicated_dir / replica_dir_name(0))
        replicas = ReplicaSet.open(
            replicated_dir,
            breaker_config=BreakerConfig(failure_threshold=1, reset_timeout_s=60.0),
        )
        replicas.load(self.loader(schema, query_text))
        assert replicas.health()["detail"][0]["status"] == "suspect"
        replicas.record_repaired(0)
        health = replicas.health()
        assert health["detail"][0]["status"] == "healthy"
        assert health["detail"][0]["breaker"] == "closed"

    def test_rotation_offsets_start_from_different_replicas(
        self, replicated_dir, schema, query_text
    ) -> None:
        replicas = ReplicaSet.open(replicated_dir)
        load = self.loader(schema, query_text)
        assert replicas.load(load, offset=0).replica_index == 0
        assert replicas.load(load, offset=1).replica_index == 1


# -- sharded engine integration -----------------------------------------------


class TestShardedReplication:
    def test_one_replica_of_every_shard_corrupt_is_byte_identical(
        self, tmp_path, schema, corpus_text, query_text, reference_rows
    ) -> None:
        directory = tmp_path / "sidx"
        ShardedEngine.split(schema, corpus_text, 4).save(directory, replicas=2)
        manifest = load_shard_manifest(directory)
        for entry in manifest.shards:
            corrupt_copy(directory / entry.directory / replica_dir_name(0))
        engine = ShardedEngine.from_saved(schema, directory)
        result = engine.query(query_text)
        assert result.canonical_rows() == reference_rows
        codes = {w.code for w in result.warnings}
        assert "replica-failover" in codes
        assert "partial-result" not in codes

    def test_replica_health_surface(self, tmp_path, schema, corpus_text) -> None:
        directory = tmp_path / "sidx"
        ShardedEngine.split(schema, corpus_text, 3).save(directory, replicas=2)
        engine = ShardedEngine.from_saved(schema, directory)
        health = engine.replica_health()
        assert len(health) == 3
        for shard in health:
            assert shard["replicas"] == 2
            assert shard["healthy"] == 2
            assert [d["replica"] for d in shard["detail"]] == [
                replica_dir_name(0),
                replica_dir_name(1),
            ]
        assert engine.stats().backend["replica_health"] == health

    def test_unreplicated_index_reports_empty_health(
        self, saved_sharded, schema
    ) -> None:
        engine = ShardedEngine.from_saved(schema, saved_sharded)
        assert engine.replica_health() == []

    def test_split_corpus_chunks_save_replicated(
        self, tmp_path, schema, corpus_text, query_text, reference_rows
    ) -> None:
        texts = split_corpus(schema, corpus_text, 3)
        engine = ShardedEngine.from_texts(schema, texts)
        directory = tmp_path / "sidx"
        engine.save(directory, replicas=3)
        for entry in load_shard_manifest(directory).shards:
            shard_dir = directory / entry.directory
            manifest = load_replica_manifest(shard_dir)
            assert manifest is not None
            assert len(manifest["replicas"]) == 3
            assert manifest["corpus_fingerprint"] == entry.corpus_fingerprint
        reopened = ShardedEngine.from_saved(schema, directory)
        assert reopened.query(query_text).canonical_rows() == reference_rows


# -- interrupted-commit recovery ---------------------------------------------


class TestInterruptedCommit:
    def test_agreed_divergence_promotes_the_new_fingerprint(
        self, replicated_dir, schema, corpus_text, query_text
    ) -> None:
        """Every replica was rewritten (and agrees) but the crash landed
        before the shard manifest rewrite: ReplicaSet must treat the copies
        as the committed state once the manifest is re-pointed, which is
        the scrubber's finish-the-commit path — here we check the raw
        divergence detection that drives it."""
        other = corpus_text + "\n"
        for name in (replica_dir_name(0), replica_dir_name(1)):
            target = replicated_dir / name
            shutil.rmtree(target)
            FileQueryEngine(schema, other).save(str(target))
        replicas = ReplicaSet.open(replicated_dir)
        with pytest.raises(IndexNotFoundError):
            # Every copy diverges: all are skipped (fingerprint-mismatch),
            # none errored, so "no replica could be routed to".
            replicas.load(
                lambda d: FileQueryEngine.from_saved(schema, d).query(query_text)
            )
        # Finishing the commit re-points the manifest; routing resumes.
        save_replica_manifest(
            replicated_dir,
            corpus_fingerprint(other),
            [replica_dir_name(0), replica_dir_name(1)],
        )
        replicas = ReplicaSet.open(replicated_dir)
        load = replicas.load(
            lambda d: FileQueryEngine.from_saved(schema, d).query(query_text)
        )
        assert load.replica_index == 0
