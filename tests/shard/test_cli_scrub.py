"""The `--replicas` build surface and the `repro scrub` command: exit
codes (clean=0, healed=0, damage without repair=1) and the `--json`
report shape."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.index.persist import QUARANTINE_PREFIX, replica_dir_name

QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


def run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def cli_replicated(tmp_path, corpus_text, capsys):
    source = tmp_path / "refs.bib"
    source.write_text(corpus_text, encoding="utf-8")
    directory = tmp_path / "sidx"
    code, _, err = run(
        capsys,
        [
            "shard", "build", "--workload", "bibtex",
            "--file", str(source), "--shards", "4",
            "--replicas", "2", "--out", str(directory),
        ],
    )
    assert code == 0
    assert "2 replica(s) each" in err
    return directory


def corrupt_replica(directory, shard_index: int = 0, replica: int = 0) -> None:
    shard_dir = sorted((directory / "shards").iterdir())[shard_index]
    target = shard_dir / replica_dir_name(replica) / "config.json"
    data = bytearray(target.read_bytes())
    data[20:24] = b"XXXX"
    target.write_bytes(bytes(data))


def test_build_rejects_single_replica(tmp_path, corpus_text, capsys) -> None:
    source = tmp_path / "refs.bib"
    source.write_text(corpus_text, encoding="utf-8")
    with pytest.raises(SystemExit, match="at least 2"):
        main(
            [
                "shard", "build", "--workload", "bibtex",
                "--file", str(source), "--shards", "2",
                "--replicas", "1", "--out", str(tmp_path / "sidx"),
            ]
        )


def test_scrub_clean_exits_zero(cli_replicated, capsys) -> None:
    code, out, _ = run(
        capsys,
        ["scrub", "--workload", "bibtex", "--index", str(cli_replicated)],
    )
    assert code == 0
    assert "clean" in out


def test_scrub_reports_damage_and_exits_one_without_repair(
    cli_replicated, capsys
) -> None:
    corrupt_replica(cli_replicated)
    code, out, _ = run(
        capsys,
        ["scrub", "--workload", "bibtex", "--index", str(cli_replicated)],
    )
    assert code == 1
    assert "1 finding(s)" in out
    assert "corrupt" in out


def test_scrub_repair_heals_and_exits_zero(cli_replicated, capsys) -> None:
    corrupt_replica(cli_replicated)
    code, out, err = run(
        capsys,
        [
            "scrub", "--workload", "bibtex",
            "--index", str(cli_replicated), "--repair",
        ],
    )
    assert code == 0
    assert "copied-from-peer" in out
    assert "replica-repaired" in err
    # The damaged copy was quarantined, not deleted.
    shard_dir = sorted((cli_replicated / "shards").iterdir())[0]
    assert list(shard_dir.glob(f"{QUARANTINE_PREFIX}*"))
    # Second pass: zero findings.
    code, out, _ = run(
        capsys,
        ["scrub", "--workload", "bibtex", "--index", str(cli_replicated)],
    )
    assert code == 0
    assert "clean" in out


def test_scrub_json_report(cli_replicated, capsys) -> None:
    corrupt_replica(cli_replicated)
    code, out, _ = run(
        capsys,
        [
            "scrub", "--workload", "bibtex",
            "--index", str(cli_replicated), "--repair", "--json",
        ],
    )
    assert code == 0
    report = json.loads(out)
    assert report["shards_checked"] == 4
    assert report["replicas_checked"] == 8
    assert report["clean"] is False
    assert [f["kind"] for f in report["findings"]] == ["corrupt"]
    assert [r["action"] for r in report["repairs"]] == [
        "quarantined",
        "copied-from-peer",
    ]


def test_query_with_one_corrupt_replica_is_byte_identical(
    cli_replicated, capsys
) -> None:
    code, healthy_out, _ = run(
        capsys,
        [
            "shard", "query", "--workload", "bibtex",
            "--index", str(cli_replicated), QUERY,
        ],
    )
    assert code == 0
    for shard_index in range(4):
        corrupt_replica(cli_replicated, shard_index=shard_index)
    code, out, err = run(
        capsys,
        [
            "shard", "query", "--workload", "bibtex",
            "--index", str(cli_replicated), QUERY,
        ],
    )
    assert code == 0
    assert out == healthy_out
    assert "replica-failover" in err
    assert "partial-result" not in err
