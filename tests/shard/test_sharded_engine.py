"""Scatter-gather execution, fault isolation, retry, and breakers
(`shard/engine.py`).  Includes the three acceptance scenarios:

- 1 corrupt shard of 8 → byte-identical rows from the 7 healthy shards
  plus `shard-failed` / `partial-result` warnings everywhere they must
  appear (result.warnings, stats.to_dict());
- the same query under `fail_fast` → typed `ShardFailedError`;
- a shard behind `TransientIOFault(k=2)` → success after retries with a
  `shard-retried` record and no row differences vs. the uninjected run.
"""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError, ShardFailedError
from repro.resilience import (
    BreakerConfig,
    DegradationPolicy,
    ResourceBudget,
    RetryPolicy,
    SlowShard,
    TransientIOFault,
)
from repro.shard import OK, ShardedEngine

NO_SLEEP = {"retry_sleep": lambda s: None}


def corrupt_shard_corpus(saved_sharded, index: int) -> str:
    """Damage shard ``index``'s corpus.txt (the unrecoverable part: the
    default policy cannot full-scan without a trustworthy text)."""
    victim = sorted((saved_sharded / "shards").iterdir())[index]
    (victim / "corpus.txt").write_text("garbage", encoding="utf-8")
    return victim.name


# -- plain scatter-gather ------------------------------------------------------


def test_sharded_rows_match_the_unsharded_engine(
    sharded_engine, query_text, reference_rows
) -> None:
    result = sharded_engine.query(query_text)
    assert result.canonical_rows() == reference_rows
    assert result.warnings == []
    assert result.stats.healthy_shards == 8
    assert result.plan is not None  # planned once, shared


def test_rows_arrive_in_shard_order(sharded_engine, query_text) -> None:
    result = sharded_engine.query(query_text)
    ordered = [
        row
        for name in sharded_engine.shard_names
        if name in result.shard_results
        for row in result.shard_results[name].rows
    ]
    assert result.rows == ordered


def test_save_load_round_trip(saved_sharded, schema, query_text, reference_rows) -> None:
    engine = ShardedEngine.from_saved(schema, saved_sharded)
    assert engine.query(query_text).canonical_rows() == reference_rows


def test_stats_to_dict_has_query_stats_shape_plus_shards(
    sharded_engine, query_text
) -> None:
    data = sharded_engine.query(query_text).stats.to_dict()
    for key in (
        "strategy", "rows", "candidate_regions", "result_regions",
        "bytes_parsed", "values_built", "objects_filtered_out",
        "join_bytes_compared", "algebra", "cache", "warnings",
        "duration_s", "trace",
    ):
        assert key in data
    assert data["strategy"] == "sharded"
    assert len(data["shards"]) == 8
    assert all(record["status"] == "ok" for record in data["shards"])


def test_trace_has_one_span_per_shard(sharded_engine, query_text) -> None:
    trace = sharded_engine.query(query_text).trace
    names = [span.name for span in trace.root.children]
    assert names == [f"shard:{n}" for n in sharded_engine.shard_names]
    # Healthy shards graft their own pipeline trace beneath.
    assert all(span.children for span in trace.root.children)


def test_bad_query_raises_instead_of_partial_result(sharded_engine) -> None:
    # A defect in the query itself is the caller's error, not N shard
    # failures dressed up as a partial result.
    with pytest.raises(QuerySyntaxError):
        sharded_engine.query("SELECT FROM WHERE")


def test_unknown_class_falls_back_to_empty_full_scan(sharded_engine) -> None:
    # Mirrors the single-engine contract: an unindexed source class is a
    # full-scan plan that matches nothing, on every shard.
    result = sharded_engine.query('SELECT x FROM Nonexistent x WHERE x.Foo = "y"')
    assert result.rows == []
    assert result.stats.healthy_shards == 8


def test_max_parallel_one_still_covers_all_shards(
    sharded_engine, query_text, reference_rows
) -> None:
    result = sharded_engine.query(query_text, max_parallel=1)
    assert result.canonical_rows() == reference_rows


# -- acceptance scenario 1: 1 corrupt shard of 8 ------------------------------


def test_one_corrupt_shard_yields_partial_result(
    saved_sharded, schema, query_text, reference_rows
) -> None:
    engine = ShardedEngine.from_saved(schema, saved_sharded)
    healthy = engine.query(query_text)
    per_shard = {
        name: result.canonical_rows()
        for name, result in healthy.shard_results.items()
    }

    corrupt_shard_corpus(saved_sharded, 2)
    reloaded = ShardedEngine.from_saved(schema, saved_sharded)
    partial = reloaded.query(query_text)

    victim = engine.shard_names[2]
    expected = set().union(
        *(rows for name, rows in per_shard.items() if name != victim)
    )
    assert partial.canonical_rows() == expected  # healthy shards byte-identical
    codes = [warning.code for warning in partial.warnings]
    assert "shard-failed" in codes
    assert "partial-result" in codes
    stats = partial.stats.to_dict()
    assert [w["code"] for w in stats["warnings"]] == codes
    victim_record = [r for r in stats["shards"] if r["shard"] == victim][0]
    assert victim_record["status"] == "failed"
    assert "corrupt" in victim_record["error"]
    assert partial.stats.healthy_shards == 7


def test_all_shards_failing_raises_even_in_tolerant_mode(
    saved_sharded, schema, query_text
) -> None:
    for index in range(8):
        corrupt_shard_corpus(saved_sharded, index)
    engine = ShardedEngine.from_saved(schema, saved_sharded)
    with pytest.raises(ShardFailedError, match="no shard produced a result"):
        engine.query(query_text)


# -- acceptance scenario 2: fail_fast -----------------------------------------


def test_fail_fast_raises_typed_error(saved_sharded, schema, query_text) -> None:
    corrupt_shard_corpus(saved_sharded, 2)
    engine = ShardedEngine.from_saved(schema, saved_sharded, fail_fast=True)
    with pytest.raises(ShardFailedError) as info:
        engine.query(query_text)
    assert info.value.shard == engine.shard_names[2]
    assert info.value.attempts >= 1


def test_fail_fast_per_call_override(saved_sharded, schema, query_text) -> None:
    corrupt_shard_corpus(saved_sharded, 0)
    engine = ShardedEngine.from_saved(schema, saved_sharded)
    assert engine.query(query_text).stats.failed_shards == 1  # tolerant default
    with pytest.raises(ShardFailedError):
        engine.query(query_text, fail_fast=True)


# -- acceptance scenario 3: transient faults retried --------------------------


def test_transient_fault_recovers_with_identical_rows(
    schema, corpus_text, query_text, reference_rows
) -> None:
    fault = TransientIOFault(k=2, shard="shard1")
    engine = ShardedEngine.split(
        schema, corpus_text, 8,
        fault_injector=fault,
        retry=RetryPolicy(max_attempts=3),
        **NO_SLEEP,
    )
    result = engine.query(query_text)
    assert result.canonical_rows() == reference_rows  # no row differences
    codes = [warning.code for warning in result.warnings]
    assert codes == ["shard-retried"]
    record = [
        r for r in result.stats.to_dict()["shards"] if r["shard"] == "shard1"
    ][0]
    assert record["status"] == "ok"
    assert record["attempts"] == 3
    assert record["retries"] == 2
    assert fault.failures == 2


def test_transient_fault_beyond_retry_budget_fails_the_shard(
    schema, corpus_text, query_text
) -> None:
    fault = TransientIOFault(k=5, shard="shard1")
    engine = ShardedEngine.split(
        schema, corpus_text, 4,
        fault_injector=fault,
        retry=RetryPolicy(max_attempts=3),
        **NO_SLEEP,
    )
    result = engine.query(query_text)
    codes = [warning.code for warning in result.warnings]
    assert "shard-failed" in codes and "partial-result" in codes
    record = [
        r for r in result.stats.to_dict()["shards"] if r["shard"] == "shard1"
    ][0]
    assert record["status"] == "failed"
    assert record["attempts"] == 3


def test_slow_shard_does_not_block_other_results(
    schema, corpus_text, query_text, reference_rows
) -> None:
    slow = SlowShard(delay_s=0.05, shard="shard0")
    engine = ShardedEngine.split(schema, corpus_text, 4, fault_injector=slow)
    result = engine.query(query_text)
    assert result.canonical_rows() == reference_rows
    assert slow.calls == 1


# -- circuit breaker -----------------------------------------------------------


def test_breaker_trips_after_repeated_failures_then_skips(
    schema, corpus_text, query_text
) -> None:
    fault = TransientIOFault(k=10**9, shard="shard2")  # never recovers
    engine = ShardedEngine.split(
        schema, corpus_text, 4,
        fault_injector=fault,
        retry=RetryPolicy(max_attempts=2),
        breaker_config=BreakerConfig(failure_threshold=2, reset_timeout_s=3600),
        **NO_SLEEP,
    )
    first = engine.query(query_text)
    assert [w.code for w in first.warnings] == ["shard-failed", "partial-result"]
    assert engine.breaker_snapshot("shard2")["state"] == "closed"

    second = engine.query(query_text)  # second failure trips the breaker
    assert "shard-failed" in [w.code for w in second.warnings]
    assert engine.breaker_snapshot("shard2")["state"] == "open"
    calls_when_tripped = fault.calls

    third = engine.query(query_text)  # skipped without touching the shard
    codes = [w.code for w in third.warnings]
    assert "shard-skipped-open-breaker" in codes
    assert "partial-result" in codes
    assert fault.calls == calls_when_tripped  # breaker saved the attempts
    record = [
        r for r in third.stats.to_dict()["shards"] if r["shard"] == "shard2"
    ][0]
    assert record["status"] == "skipped"
    assert record["attempts"] == 0


def test_breaker_half_open_probe_recovers_the_shard(
    schema, corpus_text, query_text, reference_rows
) -> None:
    fault = TransientIOFault(k=4, shard="shard2")
    engine = ShardedEngine.split(
        schema, corpus_text, 4,
        fault_injector=fault,
        retry=RetryPolicy(max_attempts=2),
        breaker_config=BreakerConfig(failure_threshold=2, reset_timeout_s=0.0),
        **NO_SLEEP,
    )
    engine.query(query_text)  # 2 failed attempts
    engine.query(query_text)  # 2 more; breaker trips (threshold 2)
    assert fault.failures == 4
    # Cooldown is zero: the next query is the half-open probe, and the
    # fault is exhausted, so it succeeds and closes the breaker.
    recovered = engine.query(query_text)
    assert recovered.canonical_rows() == reference_rows
    assert engine.breaker_snapshot("shard2")["state"] == "closed"


# -- degraded shards and budgets ----------------------------------------------


def test_degrade_policy_serves_damaged_shard_via_full_scan(
    saved_sharded, schema, query_text, reference_rows
) -> None:
    """Under `--degrade`, a shard with a corrupt regions.json still
    answers (full scan of its own slice), so the merged rows are complete."""
    victim = sorted((saved_sharded / "shards").iterdir())[3]
    (victim / "regions.json").write_text("{ torn", encoding="utf-8")
    engine = ShardedEngine.from_saved(
        schema, saved_sharded, policy=DegradationPolicy.degrade()
    )
    result = engine.query(query_text)
    assert result.canonical_rows() == reference_rows
    assert result.stats.healthy_shards == 8
    codes = {warning.code for warning in result.warnings}
    assert "degraded-full-scan" in codes  # re-tagged from the shard
    record = [
        r for r in result.stats.to_dict()["shards"]
        if r["shard"] == engine.shard_names[3]
    ][0]
    assert record["status"] == "ok"
    assert record["strategy"] == "full-scan"


def test_impossible_budget_fails_every_shard(schema, corpus_text, query_text) -> None:
    engine = ShardedEngine.split(
        schema, corpus_text, 4, policy=DegradationPolicy.strict()
    )
    # Strict policy raises BudgetExceededError inside every shard; all
    # fail -> the whole query raises (nothing healthy to return).
    with pytest.raises(ShardFailedError, match="no shard produced a result"):
        engine.query(query_text, budget=ResourceBudget(max_regions=1))


def test_generous_budget_is_metered_per_shard(
    schema, corpus_text, query_text, reference_rows
) -> None:
    engine = ShardedEngine.split(
        schema, corpus_text, 4, policy=DegradationPolicy.strict()
    )
    # Each shard gets its own meter: a cap any single shard fits under
    # passes even though the corpus-wide total would exceed it.
    result = engine.query(query_text, budget=ResourceBudget(max_regions=10_000))
    assert result.canonical_rows() == reference_rows


def test_shard_names_must_be_unique(schema, corpus_text) -> None:
    with pytest.raises(ValueError, match="duplicate"):
        ShardedEngine.from_texts(
            schema, [corpus_text, corpus_text], names=["same", "same"]
        )


# -- explain / analyze ---------------------------------------------------------


def test_explain_lists_the_shard_roster(sharded_engine, query_text) -> None:
    text = sharded_engine.explain(query_text)
    assert "shards:    8" in text
    for name in sharded_engine.shard_names:
        assert name in text


def test_analyze_embeds_per_shard_stats(sharded_engine, query_text) -> None:
    analysis = sharded_engine.analyze(query_text)
    data = analysis.to_dict()
    assert data["stats"]["strategy"] == "sharded"
    assert len(data["stats"]["shards"]) == 8
    assert data["nodes"]  # per-node actuals from a healthy shard
    rendered = analysis.render()
    assert "shard-query" in rendered
