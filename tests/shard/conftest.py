"""Fixtures for the sharded-execution suite: a bibtex corpus, its
single-engine reference answer, and a saved 8-shard index."""

from __future__ import annotations

import pytest

from repro.core.engine import FileQueryEngine
from repro.shard import ShardedEngine
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

N_SHARDS = 8


@pytest.fixture(scope="module")
def schema():
    return bibtex_schema()


@pytest.fixture(scope="module")
def corpus_text() -> str:
    return generate_bibtex(entries=40, seed=11)


@pytest.fixture(scope="module")
def query_text() -> str:
    return 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


@pytest.fixture(scope="module")
def reference_rows(schema, corpus_text, query_text):
    """The answer an unsharded engine gives over the whole corpus."""
    result = FileQueryEngine(schema, corpus_text).query(query_text)
    assert result.rows, "fixture query must match something"
    return result.canonical_rows()


@pytest.fixture
def sharded_engine(schema, corpus_text) -> ShardedEngine:
    return ShardedEngine.split(schema, corpus_text, N_SHARDS)


@pytest.fixture
def saved_sharded(tmp_path, schema, corpus_text):
    """A saved 8-shard index directory."""
    directory = tmp_path / "sidx"
    ShardedEngine.split(schema, corpus_text, N_SHARDS).save(directory)
    return directory
