"""Stragglers under the scatter-gather: hung shards are abandoned at the
request's end-to-end deadline (partial result, not a hang), the per-shard
budget is clamped to the remaining time at dispatch, and opt-in hedged
reads re-dispatch a slow shard and let the first finished attempt win."""

from __future__ import annotations

import time

import pytest

from repro.errors import BudgetExceededError, ShardFailedError
from repro.resilience import (
    PARTIAL_RESULT,
    SHARD_HEDGED,
    SHARD_TIMEOUT,
    HungShard,
    ResourceBudget,
    SlowShard,
)
from repro.shard import ShardedEngine

from tests.shard.conftest import N_SHARDS


# -- hung shards under a deadline ----------------------------------------------


def test_hung_shard_returns_partial_result_within_twice_the_deadline(
    schema, corpus_text, query_text, reference_rows
) -> None:
    # The acceptance bar of the chaos harness, as a pinned test: a shard
    # whose I/O hangs far past the request deadline must not hang the
    # request.  The gather abandons it at deadline + grace and flags the
    # loss; total wall clock stays under 2x the 250ms deadline.
    fault = HungShard(hang_s=30.0, shard="shard3")
    engine = ShardedEngine.split(
        schema, corpus_text, N_SHARDS, fault_injector=fault
    )
    started = time.perf_counter()
    result = engine.query(query_text, budget=ResourceBudget(deadline_s=0.25))
    elapsed = time.perf_counter() - started
    assert elapsed < 0.5, f"hung shard stalled the request for {elapsed:.3f}s"
    codes = {warning.code for warning in result.warnings}
    assert SHARD_TIMEOUT in codes
    assert PARTIAL_RESULT in codes
    assert result.canonical_rows() <= reference_rows  # no invented rows
    assert result.stats.healthy_shards == N_SHARDS - 1
    # Abandonment released the hung attempt so its thread fails fast
    # instead of holding the pool slot for the full 30s ceiling.
    assert fault.released.is_set()


def test_abandoned_shard_is_failed_in_stats(
    schema, corpus_text, query_text
) -> None:
    fault = HungShard(hang_s=30.0, shard="shard0")
    engine = ShardedEngine.split(
        schema, corpus_text, N_SHARDS, fault_injector=fault
    )
    result = engine.query(query_text, budget=ResourceBudget(deadline_s=0.2))
    record = next(
        r for r in result.stats.to_dict()["shards"] if r["shard"] == "shard0"
    )
    assert record["status"] == "failed"


# -- per-shard deadline clamped at dispatch ------------------------------------


def test_shard_budget_is_clamped_to_remaining_time(
    sharded_engine, query_text
) -> None:
    # A budget whose absolute deadline was minted long ago: at dispatch,
    # every shard's deadline_s is rewritten to the remaining time (zero),
    # so the shards trip immediately — the generous 5s *relative* window
    # must never re-arm at the dispatch boundary.
    stamped = ResourceBudget(deadline_s=5.0).started(
        now=time.perf_counter() - 10.0
    )
    started = time.perf_counter()
    with pytest.raises(ShardFailedError) as excinfo:
        sharded_engine.query(query_text, budget=stamped)
    elapsed = time.perf_counter() - started
    assert elapsed < 2.0, "an expired budget must fail fast, not run to 5s"
    # The clamp is visible: the shard reports the window it actually got
    # (the remaining time), not the original relative deadline.
    cause = excinfo.value.cause
    assert isinstance(cause, BudgetExceededError)
    assert cause.resource == "wall_clock"
    assert cause.limit < 5.0


# -- hedged reads --------------------------------------------------------------


def test_hedged_read_beats_a_slow_shard(
    schema, corpus_text, query_text, reference_rows
) -> None:
    # One shard is slow only on its *first* attempt's thread — but the
    # injected delay applies per attempt here, so instead assert on the
    # contract: the hedge fires, someone wins, rows stay byte-identical.
    fault = SlowShard(delay_s=0.25, shard="shard2")
    engine = ShardedEngine.split(
        schema, corpus_text, N_SHARDS, fault_injector=fault
    )
    result = engine.query(query_text, hedge_after_s=0.03)
    assert result.canonical_rows() == reference_rows  # hedging never loses rows
    codes = {warning.code for warning in result.warnings}
    assert codes == {SHARD_HEDGED}
    assert result.stats.healthy_shards == N_SHARDS
    hedged = next(
        w for w in result.warnings if w.code == SHARD_HEDGED
    )
    assert hedged.detail["shard"] == "shard2"
    assert hedged.detail["winner"] in ("primary", "hedge")


def test_engine_wide_hedging_default(
    schema, corpus_text, query_text, reference_rows
) -> None:
    fault = SlowShard(delay_s=0.25, shard="shard5")
    engine = ShardedEngine.split(
        schema,
        corpus_text,
        N_SHARDS,
        fault_injector=fault,
        hedge_after_s=0.03,
    )
    result = engine.query(query_text)
    assert result.canonical_rows() == reference_rows
    assert {w.code for w in result.warnings} == {SHARD_HEDGED}


def test_healthy_shards_never_hedge(
    schema, corpus_text, query_text, reference_rows, sharded_engine
) -> None:
    # A generous hedge threshold over a healthy engine: no attempt runs
    # long enough to trigger it, so no hedges and no warnings.
    result = sharded_engine.query(query_text, hedge_after_s=5.0)
    assert result.canonical_rows() == reference_rows
    assert result.warnings == []


def test_negative_hedge_threshold_rejected(schema, corpus_text) -> None:
    with pytest.raises(ValueError):
        ShardedEngine.split(schema, corpus_text, 2, hedge_after_s=-0.1)


def test_hedge_annotated_in_trace(schema, corpus_text, query_text) -> None:
    fault = SlowShard(delay_s=0.25, shard="shard1")
    engine = ShardedEngine.split(
        schema, corpus_text, N_SHARDS, fault_injector=fault
    )
    result = engine.query(query_text, hedge_after_s=0.03)
    assert result.trace is not None
    spans = [
        span
        for span in result.trace.spans()
        if span.metrics.get("hedged") is True
    ]
    assert spans, "the hedged shard's span should be annotated"
    assert all(span.metrics.get("winner") for span in spans)
