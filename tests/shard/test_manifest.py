"""Root shard manifests (`shard/manifest.py`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import IndexCorruptError, IndexNotFoundError
from repro.shard import (
    ShardEntry,
    ShardManifest,
    is_sharded_index,
    load_shard_manifest,
    save_shard_manifest,
    shard_slug,
)


def _manifest(n: int = 3) -> ShardManifest:
    return ShardManifest(
        shards=tuple(
            ShardEntry(
                name=f"shard{i}",
                directory=f"shards/{shard_slug(f'shard{i}', i)}",
                corpus_fingerprint=f"sha256:{i:032x}",
                source={"path": f"/data/part{i}.bib"} if i % 2 else None,
            )
            for i in range(n)
        ),
        schema_fingerprint="Ref_Set:deadbeef",
    )


def test_round_trip(tmp_path) -> None:
    manifest = _manifest()
    save_shard_manifest(tmp_path, manifest)
    loaded = load_shard_manifest(tmp_path)
    assert loaded.shards == manifest.shards
    assert loaded.schema_fingerprint == "Ref_Set:deadbeef"


def test_is_sharded_index_discriminates(tmp_path) -> None:
    assert not is_sharded_index(tmp_path)  # empty dir
    save_shard_manifest(tmp_path, _manifest())
    assert is_sharded_index(tmp_path)
    # A single-index manifest (no kind marker) is not a sharded one.
    single = tmp_path / "single"
    single.mkdir()
    (single / "manifest.json").write_text(
        json.dumps({"format_version": 2, "checksums": {}}), encoding="utf-8"
    )
    assert not is_sharded_index(single)


def test_missing_manifest_is_not_found(tmp_path) -> None:
    with pytest.raises(IndexNotFoundError):
        load_shard_manifest(tmp_path / "nowhere")


def test_single_index_manifest_is_not_found(tmp_path) -> None:
    (tmp_path / "manifest.json").write_text(
        json.dumps({"format_version": 2, "checksums": {}}), encoding="utf-8"
    )
    with pytest.raises(IndexNotFoundError):
        load_shard_manifest(tmp_path)


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all {",
        json.dumps(["a", "list"]),
        json.dumps({"kind": "sharded", "shard_format_version": 99, "shards": [{}]}),
        json.dumps({"kind": "sharded", "shard_format_version": 1, "shards": []}),
        json.dumps({"kind": "sharded", "shard_format_version": 1, "shards": [{"name": "x"}]}),
    ],
)
def test_damaged_manifests_are_corrupt(tmp_path, payload) -> None:
    (tmp_path / "manifest.json").write_text(payload, encoding="utf-8")
    with pytest.raises(IndexCorruptError):
        load_shard_manifest(tmp_path)


def test_duplicate_shard_names_are_corrupt(tmp_path) -> None:
    entry = {
        "name": "dup",
        "directory": "shards/000-dup",
        "corpus_fingerprint": "sha256:0",
    }
    (tmp_path / "manifest.json").write_text(
        json.dumps(
            {"kind": "sharded", "shard_format_version": 1, "shards": [entry, entry]}
        ),
        encoding="utf-8",
    )
    with pytest.raises(IndexCorruptError):
        load_shard_manifest(tmp_path)


def test_shard_slug_is_filesystem_safe() -> None:
    assert shard_slug("shard0", 0) == "000-shard0"
    slug = shard_slug("/data/my corpus (v2).bib", 12)
    assert slug.startswith("012-")
    assert "/" not in slug and " " not in slug and "(" not in slug
    assert shard_slug("///", 1).startswith("001-")  # never empty
