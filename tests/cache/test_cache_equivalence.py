"""Cache transparency: results are byte-identical with caching on or off.

Seeded-random property test over the E1–E7 benchmark query suite (bibtex,
sgml, and log workloads).  For every query, an engine with ``CacheConfig()``
and an engine with ``CacheConfig.disabled()`` over the same corpus must
return identical ``canonical_rows()`` — in every interleaving order — and
a second identical query on the cached engine must report
``bytes_parsed == 0``.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import CacheConfig
from repro.core.engine import FileQueryEngine
from repro.index.config import IndexConfig
from repro.workloads.bibtex import (
    CHANG_ANY_QUERY,
    CHANG_AUTHOR_QUERY,
    SELF_EDITED_QUERY,
    bibtex_schema,
    generate_bibtex,
)
from repro.workloads.logs import (
    ERROR_QUERY,
    FAILED_GETS_QUERY,
    STORAGE_ERRORS_QUERY,
    generate_log,
    log_schema,
)
from repro.workloads.sgml import COMPACTION_QUERY, generate_sgml, sgml_schema

# The E1–E7 query suite, grouped by the workload each benchmark runs on.
BIBTEX_QUERIES = [
    CHANG_AUTHOR_QUERY,  # E1/E2/E4/E8: indexed exact match
    CHANG_ANY_QUERY,  # E5: path variable (*X) closure
    SELF_EDITED_QUERY,  # E7: join
    'SELECT r FROM Reference r WHERE r.Year = "1982"',  # E2: unindexable scan
    'SELECT r FROM Reference r WHERE r.Publisher = "SIAM" OR r.Publisher = "ACM"',
    'SELECT r.Authors.Name.Last_Name FROM Reference r WHERE r.Year = "1982"',
]
SGML_QUERIES = [
    'SELECT d FROM Document d WHERE d.*X.ParaText = "nesting"',  # E6: closure
    COMPACTION_QUERY,
]
LOG_QUERIES = [ERROR_QUERY, STORAGE_ERRORS_QUERY, FAILED_GETS_QUERY]


def _engine_pair(schema, text, config=None):
    """Same corpus, caching on vs. off."""
    return (
        FileQueryEngine(schema, text, config, cache_config=CacheConfig()),
        FileQueryEngine(schema, text, config, cache_config=CacheConfig.disabled()),
    )


@pytest.fixture(scope="module")
def bibtex_pairs():
    text = generate_bibtex(entries=40, seed=11, self_edited_rate=0.3)
    full = _engine_pair(bibtex_schema(), text)
    partial = _engine_pair(
        bibtex_schema(), text, IndexConfig.partial({"Reference", "Key", "Last_Name"})
    )
    return [full, partial]


@pytest.fixture(scope="module")
def sgml_pair():
    return _engine_pair(sgml_schema(), generate_sgml(documents=6, depth=4, seed=5))


@pytest.fixture(scope="module")
def log_pair():
    return _engine_pair(log_schema(), generate_log(entries=100, seed=9))


def _suite(bibtex_pairs, sgml_pair, log_pair):
    for pair in bibtex_pairs:
        yield from ((pair, query) for query in BIBTEX_QUERIES)
    yield from ((sgml_pair, query) for query in SGML_QUERIES)
    yield from ((log_pair, query) for query in LOG_QUERIES)


class TestCacheTransparency:
    def test_rows_identical_with_cache_on_and_off(self, bibtex_pairs, sgml_pair, log_pair):
        cases = list(_suite(bibtex_pairs, sgml_pair, log_pair))
        # Seeded-random interleaving: cache state accumulated by earlier
        # queries must never leak into later answers.
        random.Random(1994).shuffle(cases)
        for (cached, uncached), query in cases:
            hot = cached.query(query)
            cold = uncached.query(query)
            assert hot.canonical_rows() == cold.canonical_rows(), query
            assert hot.stats.strategy == cold.stats.strategy, query

    def test_second_identical_query_parses_zero_bytes(
        self, bibtex_pairs, sgml_pair, log_pair
    ):
        for (cached, _), query in _suite(bibtex_pairs, sgml_pair, log_pair):
            first = cached.query(query)
            second = cached.query(query)
            assert second.canonical_rows() == first.canonical_rows(), query
            assert second.stats.bytes_parsed == 0, query

    def test_disabled_engine_always_pays_parse_cost(self, bibtex_pairs):
        (_, uncached) = bibtex_pairs[1]  # partial index → candidate parsing
        first = uncached.query(CHANG_AUTHOR_QUERY)
        second = uncached.query(CHANG_AUTHOR_QUERY)
        assert second.stats.bytes_parsed == first.stats.bytes_parsed > 0
        assert second.stats.cache_hits == 0
        assert second.stats.bytes_parse_avoided == 0

    def test_warm_repeat_reports_cache_hits(self, bibtex_pairs):
        (cached, _) = bibtex_pairs[1]
        cached.query(CHANG_AUTHOR_QUERY)
        repeat = cached.query(CHANG_AUTHOR_QUERY)
        assert repeat.stats.cache_hits > 0
        assert repeat.stats.bytes_parse_avoided > 0
