"""The LRU caches themselves, and the shared evaluator cache."""

from repro.algebra.ast import parse_expression
from repro.algebra.evaluator import Evaluator
from repro.algebra.region import Instance, Region, RegionSet
from repro.cache import (
    CacheConfig,
    CacheStats,
    CandidateParseMemo,
    ParseOutcome,
    RegionCache,
)


def _instance() -> Instance:
    return Instance(
        {
            "A": RegionSet.of((0, 20), (30, 50)),
            "B": RegionSet.of((2, 8), (32, 40)),
            "C": RegionSet.of((3, 5)),
        }
    )


class TestRegionCacheLRU:
    def test_hit_and_miss_accounting(self):
        cache = RegionCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", RegionSet.of((0, 1)))
        assert cache.get("k") == RegionSet.of((0, 1))
        assert cache.stats.expression_misses == 1
        assert cache.stats.expression_hits == 1

    def test_eviction_is_least_recently_used(self):
        cache = RegionCache(max_entries=2)
        cache.put("a", RegionSet.of((0, 1)))
        cache.put("b", RegionSet.of((1, 2)))
        cache.get("a")  # refresh a
        cache.put("c", RegionSet.of((2, 3)))  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.expression_evictions == 1

    def test_shared_stats_object(self):
        stats = CacheStats()
        cache = RegionCache(max_entries=2, stats=stats)
        cache.get("missing")
        assert stats.expression_misses == 1


class TestParseMemoLRU:
    def test_hit_credits_bytes_avoided(self):
        memo = CandidateParseMemo(max_entries=8)
        key = CandidateParseMemo.key("Reference", Region(0, 10), (True,))
        assert memo.get(key) is None
        memo.put(key, ParseOutcome(value=None, bytes_cost=10, values_built=0))
        outcome = memo.get(key)
        assert outcome is not None and outcome.value is None
        assert memo.stats.parse_hits == 1
        assert memo.stats.bytes_parse_avoided == 10

    def test_eviction_bound_holds(self):
        memo = CandidateParseMemo(max_entries=3)
        for index in range(5):
            key = CandidateParseMemo.key("R", Region(index, index + 1), (True,))
            memo.put(key, ParseOutcome(value=None, bytes_cost=1, values_built=0))
        assert len(memo) == 3
        assert memo.stats.parse_evictions == 2


class TestEvaluatorSharedCache:
    def test_shared_cache_spans_evaluators(self):
        cache = RegionCache(max_entries=16)
        expression = parse_expression("A > B")
        first = Evaluator(_instance(), region_cache=cache)
        result = first.evaluate(expression)
        second = Evaluator(_instance(), region_cache=cache)
        assert second.evaluate(expression) == result
        # The second evaluator did no inclusion work at all.
        assert second.counters.operations["⊃"] == 0
        assert cache.stats.expression_hits >= 1

    def test_commuted_plan_hits_same_entry(self):
        cache = RegionCache(max_entries=16)
        Evaluator(_instance(), region_cache=cache).evaluate(parse_expression("(A > B) | C"))
        second = Evaluator(_instance(), region_cache=cache)
        commuted = second.evaluate(parse_expression("C | (A > B)"))
        assert second.counters.operations["∪"] == 0
        assert commuted == Evaluator(_instance()).evaluate(parse_expression("(A > B) | C"))

    def test_results_identical_with_and_without_cache(self):
        expression = parse_expression("(A > B) & ((A > B) | (A > C)) - C")
        cached = Evaluator(_instance(), region_cache=RegionCache()).evaluate(expression)
        plain = Evaluator(_instance()).evaluate(expression)
        assert cached == plain


class TestCacheConfig:
    def test_disabled_turns_everything_off(self):
        config = CacheConfig.disabled()
        assert not config.caches_expressions
        assert not config.caches_parses
        assert not config.caches_plans
        assert not config.caches_full_scan_tree
        assert config.describe() == "disabled"

    def test_zero_sizes_disable_individual_layers(self):
        config = CacheConfig(expression_cache_size=0, parse_memo_size=0)
        assert not config.caches_expressions
        assert not config.caches_parses
        assert config.caches_plans

    def test_describe_mentions_bounds(self):
        text = CacheConfig().describe()
        assert "expressions≤256" in text
        assert "parses≤4096" in text
