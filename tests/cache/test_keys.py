"""Canonical structural keys for region expressions."""

from repro.algebra.ast import (
    difference,
    including,
    intersect,
    name,
    parse_expression,
    select,
    union,
)
from repro.cache.keys import canonical_key


class TestCommutativeNormalisation:
    def test_union_operand_order_is_irrelevant(self):
        assert canonical_key(union("A", "B")) == canonical_key(union("B", "A"))

    def test_intersection_operand_order_is_irrelevant(self):
        assert canonical_key(intersect("A", "B")) == canonical_key(intersect("B", "A"))

    def test_associative_chains_flatten(self):
        left_grouped = union(union("A", "B"), "C")
        right_grouped = union("A", union("B", "C"))
        rotated = union("C", union("B", "A"))
        assert canonical_key(left_grouped) == canonical_key(right_grouped)
        assert canonical_key(left_grouped) == canonical_key(rotated)

    def test_idempotent_duplicates_collapse(self):
        assert canonical_key(union("A", "A")) == canonical_key(name("A"))
        assert canonical_key(intersect("A", "A")) == canonical_key(name("A"))

    def test_union_and_intersection_do_not_collide(self):
        assert canonical_key(union("A", "B")) != canonical_key(intersect("A", "B"))

    def test_parsed_and_built_expressions_agree(self):
        parsed = parse_expression("(A | B) | C")
        built = union("C", union("A", "B"))
        assert canonical_key(parsed) == canonical_key(built)


class TestNonCommutativeOperators:
    def test_difference_keeps_operand_order(self):
        assert canonical_key(difference("A", "B")) != canonical_key(difference("B", "A"))

    def test_inclusion_keeps_operand_order(self):
        assert canonical_key(including("A", "B")) != canonical_key(including("B", "A"))

    def test_inclusion_operators_are_distinct(self):
        forward = parse_expression("A > B")
        direct = parse_expression("A >d B")
        assert canonical_key(forward) != canonical_key(direct)

    def test_selection_mode_and_word_distinguish(self):
        exact = select("A", "x", mode="exact")
        contains = select("A", "x", mode="contains")
        other_word = select("A", "y", mode="exact")
        keys = {canonical_key(exact), canonical_key(contains), canonical_key(other_word)}
        assert len(keys) == 3

    def test_keys_are_hashable_and_stable(self):
        expression = parse_expression(
            "Reference > Authors > sigma[Chang](Last_Name) | Reference > Editors > Name"
        )
        assert canonical_key(expression) == canonical_key(expression)
        assert hash(canonical_key(expression)) == hash(canonical_key(expression))

    def test_nested_commutative_under_inclusion_normalises(self):
        left = parse_expression("Reference > (A | B)")
        right = parse_expression("Reference > (B | A)")
        assert canonical_key(left) == canonical_key(right)
