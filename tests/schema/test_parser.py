"""The region-capturing parser."""

import pytest

from repro.algebra.counters import OperationCounters
from repro.errors import ParseError
from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    SeqRule,
    StarRule,
    TNumber,
    TQuoted,
    TUntil,
    TWord,
)
from repro.schema.parser import Parser


def bracket_grammar() -> Grammar:
    return Grammar(
        [
            StarRule("S", NonTerminal("A")),
            SeqRule("A", [Literal("["), NonTerminal("B"), Literal("]")]),
            SeqRule("B", [TWord()]),
        ],
        start="S",
    )


class TestBasicParsing:
    def test_parse_sequence_and_star(self):
        parser = Parser(bracket_grammar())
        tree = parser.parse("[abc] [def]")
        assert tree.symbol == "S"
        assert [child.symbol for child in tree.children] == ["A", "A"]

    def test_regions_are_absolute_offsets(self):
        parser = Parser(bracket_grammar())
        text = "  [abc] [def]"
        tree = parser.parse(text)
        spans = dict()
        for symbol, start, end in tree.nonterminal_spans():
            spans.setdefault(symbol, []).append(text[start:end])
        assert spans["A"] == ["[abc]", "[def]"]
        assert spans["B"] == ["abc", "def"]

    def test_empty_star(self):
        parser = Parser(bracket_grammar())
        tree = parser.parse("")
        assert tree.children == ()
        assert tree.start == tree.end

    def test_trailing_garbage_raises(self):
        parser = Parser(bracket_grammar())
        with pytest.raises(ParseError):
            parser.parse("[abc] junk")

    def test_require_all_false_allows_trailing(self):
        parser = Parser(bracket_grammar())
        tree = parser.parse("[abc] ???", require_all=False)
        assert len(tree.children) == 1

    def test_parse_error_reports_position_and_symbol(self):
        grammar = Grammar(
            [SeqRule("A", [Literal("("), TWord(), Literal(")")])], start="A"
        )
        with pytest.raises(ParseError) as excinfo:
            Parser(grammar).parse("(abc")
        assert excinfo.value.position == 4

    def test_counters_record_bytes_scanned(self):
        parser = Parser(bracket_grammar())
        counters = OperationCounters()
        parser.parse("[abc] [def]", counters=counters)
        assert counters.bytes_scanned == len("[abc] [def]")


class TestRegionSliceParsing:
    def test_parse_region_as_inner_symbol(self):
        parser = Parser(bracket_grammar())
        text = "[abc] [def]"
        node = parser.parse(text, symbol="A", start=6, end=11)
        assert node.symbol == "A"
        assert (node.start, node.end) == (6, 11)

    def test_slice_with_trailing_content_raises(self):
        parser = Parser(bracket_grammar())
        with pytest.raises(ParseError):
            parser.parse("[abc] [def]", symbol="A", start=0, end=11)


class TestTerminals:
    def test_quoted(self):
        grammar = Grammar([SeqRule("Q", [TQuoted()])], start="Q")
        node = Parser(grammar).parse('"hello world"')
        leaf = node.children[0]
        assert leaf.text == "hello world"
        assert (leaf.start, leaf.end) == (1, 12)

    def test_quoted_missing_close(self):
        grammar = Grammar([SeqRule("Q", [TQuoted()])], start="Q")
        with pytest.raises(ParseError):
            Parser(grammar).parse('"oops')

    def test_number(self):
        grammar = Grammar([SeqRule("N", [TNumber()])], start="N")
        node = Parser(grammar).parse("  1982 ")
        assert node.children[0].text == "1982"

    def test_number_requires_digits(self):
        grammar = Grammar([SeqRule("N", [TNumber()])], start="N")
        with pytest.raises(ParseError):
            Parser(grammar).parse("abc")

    def test_until_strips_whitespace(self):
        grammar = Grammar([SeqRule("T", [TUntil('"')]), ], start="T")
        node = Parser(grammar).parse("  some text  ", require_all=False)
        leaf = node.children[0]
        assert leaf.text == "some text"

    def test_until_multiple_stops_takes_earliest(self):
        grammar = Grammar([SeqRule("T", [TUntil((";", '"'))])], start="T")
        node = Parser(grammar).parse('abc;def"', require_all=False)
        assert node.children[0].text == "abc"

    def test_until_empty_rejected_unless_allowed(self):
        strict = Grammar([SeqRule("T", [TUntil(";")])], start="T")
        with pytest.raises(ParseError):
            Parser(strict).parse(";", require_all=False)
        lenient = Grammar([SeqRule("T", [TUntil(";", allow_empty=True)])], start="T")
        node = Parser(lenient).parse(";", require_all=False)
        assert node.children[0].text == ""

    def test_word_custom_extra(self):
        grammar = Grammar([SeqRule("W", [TWord(extra=":")])], start="W")
        node = Parser(grammar).parse("10:15:03")
        assert node.children[0].text == "10:15:03"


class TestAlternativesAndSeparators:
    def test_ordered_alternatives(self):
        grammar = Grammar(
            [
                SeqRule("A", [Literal("x"), NonTerminal("B")]),
                SeqRule("A", [Literal("y"), NonTerminal("B")]),
                SeqRule("B", [TWord()]),
            ],
            start="A",
        )
        parser = Parser(grammar)
        assert parser.parse("x foo").children[0].children[0].text == "foo"
        assert parser.parse("y bar").children[0].children[0].text == "bar"

    def test_star_with_separator(self):
        grammar = Grammar(
            [
                StarRule("L", NonTerminal("W"), separator=Literal("and")),
                SeqRule("W", [TWord()]),
            ],
            start="L",
        )
        tree = Parser(grammar).parse("a and b and c")
        assert [child.children[0].text for child in tree.children] == ["a", "b", "c"]

    def test_star_min_count(self):
        grammar = Grammar(
            [
                StarRule("L", NonTerminal("W"), min_count=1),
                SeqRule("W", [TWord()]),
            ],
            start="L",
        )
        with pytest.raises(ParseError):
            Parser(grammar).parse("")

    def test_separator_not_consumed_on_dangling(self):
        grammar = Grammar(
            [
                SeqRule("S", [NonTerminal("L"), Literal("and stop")]),
                StarRule("L", NonTerminal("W"), separator=Literal("and")),
                SeqRule("W", [TNumber()]),
            ],
            start="S",
        )
        # "1 and 2 and stop": the final "and" belongs to "and stop" — the
        # star must not consume a separator whose item then fails.
        tree = Parser(grammar).parse("1 and 2 and stop")
        words = [child.children[0].text for child in tree.children[0].children]
        assert words == ["1", "2"]


class TestParseNode:
    def test_walk_and_child_map(self):
        parser = Parser(bracket_grammar())
        tree = parser.parse("[abc]")
        symbols = [node.symbol for node in tree.walk()]
        assert symbols == ["S", "A", "B", "#word"]
        first_a = tree.children[0]
        assert set(first_a.child_map()) == {"B"}

    def test_is_terminal(self):
        parser = Parser(bracket_grammar())
        tree = parser.parse("[abc]")
        leaves = [node for node in tree.walk() if node.is_terminal]
        assert len(leaves) == 1
        assert leaves[0].text == "abc"
