"""The anchored trie used by the full-scan pipeline."""

from repro.schema.pushdown import AnchoredTrie, PathTrie


class TestAnchoredTrie:
    def test_keeps_everything_above_the_anchor(self):
        trie = AnchoredTrie(anchor="Reference", inner=PathTrie.from_paths([["Key"]]))
        assert trie.wants("Anything")
        # Descending through non-anchor structure stays anchored.
        assert isinstance(trie.child("Wrapper"), AnchoredTrie)

    def test_applies_inner_at_anchor(self):
        inner = PathTrie.from_paths([["Key"]])
        trie = AnchoredTrie(anchor="Reference", inner=inner)
        below = trie.child("Reference")
        assert below is inner
        assert below.wants("Key")
        assert not below.wants("Abstract")

    def test_integration_with_instantiation(self):
        from repro.schema.pushdown import InstantiationStats
        from repro.workloads.bibtex import bibtex_schema, generate_bibtex

        schema = bibtex_schema()
        tree = schema.parse(generate_bibtex(entries=4, seed=0))
        trie = AnchoredTrie(
            anchor="Reference", inner=PathTrie.from_paths([["Key"]])
        )
        stats = InstantiationStats()
        root = schema.instantiate(tree, needed=trie, stats=stats)
        entries = list(root)
        assert len(entries) == 4
        for entry in entries:
            assert entry.has("Key")
            assert not entry.has("Abstract")
        assert stats.values_skipped > 0
