"""Grammars with alternative rules (disjunctive non-terminals).

Footnote 5 of the paper: "When considering general context-free grammars,
disjunctive types will naturally arise from non terminals defined
disjunctively."  A mixed file with two entry formats exercises the whole
pipeline over a choice grammar.
"""

import pytest

from repro.core.engine import FileQueryEngine
from repro.db.values import canonical
from repro.rig.derive import derive_full_rig
from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    SeqRule,
    StarRule,
    TUntil,
    TWord,
)
from repro.schema.structuring import StructuringSchema

MIXED_TEXT = (
    '@BOOK{ key1, AUTHOR = "Chang" }\n'
    '@MISC{ key2, NOTE = "lost manuscript" }\n'
    '@BOOK{ key3, AUTHOR = "Corliss" }\n'
    '@MISC{ key4, NOTE = "Chang archive" }\n'
)


def mixed_grammar() -> Grammar:
    return Grammar(
        [
            StarRule("Entries", NonTerminal("Entry")),
            SeqRule(
                "Entry",
                [
                    Literal("@BOOK{"),
                    NonTerminal("Key"),
                    Literal(","),
                    Literal("AUTHOR"), Literal("="), Literal('"'),
                    NonTerminal("Author"),
                    Literal('"'),
                    Literal("}"),
                ],
            ),
            SeqRule(
                "Entry",
                [
                    Literal("@MISC{"),
                    NonTerminal("Key"),
                    Literal(","),
                    Literal("NOTE"), Literal("="), Literal('"'),
                    NonTerminal("Note"),
                    Literal('"'),
                    Literal("}"),
                ],
            ),
            SeqRule("Key", [TWord()]),
            SeqRule("Author", [TWord()]),
            SeqRule("Note", [TUntil('"')]),
        ],
        start="Entries",
    )


@pytest.fixture(scope="module")
def schema() -> StructuringSchema:
    return StructuringSchema(mixed_grammar(), classes={"Entry"}, name="Mixed")


@pytest.fixture(scope="module")
def engine(schema) -> FileQueryEngine:
    return FileQueryEngine(schema, MIXED_TEXT)


class TestParsing:
    def test_both_alternatives_parse(self, schema):
        image = schema.database_image(MIXED_TEXT)
        entries = list(image.root)
        assert len(entries) == 4
        with_author = [entry for entry in entries if entry.has("Author")]
        with_note = [entry for entry in entries if entry.has("Note")]
        assert len(with_author) == 2
        assert len(with_note) == 2

    def test_disjunctive_attributes(self, schema):
        image = schema.database_image(MIXED_TEXT)
        for entry in image.root:
            assert entry.has("Key")
            assert entry.has("Author") != entry.has("Note")


class TestRig:
    def test_edges_from_both_alternatives(self, schema):
        rig = derive_full_rig(schema.grammar, include_root=False)
        assert rig.has_edge("Entry", "Key")
        assert rig.has_edge("Entry", "Author")
        assert rig.has_edge("Entry", "Note")


class TestQuerying:
    @pytest.mark.parametrize(
        "query",
        [
            'SELECT e FROM Entry e WHERE e.Author = "Chang"',
            'SELECT e FROM Entry e WHERE e.Note = "lost manuscript"',
            'SELECT e FROM Entry e WHERE e.*X.Key = "key2"',
            'SELECT e.Key FROM Entry e WHERE e.Note = "Chang archive"',
            "SELECT e FROM Entry e WHERE NOT e.Author = \"Chang\"",
        ],
    )
    def test_matches_baseline(self, engine, query):
        result = engine.query(query)
        baseline = engine.baseline_query(query)
        assert result.canonical_rows() == baseline.canonical_rows()

    def test_author_chang_does_not_match_note_chang(self, engine):
        result = engine.query('SELECT e.Key FROM Entry e WHERE e.Author = "Chang"')
        assert {str(canonical(row[0])) for row in result.rows} == {"key1"}

    def test_word_in_both_contexts(self, engine):
        # "Chang" appears as an author and inside a note: the region index
        # keeps the contexts apart.
        note_result = engine.query(
            'SELECT e.Key FROM Entry e WHERE e.Note LIKE "Chang*"'
        )
        assert {str(canonical(row[0])) for row in note_result.rows} == {"key4"}
