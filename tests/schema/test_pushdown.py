"""Query push-down into instantiation ([ACM93])."""

from repro.db.values import ObjectValue
from repro.schema.pushdown import InstantiationStats, PathTrie
from repro.workloads.bibtex import bibtex_schema, generate_bibtex


class TestPathTrie:
    def test_from_paths(self):
        trie = PathTrie.from_paths([["Authors", "Name"], ["Key"]])
        assert trie.wants("Authors")
        assert trie.wants("Key")
        assert not trie.wants("Abstract")
        below = trie.child("Authors")
        assert below is not None and below.wants("Name")

    def test_path_end_marks_subtree_needed(self):
        trie = PathTrie.from_paths([["Authors"]])
        below = trie.child("Authors")
        assert below is not None and below.all_below

    def test_none_step_marks_everything(self):
        trie = PathTrie.from_paths([["Authors", None]])
        below = trie.child("Authors")
        assert below is not None and below.all_below
        assert below.child("anything") is not None

    def test_everything(self):
        trie = PathTrie.everything()
        assert trie.wants("whatever")
        assert trie.child("x").wants("y")

    def test_empty_path_means_whole_value(self):
        trie = PathTrie.from_paths([[]])
        assert trie.all_below

    def test_is_empty(self):
        assert PathTrie().is_empty
        assert not PathTrie.everything().is_empty


class TestSelectiveInstantiation:
    def test_pruned_instantiation_builds_fewer_values(self):
        schema = bibtex_schema()
        text = generate_bibtex(entries=10, seed=1)
        tree = schema.parse(text)
        full_stats = InstantiationStats()
        schema.instantiate(tree, stats=full_stats)
        pruned_stats = InstantiationStats()
        trie = PathTrie.from_paths([["Key"]])
        schema.instantiate(tree, needed=trie, stats=pruned_stats)
        assert pruned_stats.values_built < full_stats.values_built / 3
        assert pruned_stats.values_skipped > 0

    def test_pruned_object_keeps_needed_attribute(self):
        schema = bibtex_schema()
        text = generate_bibtex(entries=3, seed=1)
        tree = schema.parse(text)
        trie = PathTrie.from_paths([["Key"]])
        root = schema.instantiate(tree, needed=trie)
        for reference in root:
            assert isinstance(reference, ObjectValue)
            assert reference.has("Key")
            assert not reference.has("Abstract")

    def test_full_instantiation_by_default(self):
        schema = bibtex_schema()
        text = generate_bibtex(entries=2, seed=1)
        tree = schema.parse(text)
        root = schema.instantiate(tree)
        for reference in root:
            assert reference.has("Abstract")
            assert reference.has("Authors")
