"""Grammar formalism."""

import pytest

from repro.errors import GrammarError
from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    SeqRule,
    StarRule,
    TNumber,
    TQuoted,
    TUntil,
    TWord,
    is_capturing,
)


def tiny_grammar() -> Grammar:
    return Grammar(
        [
            StarRule("S", NonTerminal("A")),
            SeqRule("A", [Literal("["), NonTerminal("B"), Literal("]")]),
            SeqRule("B", [TWord()]),
        ],
        start="S",
    )


class TestValidation:
    def test_valid_grammar(self):
        grammar = tiny_grammar()
        assert set(grammar.nonterminals) == {"S", "A", "B"}

    def test_missing_start(self):
        with pytest.raises(GrammarError):
            Grammar([SeqRule("A", [TWord()])], start="Z")

    def test_undefined_reference(self):
        with pytest.raises(GrammarError):
            Grammar([SeqRule("A", [NonTerminal("Ghost")])], start="A")

    def test_footnote_4_duplicate_nonterminal(self):
        with pytest.raises(GrammarError) as excinfo:
            Grammar(
                [
                    SeqRule("A", [NonTerminal("B"), NonTerminal("B")]),
                    SeqRule("B", [TWord()]),
                ],
                start="A",
            )
        assert "footnote 4" in str(excinfo.value)

    def test_empty_rhs_rejected(self):
        with pytest.raises(GrammarError):
            Grammar([SeqRule("A", [])], start="A")

    def test_empty_literal_rejected(self):
        with pytest.raises(GrammarError):
            Literal("")


class TestAccessors:
    def test_rules_for(self):
        grammar = tiny_grammar()
        assert len(grammar.rules_for("A")) == 1
        with pytest.raises(GrammarError):
            grammar.rules_for("Ghost")

    def test_contains(self):
        grammar = tiny_grammar()
        assert "A" in grammar
        assert "Ghost" not in grammar

    def test_iter_edges(self):
        grammar = tiny_grammar()
        assert set(grammar.iter_edges()) == {("S", "A"), ("A", "B")}

    def test_is_set_valued(self):
        grammar = tiny_grammar()
        assert grammar.is_set_valued("S")
        assert not grammar.is_set_valued("A")

    def test_alternatives_share_lhs(self):
        grammar = Grammar(
            [
                SeqRule("A", [Literal("x"), NonTerminal("B")]),
                SeqRule("A", [Literal("y"), NonTerminal("B")]),
                SeqRule("B", [TWord()]),
            ],
            start="A",
        )
        assert len(grammar.rules_for("A")) == 2


class TestCoincidence:
    def test_star_rule_is_coincidence_capable(self):
        grammar = tiny_grammar()
        assert ("S", "A") in set(grammar.coincidence_capable_edges())

    def test_literal_delimited_rule_is_not(self):
        grammar = tiny_grammar()
        assert ("A", "B") not in set(grammar.coincidence_capable_edges())

    def test_unit_rule_is_coincidence_capable(self):
        grammar = Grammar(
            [SeqRule("A", [NonTerminal("B")]), SeqRule("B", [TWord()])],
            start="A",
        )
        assert ("A", "B") in set(grammar.coincidence_capable_edges())


class TestSymbols:
    def test_is_capturing(self):
        assert not is_capturing(Literal("x"))
        assert is_capturing(TWord())
        assert is_capturing(TQuoted())
        assert is_capturing(TNumber())
        assert is_capturing(NonTerminal("A"))

    def test_tuntil_stops(self):
        assert TUntil('"').stops == ('"',)
        assert TUntil((";", '"')).stops == (";", '"')
