"""Structuring schemas: instantiation, transparency, type descriptions."""

import pytest

from repro.db.values import (
    AtomicValue,
    ObjectValue,
    SetValue,
    TupleValue,
    canonical,
)
from repro.errors import GrammarError
from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    SeqRule,
    StarRule,
    TWord,
)
from repro.schema.structuring import StructuringSchema
from repro.schema.types import (
    AtomicTypeDesc,
    ClassTypeDesc,
    SetTypeDesc,
    TupleTypeDesc,
)
from repro.workloads.bibtex import bibtex_schema


def pair_grammar() -> Grammar:
    return Grammar(
        [
            StarRule("Pairs", NonTerminal("Pair")),
            SeqRule(
                "Pair",
                [Literal("("), NonTerminal("K"), Literal(":"), NonTerminal("V"), Literal(")")],
            ),
            SeqRule("K", [TWord()]),
            SeqRule("V", [TWord()]),
        ],
        start="Pairs",
    )


class TestInstantiation:
    def test_natural_values(self):
        schema = StructuringSchema(pair_grammar(), classes={"Pair"})
        image = schema.database_image("(a:1) (b:2)")
        assert isinstance(image.root, SetValue)
        pair = sorted(image.root, key=lambda v: str(canonical(v)))[0]
        assert isinstance(pair, ObjectValue)
        assert pair.class_name == "Pair"
        assert pair.get("K") == AtomicValue("a", type_name="K")

    def test_tuple_when_not_a_class(self):
        schema = StructuringSchema(pair_grammar())
        image = schema.database_image("(a:1)")
        pair = list(image.root)[0]
        assert isinstance(pair, TupleValue)
        assert pair.type_name == "Pair"

    def test_atomic_passthrough_is_tagged(self):
        schema = StructuringSchema(pair_grammar())
        image = schema.database_image("(a:1)")
        pair = list(image.root)[0]
        assert pair.get("K").type_name == "K"

    def test_unknown_annotation_rejected(self):
        with pytest.raises(GrammarError):
            StructuringSchema(pair_grammar(), classes={"Ghost"})

    def test_list_valued(self):
        schema = StructuringSchema(pair_grammar(), list_valued={"Pairs"})
        image = schema.database_image("(a:1) (b:2)")
        from repro.db.values import ListValue

        assert isinstance(image.root, ListValue)

    def test_custom_action(self):
        def concat(node, child_values):
            return AtomicValue("+".join(str(v) for _, v in child_values), "Pair")

        schema = StructuringSchema(pair_grammar(), actions={"Pair": concat})
        image = schema.database_image("(a:1)")
        assert list(image.root)[0] == AtomicValue("a+1", "Pair")


class TestTransparency:
    def test_unit_rule_over_nonterminal_is_transparent(self):
        grammar = Grammar(
            [
                SeqRule("Wrapper", [NonTerminal("Inner")]),
                SeqRule("Inner", [NonTerminal("K"), NonTerminal("V")]),
                SeqRule("K", [TWord()]),
                SeqRule("V", [TWord()]),
            ],
            start="Wrapper",
        )
        schema = StructuringSchema(grammar)
        assert schema.is_transparent("Wrapper")
        assert not schema.is_transparent("Inner")
        assert not schema.is_transparent("K")  # terminal-backed, tagged

    def test_classes_are_never_transparent(self):
        grammar = Grammar(
            [
                SeqRule("Wrapper", [NonTerminal("Inner")]),
                SeqRule("Inner", [TWord()]),
            ],
            start="Wrapper",
        )
        schema = StructuringSchema(grammar, classes={"Wrapper"})
        assert not schema.is_transparent("Wrapper")

    def test_bibtex_transparent_set(self):
        schema = bibtex_schema()
        assert schema.transparent_nonterminals() == frozenset()


class TestTypeDescriptions:
    def test_bibtex_types_match_paper(self):
        schema = bibtex_schema()
        types = schema.describe_types()
        assert isinstance(types["Reference"], ClassTypeDesc)
        assert isinstance(types["Authors"], SetTypeDesc)
        assert types["Authors"].element == "Name"
        assert isinstance(types["Name"], TupleTypeDesc)
        assert set(types["Name"].fields) == {"First_Name", "Last_Name"}
        assert isinstance(types["Key"], AtomicTypeDesc)
        assert isinstance(types["Year"], AtomicTypeDesc)

    def test_describe_renders_classes_and_types(self):
        schema = bibtex_schema()
        description = schema.describe()
        assert "Class Reference" in description
        assert "Type (Authors) = set(Name)" in description

    def test_recursive_types_terminate(self):
        from repro.workloads.sgml import sgml_schema

        types = sgml_schema().describe_types()
        assert "Section" in types


class TestPaperExample:
    def test_paper_figure_1_entry_parses(self):
        schema = bibtex_schema()
        text = (
            "@INCOLLECTION{ Corl82a,\n"
            '  AUTHOR = "G. Corliss and Y. Chang",\n'
            '  TITLE = "Solving Ordinary Differential Equations Using Taylor Series",\n'
            '  BOOKTITLE = "Automatic Differentiation Algorithms",\n'
            '  YEAR = "1982",\n'
            '  EDITOR = "A. Griewank and G. Corliss",\n'
            '  PUBLISHER = "SIAM",\n'
            '  ADDRESS = "Philadelphia",\n'
            '  PAGES = "114--144",\n'
            '  REFERRED = "Aber88a; Corl88a; Gupt85a",\n'
            '  KEYWORDS = "point algorithm; Taylor series; radius of convergence",\n'
            '  ABSTRACT = "A Fortran pre-processor uses automatic differentiation"\n'
            "}\n"
        )
        image = schema.database_image(text)
        reference = list(image.root)[0]
        assert canonical(reference.get("Key")) == "Corl82a"
        assert canonical(reference.get("Year")) == "1982"
        author_lasts = {
            canonical(name.get("Last_Name")) for name in reference.get("Authors")
        }
        assert author_lasts == {"Corliss", "Chang"}
        editor_lasts = {
            canonical(name.get("Last_Name")) for name in reference.get("Editors")
        }
        assert editor_lasts == {"Griewank", "Corliss"}
        keywords = {canonical(keyword) for keyword in reference.get("Keywords")}
        assert keywords == {"point algorithm", "Taylor series", "radius of convergence"}
