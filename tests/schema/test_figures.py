"""Reconstruction of the paper's figures.

Figure 1 — the sample BibTeX entry (checked in test_structuring).
Figure 2 — the parse tree under *full* indexing: every non-terminal
occurrence is a region, and the query path Reference -> Authors -> Name ->
Last_Name locates exactly the author last names.
Figure 3 — the parse tree under *partial* indexing {Reference, Key,
Last_Name}: author and editor last names become indistinguishable, so the
candidate set is a superset.
"""

from repro.algebra.ast import parse_expression
from repro.index.builder import build_engine
from repro.index.config import IndexConfig
from repro.workloads.bibtex import bibtex_schema

TWO_ENTRY_FILE = (
    "@INCOLLECTION{ Corl82a,\n"
    '  AUTHOR = "G. Corliss and Y. Chang",\n'
    '  TITLE = "Solving Ordinary Differential Equations",\n'
    '  BOOKTITLE = "Automatic Differentiation Algorithms",\n'
    '  YEAR = "1982",\n'
    '  EDITOR = "A. Griewank",\n'
    '  PUBLISHER = "SIAM",\n'
    '  ADDRESS = "Philadelphia",\n'
    '  PAGES = "114--144",\n'
    '  REFERRED = "Aber88a",\n'
    '  KEYWORDS = "Taylor series",\n'
    '  ABSTRACT = "automatic differentiation"\n'
    "}\n"
    "@INCOLLECTION{ Mile94a,\n"
    '  AUTHOR = "T. Milo",\n'
    '  TITLE = "Optimizing Queries on Files",\n'
    '  BOOKTITLE = "SIGMOD",\n'
    '  YEAR = "1994",\n'
    '  EDITOR = "M. Chang",\n'
    '  PUBLISHER = "ACM",\n'
    '  ADDRESS = "Minneapolis",\n'
    '  PAGES = "301--312",\n'
    '  REFERRED = "Corl82a",\n'
    '  KEYWORDS = "region algebra",\n'
    '  ABSTRACT = "text indexing"\n'
    "}\n"
)


def _engine(config: IndexConfig):
    schema = bibtex_schema()
    tree = schema.parse(TWO_ENTRY_FILE)
    return build_engine(TWO_ENTRY_FILE, tree, config, root=schema.grammar.start)


class TestFigure2FullIndexing:
    def test_parse_tree_regions(self):
        engine = _engine(IndexConfig.full())
        # Two references, three author names + two editor names in total.
        assert len(engine.instance.get("Reference")) == 2
        assert len(engine.instance.get("Authors")) == 2
        assert len(engine.instance.get("Editors")) == 2
        assert len(engine.instance.get("Name")) == 5
        assert len(engine.instance.get("Last_Name")) == 5

    def test_full_index_distinguishes_authors_from_editors(self):
        engine = _engine(IndexConfig.full())
        # Chang is an author only in the first entry; an editor in the second.
        author_chang = engine.evaluate(
            "Reference > Authors > sigma[Chang](Last_Name)"
        )
        assert len(author_chang) == 1
        any_chang = engine.evaluate("Reference > sigma[Chang](Last_Name)")
        assert len(any_chang) == 2

    def test_section_2_intuition_author_regions(self):
        engine = _engine(IndexConfig.full())
        # "references ... that include some Authors region, that includes a
        # Last_Name region, that contains the word Chang".
        result = engine.evaluate(
            "Reference > Authors > Last_Name & Reference > Authors > sigma[Chang](Last_Name)"
        )
        assert len(result) == 1


class TestFigure3PartialIndexing:
    CONFIG = IndexConfig.partial({"Reference", "Key", "Last_Name"})

    def test_partial_instance_only_has_configured_names(self):
        engine = _engine(self.CONFIG)
        assert set(engine.instance.names) == {"Reference", "Key", "Last_Name"}

    def test_candidates_are_a_superset(self):
        full = _engine(IndexConfig.full())
        partial = _engine(self.CONFIG)
        exact = full.evaluate("Reference > Authors > sigma[Chang](Last_Name)")
        candidates = partial.evaluate("Reference >d sigma[Chang](Last_Name)")
        assert set(exact.regions) <= set(candidates.regions)
        # And strictly larger here: editor Chang pollutes the candidates.
        assert len(candidates) == 2
        assert len(exact) == 1

    def test_candidate_count_quote_from_section_2(self):
        # "The Reference regions that include some Last_Name region that is
        # the word Chang are a superset of the required references (in those
        # references, Chang is either an author or an editor)."
        partial = _engine(self.CONFIG)
        either = partial.evaluate("Reference > sigma[Chang](Last_Name)")
        assert len(either) == 2
