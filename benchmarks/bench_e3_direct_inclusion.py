"""E3 — the cost of direct inclusion (Section 3.1).

The paper presents the layered while-program for ``⊃d`` specifically "to
show that it is significantly more expensive than the simple inclusion
operation ⊃".  We measure, on deeply nested SGML sections:

- ``⊃``  (one merge-join pass);
- ``⊃d`` (pairwise with betweenness probes against all indexed regions);
- the paper's layered ω/−/⊃ program (one round per nesting layer).

Expected shape: ⊃ < ⊃d < layered program, with the gaps growing in nesting
depth.
"""

import pytest

from repro.algebra import ops
from repro.algebra.direct import layered_directly_including


@pytest.fixture(scope="module")
def nested_sets(sgml_engine):
    instance = sgml_engine.index.instance
    return instance.get("Section"), instance.get("ParaText"), instance


def bench_simple_inclusion(benchmark, nested_sets):
    sections, paragraphs, instance = nested_sets
    result = benchmark(lambda: ops.including(sections, paragraphs))
    benchmark.extra_info.update(sections=len(sections), result=len(result))


def bench_direct_inclusion(benchmark, nested_sets):
    sections, paragraphs, instance = nested_sets
    result = benchmark(
        lambda: ops.directly_including(sections, paragraphs, instance)
    )
    benchmark.extra_info.update(sections=len(sections), result=len(result))


def bench_layered_program(benchmark, nested_sets):
    sections, paragraphs, instance = nested_sets
    result = benchmark(
        lambda: layered_directly_including(sections, paragraphs, instance)
    )
    benchmark.extra_info.update(sections=len(sections), result=len(result))
    # Exactness on this laminar (parse-tree) instance:
    assert result == ops.directly_including(sections, paragraphs, instance)


def bench_self_nested_direct(benchmark, nested_sets):
    """Sections directly inside sections — the worst case for ⊃d: every
    candidate pair needs a betweenness probe through the whole instance."""
    sections, _, instance = nested_sets
    result = benchmark(lambda: ops.directly_including(sections, sections, instance))
    benchmark.extra_info.update(result=len(result))
