"""E5 — path expressions with variables (Section 5.3).

"In traditional OODBMS, path expressions with variables are computationally
more expensive than those with no variables (since the system has to
actually traverse all possible paths).  In contrast, for text files, path
expressions with variables may be cheaper" — simple inclusion ``⊃`` replaces
direct inclusion ``⊃d``, and no path enumeration happens at all.

We compare, for ``r.*X.Last_Name = "Chang"`` vs the concrete
``r.Authors.Name.Last_Name = "Chang"``:

- the index engine (star should be as fast or faster);
- the in-database evaluator over a preloaded image (star is much slower —
  it enumerates every attribute path).
"""

import pytest

from repro.db.evaluator import NaiveEvaluator
from repro.db.parser import parse_query
from repro.workloads.bibtex import CHANG_ANY_QUERY, CHANG_AUTHOR_QUERY

SIZE = 400


@pytest.fixture(scope="module")
def loaded_database(bibtex_engines):
    return bibtex_engines[SIZE].load_baseline_database()


def bench_index_concrete_path(benchmark, bibtex_engines):
    engine = bibtex_engines[SIZE]
    result = benchmark(lambda: engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(rows=len(result.rows))


def bench_index_star_path(benchmark, bibtex_engines):
    engine = bibtex_engines[SIZE]
    result = benchmark(lambda: engine.query(CHANG_ANY_QUERY))
    benchmark.extra_info.update(
        rows=len(result.rows),
        expression=str(engine.plan(CHANG_ANY_QUERY).optimized_expression),
    )


def bench_index_concrete_expression(benchmark, bibtex_engines):
    """Expression evaluation only (no answer parsing): the concrete path's
    optimized expression."""
    engine = bibtex_engines[SIZE]
    expression = engine.plan(CHANG_AUTHOR_QUERY).optimized_expression
    result = benchmark(lambda: engine.index.evaluate(expression))
    benchmark.extra_info.update(regions=len(result), expression=str(expression))


def bench_index_star_expression(benchmark, bibtex_engines):
    """Expression evaluation only: the star path's single ``⊃`` — the
    paper's point that variables get *cheaper* on files."""
    engine = bibtex_engines[SIZE]
    expression = engine.plan(CHANG_ANY_QUERY).optimized_expression
    result = benchmark(lambda: engine.index.evaluate(expression))
    benchmark.extra_info.update(regions=len(result), expression=str(expression))


def bench_oodb_concrete_path(benchmark, loaded_database):
    query = parse_query(CHANG_AUTHOR_QUERY)
    rows = benchmark(lambda: NaiveEvaluator(loaded_database).evaluate(query))
    benchmark.extra_info.update(rows=len(rows))


def bench_oodb_star_path(benchmark, loaded_database):
    query = parse_query(CHANG_ANY_QUERY)
    rows = benchmark(lambda: NaiveEvaluator(loaded_database).evaluate(query))
    benchmark.extra_info.update(rows=len(rows))
