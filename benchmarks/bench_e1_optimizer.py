"""E1 — optimized vs unoptimized region expressions (Sections 3.2 / 5.1).

The paper's claim: evaluating the most efficient version
``Reference ⊃ Authors ⊃ σChang(Last_Name)`` beats the naive translation
``Reference ⊃d Authors ⊃d Name ⊃d σChang(Last_Name)``, because ``⊃d`` must
rule out intervening indexed regions and the chain is longer.

Expected shape: optimized wins by a large factor, growing with corpus size;
both return identical region sets.
"""

import pytest

from repro.algebra.ast import parse_expression

UNOPTIMIZED = parse_expression(
    "Reference >d Authors >d Name >d sigma[Chang](Last_Name)"
)
OPTIMIZED = parse_expression("Reference > Authors > sigma[Chang](Last_Name)")


@pytest.mark.parametrize("size", [100, 400])
def bench_unoptimized_expression(benchmark, bibtex_engines, size):
    engine = bibtex_engines[size].index
    result = benchmark(lambda: engine.evaluate(UNOPTIMIZED))
    stats = engine.run(UNOPTIMIZED)
    benchmark.extra_info.update(
        size=size,
        result_regions=len(result),
        comparisons=stats.counters.comparisons,
        operations=stats.counters.total_operations,
    )


@pytest.mark.parametrize("size", [100, 400])
def bench_optimized_expression(benchmark, bibtex_engines, size):
    engine = bibtex_engines[size].index
    result = benchmark(lambda: engine.evaluate(OPTIMIZED))
    stats = engine.run(OPTIMIZED)
    benchmark.extra_info.update(
        size=size,
        result_regions=len(result),
        comparisons=stats.counters.comparisons,
        operations=stats.counters.total_operations,
    )
    # The two versions are equivalent (Theorem 3.6 precondition).
    assert engine.evaluate(OPTIMIZED) == engine.evaluate(UNOPTIMIZED)
