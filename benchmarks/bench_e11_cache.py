"""E11 — the region-expression / candidate-parse cache (Sections 5.2, 6).

Section 5.2's optimization goal is to "find common subexpressions in the
region expressions and evaluate them once"; Section 6's is to avoid touching
file bytes.  The engine-wide cache extends both across queries: on an
immutable indexed corpus, repeated or overlapping queries reuse evaluated
region sets and parsed candidates instead of recomputing them.

Cold engines are built with ``CacheConfig.disabled()`` (every request pays
full price, the E1–E10 configuration); warm engines enable the default
``CacheConfig()`` and are pre-warmed with one pass of the workload before
measurement.  Rows are byte-identical either way — only the work changes.
"""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig
from repro.core.engine import FileQueryEngine
from repro.index.config import IndexConfig
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema

# A realistic interactive session: the same handful of queries, re-issued.
REPLAY_WORKLOAD = [
    CHANG_AUTHOR_QUERY,
    'SELECT r FROM Reference r WHERE r.Year = "1982"',
    CHANG_AUTHOR_QUERY,
    'SELECT r.Authors.Name.Last_Name FROM Reference r WHERE r.Year = "1982"',
    CHANG_AUTHOR_QUERY,
]

PARTIAL = IndexConfig.partial({"Reference", "Key", "Last_Name"})


@pytest.fixture(scope="module")
def cold_engine(bibtex_texts) -> FileQueryEngine:
    return FileQueryEngine(
        bibtex_schema(), bibtex_texts[400], PARTIAL, cache_config=CacheConfig.disabled()
    )


@pytest.fixture(scope="module")
def warm_engine(bibtex_texts) -> FileQueryEngine:
    engine = FileQueryEngine(
        bibtex_schema(), bibtex_texts[400], PARTIAL, cache_config=CacheConfig()
    )
    for query in REPLAY_WORKLOAD:
        engine.query(query)
    return engine


def bench_repeated_query_cold(benchmark, cold_engine):
    """Candidate-parsing query, caches off: every run re-parses candidates."""
    result = benchmark(lambda: cold_engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        cache="disabled",
        strategy=result.stats.strategy,
        rows=len(result.rows),
        bytes_parsed=result.stats.bytes_parsed,
    )


def bench_repeated_query_warm(benchmark, warm_engine):
    """Same query, caches on and warmed: candidate parses come from the memo."""
    result = benchmark(lambda: warm_engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        cache="enabled",
        strategy=result.stats.strategy,
        rows=len(result.rows),
        bytes_parsed=result.stats.bytes_parsed,
        bytes_parse_avoided=result.stats.bytes_parse_avoided,
        cache_hits=result.stats.cache_hits,
    )


def bench_stage_budgets_warm(benchmark, warm_engine):
    """Stage-level attribution via span hooks: with a warm cache, candidate
    parsing must be a small share of the pipeline (the bytes come from the
    memo, not the file).  Asserts the budget instead of only end-to-end time."""
    from conftest import collect_stages, stage_seconds_info

    def run():
        with collect_stages(warm_engine) as stages:
            warm_engine.query(CHANG_AUTHOR_QUERY)
        return stages

    stages = benchmark(run)
    total = stages.total_seconds("query")
    candidate_parse = stages.total_seconds("candidate-parse")
    assert stages.count("query") == 1
    assert candidate_parse <= total
    benchmark.extra_info.update(
        cache="enabled",
        **stage_seconds_info(
            stages, "query", "plan", "execute", "index-eval", "candidate-parse"
        ),
    )


def bench_session_replay_cold(benchmark, cold_engine):
    """A five-query session, caches off."""
    results = benchmark(lambda: [cold_engine.query(q) for q in REPLAY_WORKLOAD])
    benchmark.extra_info.update(
        cache="disabled",
        queries=len(REPLAY_WORKLOAD),
        bytes_parsed=sum(r.stats.bytes_parsed for r in results),
    )


def bench_session_replay_warm(benchmark, warm_engine):
    """The same session against a warmed cache: zero bytes re-parsed."""
    results = benchmark(lambda: [warm_engine.query(q) for q in REPLAY_WORKLOAD])
    benchmark.extra_info.update(
        cache="enabled",
        queries=len(REPLAY_WORKLOAD),
        bytes_parsed=sum(r.stats.bytes_parsed for r in results),
        bytes_parse_avoided=sum(r.stats.bytes_parse_avoided for r in results),
        cache_stats=warm_engine.cache_description(),
    )


def bench_cache_equivalence_check(benchmark, cold_engine, warm_engine):
    """Not a speed contest: measures the warm engine while asserting its rows
    equal the cold engine's for the whole replay workload."""
    cold_rows = [cold_engine.query(q).canonical_rows() for q in REPLAY_WORKLOAD]

    def replay_and_check():
        rows = [warm_engine.query(q).canonical_rows() for q in REPLAY_WORKLOAD]
        assert rows == cold_rows
        return rows

    benchmark(replay_and_check)
    benchmark.extra_info.update(cache="enabled", identical_rows=True)
