"""Render benchmark results as per-experiment tables.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/report.py bench.json

Groups results by experiment module (E1...E10), prints median latencies and
the extra-info counters each benchmark recorded, and computes the headline
ratios EXPERIMENTS.md reports (optimized vs unoptimized, index vs scan,
...).  This is the "regenerate the paper's tables" entry point.
"""

from __future__ import annotations

import json
import re
import sys
from collections import defaultdict

_EXPERIMENT_RE = re.compile(r"bench_(e\d+)_(\w+)\.py")


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds:8.3f} s "


def load_results(path: str) -> dict[str, list[dict]]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    grouped: dict[str, list[dict]] = defaultdict(list)
    for bench in data.get("benchmarks", []):
        match = _EXPERIMENT_RE.search(bench.get("fullname", ""))
        experiment = match.group(1).upper() + ":" + match.group(2) if match else "other"
        grouped[experiment].append(bench)
    return dict(grouped)


def print_report(grouped: dict[str, list[dict]]) -> None:
    for experiment in sorted(grouped):
        benches = sorted(grouped[experiment], key=lambda b: b["stats"]["median"])
        print(f"\n=== {experiment} " + "=" * max(0, 66 - len(experiment)))
        for bench in benches:
            name = bench["name"]
            median = bench["stats"]["median"]
            extra = bench.get("extra_info", {})
            extras = ", ".join(
                f"{key}={value}" for key, value in sorted(extra.items())
                if not isinstance(value, (list, dict))
            )
            print(f"  {_format_seconds(median)}  {name}")
            if extras:
                print(f"               {extras}")
        _print_ratios(experiment, benches)


def _print_ratios(experiment: str, benches: list[dict]) -> None:
    """Headline ratios between natural fast/slow pairs in an experiment."""
    def median_of(substring: str) -> dict[str, float]:
        return {
            bench["name"]: bench["stats"]["median"]
            for bench in benches
            if substring in bench["name"]
        }

    pairs = {
        "E1": ("optimized", "unoptimized"),
        "E2": ("bench_index_strategy", "bench_standard_database"),
        "E3": ("simple_inclusion", "direct_inclusion"),
        "E4": ("bench_full_indexing", "bench_partial_vs_scan_baseline"),
        "E5": ("index_star_expression", "oodb_star_path"),
        "E6": ("index_closure", "oodb_full_pipeline"),
        "E7": ("index_assisted_join", "full_scan_join"),
        "E9": ("index_scaling_fixed", "baseline_scaling"),
        "E10": ("with_optimizer", "without_optimizer"),
    }
    key = experiment.split(":")[0]
    if key not in pairs:
        return
    fast_sub, slow_sub = pairs[key]
    fast = median_of(fast_sub)
    slow = median_of(slow_sub)
    # Disambiguate when one substring contains the other ("optimized" is a
    # substring of "unoptimized").
    if fast_sub in slow_sub:
        fast = {name: value for name, value in fast.items() if slow_sub not in name}
    if slow_sub in fast_sub:
        slow = {name: value for name, value in slow.items() if fast_sub not in name}
    if not fast or not slow:
        return

    def suffix(name: str) -> str:
        bracket = name.find("[")
        return name[bracket:] if bracket >= 0 else ""

    def pair_label(name: str, substring: str) -> str:
        # "[params]" disambiguates parameterized runs; without them, fall
        # back to the benchmark-name stem so same-experiment pairs stay
        # tellable apart (E10's bench_pipeline_without_optimizer vs
        # bench_multi_join_without_optimizer -> "pipeline" / "multi_join").
        if suffix(name):
            return suffix(name)
        stem = name.replace(substring, "").replace("bench_", "").strip("_")
        return stem.replace("__", "_") or "-"

    ratios = []
    # Preferred pairing: the slow benchmark's name with the substring swapped
    # names its fast counterpart (bench_unoptimized_x[n] -> bench_optimized_x[n]).
    for slow_name, slow_median in slow.items():
        counterpart = slow_name.replace(slow_sub, fast_sub)
        if counterpart in fast and fast[counterpart] > 0:
            label = pair_label(slow_name, slow_sub)
            ratios.append((label, slow_median / fast[counterpart]))
    if not ratios:
        # Fall back to pairing by parameter suffix across the two families.
        for fast_name, fast_median in fast.items():
            for slow_name, slow_median in slow.items():
                if suffix(fast_name) == suffix(slow_name) and fast_median > 0:
                    label = pair_label(fast_name, fast_sub)
                    ratios.append((label, slow_median / fast_median))
    for label, ratio in sorted(ratios):
        print(f"  ratio {label:>20} ({slow_sub} / {fast_sub}): {ratio:.1f}x")


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    grouped = load_results(argv[1])
    if not grouped:
        print("no benchmark results found", file=sys.stderr)
        return 1
    print_report(grouped)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
