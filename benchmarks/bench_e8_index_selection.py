"""E8 — choosing what to index (Section 7).

The advisor applies the paper's guideline: index the non-terminals the
optimized expression mentions plus one blocker per interior path of every
surviving direct inclusion.  The claim: the minimal set computes queries
exactly while storing a fraction of the full index.

Measured: query latency under the advisor's configuration vs full indexing,
plus index-size accounting and index build time.
"""

import pytest

from repro.core.advisor import IndexAdvisor
from repro.core.engine import FileQueryEngine
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema

WORKLOAD = [
    CHANG_AUTHOR_QUERY,
    'SELECT r FROM Reference r WHERE r.Year = "1982"',
]


@pytest.fixture(scope="module")
def advisor_engine(bibtex_texts):
    schema = bibtex_schema()
    from repro.cache import CacheConfig

    report = IndexAdvisor(schema).recommend(WORKLOAD)
    engine = FileQueryEngine(
        schema, bibtex_texts[400], report.config, cache_config=CacheConfig.disabled()
    )
    return engine, report


def bench_advisor_config_query(benchmark, advisor_engine):
    engine, report = advisor_engine
    result = benchmark(lambda: engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        strategy=result.stats.strategy,
        exact=result.plan.exact,
        rows=len(result.rows),
        index_entries=engine.statistics().total_region_entries,
        recommended=sorted(report.config.region_names or ()),
    )


def bench_full_config_query(benchmark, bibtex_engines):
    engine = bibtex_engines[400]
    result = benchmark(lambda: engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        strategy=result.stats.strategy,
        rows=len(result.rows),
        index_entries=engine.statistics().total_region_entries,
    )


def bench_advisor_index_build(benchmark, bibtex_texts):
    schema = bibtex_schema()
    report = IndexAdvisor(schema).recommend(WORKLOAD)
    engine = benchmark(
        lambda: FileQueryEngine(schema, bibtex_texts[100], report.config)
    )
    benchmark.extra_info.update(
        index_entries=engine.statistics().total_region_entries
    )


def bench_full_index_build(benchmark, bibtex_texts):
    schema = bibtex_schema()
    engine = benchmark(lambda: FileQueryEngine(schema, bibtex_texts[100]))
    benchmark.extra_info.update(
        index_entries=engine.statistics().total_region_entries
    )
