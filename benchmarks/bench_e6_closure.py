"""E6 — transitive-closure path queries (Section 5.3).

"Within the framework we describe here it is possible to evaluate paths
with a regular expression involving a transitive closure, with just an
inclusion expression.  This shows, once more, that in some cases a
traditionally expensive query (a closure) can be implemented much more
efficiently."

Workload: self-nested SGML sections.  "Sections at any nesting depth whose
paragraphs mention a word" is one ``⊃`` on the index; the OODB must
recursively traverse the section tree.
"""

from repro.core.pathexpr import containment_closure
from repro.db.evaluator import NaiveEvaluator
from repro.db.parser import parse_query

STAR_QUERY = 'SELECT d FROM Document d WHERE d.*X.ParaText = "nesting"'


def bench_index_closure(benchmark, sgml_engine):
    result = benchmark(
        lambda: containment_closure(
            sgml_engine.index, "Section", "ParaText", word="nesting", mode="contains"
        )
    )
    benchmark.extra_info.update(
        sections=len(sgml_engine.index.instance.get("Section")),
        matches=len(result),
    )


def bench_index_star_document_query(benchmark, sgml_engine):
    result = benchmark(lambda: sgml_engine.query(STAR_QUERY))
    benchmark.extra_info.update(rows=len(result.rows))


def bench_oodb_recursive_traversal(benchmark, sgml_engine):
    database = sgml_engine.load_baseline_database()
    query = parse_query(STAR_QUERY)
    rows = benchmark(lambda: NaiveEvaluator(database).evaluate(query))
    benchmark.extra_info.update(rows=len(rows))


def bench_oodb_full_pipeline(benchmark, sgml_engine):
    result = benchmark(lambda: sgml_engine.baseline_query(STAR_QUERY))
    benchmark.extra_info.update(rows=len(result.rows))


def bench_regular_path_closure(benchmark, sgml_engine):
    """The GraphLog regular path Section.**.ParaText as one inclusion."""
    from repro.core.regular import evaluate_regular_path

    result = benchmark(
        lambda: evaluate_regular_path(
            sgml_engine.index, "Section.**.ParaText", word="nesting", mode="contains"
        )
    )
    benchmark.extra_info.update(matches=len(result))


def bench_call_graph_closure(benchmark):
    """Source-code workload: functions calling `alloc` at any block depth."""
    from repro.core.engine import FileQueryEngine
    from repro.workloads.source import CALLERS_OF_ALLOC, generate_source, source_schema

    from repro.cache import CacheConfig

    engine = FileQueryEngine(
        source_schema(),
        generate_source(functions=150, depth=3, seed=31),
        cache_config=CacheConfig.disabled(),
    )
    result = benchmark(lambda: engine.query(CALLERS_OF_ALLOC))
    benchmark.extra_info.update(rows=len(result.rows))
