"""Shared benchmark fixtures.

Corpora and engines are session-scoped: building indexes is part of what
several experiments measure explicitly (E8), but most benchmarks measure
query evaluation over a prepared engine, the steady state the paper
discusses.

E1–E10 engines are built with ``CacheConfig.disabled()``: pytest-benchmark
re-runs the same query in a loop, and the engine's evaluation/parse caches
would otherwise turn every iteration after the first into a lookup,
measuring the cache instead of the paper's algorithms.  The cache itself
is measured explicitly in E11 (``bench_e11_cache.py``).
"""

from __future__ import annotations

import contextlib

import pytest

from repro.cache import CacheConfig
from repro.core.engine import FileQueryEngine
from repro.index.config import IndexConfig
from repro.obs.hooks import SpanCollector
from repro.workloads.bibtex import bibtex_schema, generate_bibtex
from repro.workloads.logs import generate_log, log_schema
from repro.workloads.sgml import generate_sgml, sgml_schema

SIZES = [100, 400]

NO_CACHE = CacheConfig.disabled()


@contextlib.contextmanager
def collect_stages(engine: FileQueryEngine):
    """Register a span collector on ``engine`` for the duration of a block.

    Benchmarks use this to attribute time to pipeline stages and to assert
    stage-level budgets ("candidate-parse must stay under X") instead of
    only end-to-end wall times::

        with collect_stages(engine) as stages:
            engine.query(...)
        assert stages.total_seconds("index-eval") < stages.total_seconds("query")
    """
    collector = SpanCollector()
    remove = engine.on_span(collector)
    try:
        yield collector
    finally:
        remove()


def stage_seconds_info(collector: SpanCollector, *names: str) -> dict[str, float]:
    """Per-stage totals shaped for ``benchmark.extra_info``."""
    return {
        f"seconds_{name.replace('-', '_')}": round(collector.total_seconds(name), 6)
        for name in names
        if collector.count(name)
    }


@pytest.fixture(scope="session")
def bibtex_texts() -> dict[int, str]:
    return {
        size: generate_bibtex(entries=size, seed=17, self_edited_rate=0.1)
        for size in SIZES + [200, 800]
    }


@pytest.fixture(scope="session")
def bibtex_engines(bibtex_texts) -> dict[int, FileQueryEngine]:
    schema = bibtex_schema()
    return {
        size: FileQueryEngine(schema, text, cache_config=NO_CACHE)
        for size, text in bibtex_texts.items()
    }


@pytest.fixture(scope="session")
def bibtex_partial_engines(bibtex_texts) -> dict[int, FileQueryEngine]:
    schema = bibtex_schema()
    config = IndexConfig.partial({"Reference", "Key", "Last_Name"})
    return {
        size: FileQueryEngine(schema, text, config, cache_config=NO_CACHE)
        for size, text in bibtex_texts.items()
        if size in SIZES
    }


@pytest.fixture(scope="session")
def sgml_engine() -> FileQueryEngine:
    text = generate_sgml(documents=40, depth=5, branching=2, seed=23)
    return FileQueryEngine(sgml_schema(), text, cache_config=NO_CACHE)


@pytest.fixture(scope="session")
def log_engine() -> FileQueryEngine:
    text = generate_log(entries=1500, seed=29, requests_per_entry=2)
    return FileQueryEngine(log_schema(), text, cache_config=NO_CACHE)
