"""E9 — scaling in corpus size (Section 1's motivation).

"To answer queries on files, one would like to avoid scanning the whole
file system."  The index strategy's cost tracks the *answer* size; the
baseline's tracks the *corpus* size.

Expected shape: baseline latency grows linearly with corpus size; the index
strategy grows much more slowly (index lookups are logarithmic-to-linear in
the matching postings, candidate parsing is linear in answer bytes), so the
ratio widens monotonically.
"""

import pytest

from repro.workloads.bibtex import CHANG_AUTHOR_QUERY

SIZES = [100, 200, 400, 800]


@pytest.mark.parametrize("size", SIZES)
def bench_index_scaling(benchmark, bibtex_engines, size):
    engine = bibtex_engines[size]
    result = benchmark(lambda: engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        size=size,
        corpus_bytes=len(engine.text),
        rows=len(result.rows),
        bytes_parsed=result.stats.bytes_parsed,
    )


@pytest.mark.parametrize("size", SIZES)
def bench_index_scaling_fixed_answer(benchmark, bibtex_engines, size):
    """A highly selective query (one specific key): answer size is constant,
    so the index strategy's latency stays near-flat while the baseline keeps
    growing linearly — the sublinear-scaling shape."""
    engine = bibtex_engines[size]
    # Pick a key that exists in this corpus.
    key_region = next(iter(engine.index.instance.get("Key")))
    key = engine.index.region_text(key_region)
    query = f'SELECT r FROM Reference r WHERE r.Key = "{key}"'
    result = benchmark(lambda: engine.query(query))
    benchmark.extra_info.update(
        size=size, rows=len(result.rows), bytes_parsed=result.stats.bytes_parsed
    )


@pytest.mark.parametrize("size", SIZES)
def bench_baseline_scaling(benchmark, bibtex_engines, size):
    engine = bibtex_engines[size]
    result = benchmark(lambda: engine.baseline_query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        size=size,
        corpus_bytes=len(engine.text),
        rows=len(result.rows),
        bytes_parsed=result.stats.bytes_parsed,
    )
