"""E7 — select–project–join queries (Section 5.2).

"The region index can be used to locate the regions corresponding to the
attributes specified by the two paths.  The content of the regions is then
loaded into the database, and a database join operator is used" — instead of
loading whole objects.

Query: references "edited by one of the authors"
(``r.Editors.Name = r.Authors.Name``).

Expected shape: the index-assisted join loads only name-region bytes and
beats the full parse-load-join pipeline clearly.
"""

import pytest

from repro.workloads.bibtex import SELF_EDITED_QUERY

LAST_NAME_JOIN = (
    "SELECT r FROM Reference r "
    "WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name"
)


@pytest.mark.parametrize("size", [100, 400])
def bench_index_assisted_join(benchmark, bibtex_engines, size):
    engine = bibtex_engines[size]
    result = benchmark(lambda: engine.query(SELF_EDITED_QUERY))
    benchmark.extra_info.update(
        size=size,
        strategy=result.stats.strategy,
        rows=len(result.rows),
        join_bytes=result.stats.join_bytes_compared,
        bytes_parsed=result.stats.bytes_parsed,
    )


@pytest.mark.parametrize("size", [100, 400])
def bench_full_scan_join(benchmark, bibtex_engines, size):
    engine = bibtex_engines[size]
    result = benchmark(lambda: engine.baseline_query(SELF_EDITED_QUERY))
    benchmark.extra_info.update(
        size=size, rows=len(result.rows), bytes_parsed=result.stats.bytes_parsed
    )


def bench_index_assisted_last_name_join(benchmark, bibtex_engines):
    engine = bibtex_engines[400]
    result = benchmark(lambda: engine.query(LAST_NAME_JOIN))
    benchmark.extra_info.update(
        strategy=result.stats.strategy,
        rows=len(result.rows),
        join_bytes=result.stats.join_bytes_compared,
    )
