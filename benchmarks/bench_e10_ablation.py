"""E10 (ablation) — the optimizer's end-to-end effect.

E1 measures expressions in isolation; this ablation runs the *whole* query
pipeline with the Section 3.2 optimizer switched off, so the naive
translated chain (all ``⊃d``, full length) is what executes.  Answers are
identical (Theorem 3.6 equivalence); only cost changes.

Also ablates the multi-variable narrowing: the citation join with and
without per-variable optimization.
"""

import pytest

from repro.core.engine import FileQueryEngine
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema

CITATION_JOIN = (
    "SELECT r1.Key, r2.Key FROM Reference r1, Reference r2 "
    "WHERE r1.Referred.RefKey = r2.Key "
    'AND r2.Authors.Name.Last_Name = "Chang"'
)


@pytest.fixture(scope="module")
def unoptimized_engine(bibtex_texts):
    from repro.cache import CacheConfig

    return FileQueryEngine(
        bibtex_schema(),
        bibtex_texts[400],
        optimize_expressions=False,
        cache_config=CacheConfig.disabled(),
    )


def bench_pipeline_with_optimizer(benchmark, bibtex_engines):
    engine = bibtex_engines[400]
    result = benchmark(lambda: engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        expression=str(engine.plan(CHANG_AUTHOR_QUERY).optimized_expression),
        rows=len(result.rows),
    )


def bench_pipeline_without_optimizer(benchmark, unoptimized_engine, bibtex_engines):
    result = benchmark(lambda: unoptimized_engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        expression=str(
            unoptimized_engine.plan(CHANG_AUTHOR_QUERY).optimized_expression
        ),
        rows=len(result.rows),
    )
    reference = bibtex_engines[400].query(CHANG_AUTHOR_QUERY)
    assert result.canonical_rows() == reference.canonical_rows()


def bench_multi_join_with_optimizer(benchmark, bibtex_engines):
    engine = bibtex_engines[400]
    result = benchmark(lambda: engine.query(CITATION_JOIN))
    benchmark.extra_info.update(rows=len(result.rows))


def bench_multi_join_without_optimizer(benchmark, unoptimized_engine):
    result = benchmark(lambda: unoptimized_engine.query(CITATION_JOIN))
    benchmark.extra_info.update(rows=len(result.rows))


@pytest.fixture(scope="module")
def calibrated_engine(bibtex_texts):
    """The optimizer plus a warmed feedback-calibrated cost model: three
    EXPLAIN ANALYZE rounds feed estimate-vs-actual history before timing
    (the configuration `scripts/check_e10_gate.py` gates on)."""
    from repro.feedback import FeedbackConfig

    engine = FileQueryEngine(
        bibtex_schema(), bibtex_texts[400], feedback=FeedbackConfig()
    )
    for _ in range(3):
        engine.analyze(CITATION_JOIN)
    return engine


def bench_multi_join_calibrated(benchmark, calibrated_engine, bibtex_engines):
    result = benchmark(lambda: calibrated_engine.query(CITATION_JOIN))
    benchmark.extra_info.update(
        rows=len(result.rows),
        observations=calibrated_engine.stats().calibration["observations"],
    )
    reference = bibtex_engines[400].query(CITATION_JOIN)
    assert result.canonical_rows() == reference.canonical_rows()
