"""E4 — partial indexing: candidates, filtering, and the space tradeoff
(Sections 2 and 6).

With the paper's partial index {Reference, Key, Last_Name}, the author
query's candidates include editor-only matches; those candidates are parsed
and filtered.  "The number of these potentially relevant references is
significantly smaller than the number of all the references in the file
system. Thus scanning those references ... provides big performance
improvement."

Expected shape: partial indexing sits between full indexing and the full
scan — slower than full indexing (it parses candidates), far faster than
scanning everything — while storing a fraction of the index entries.
"""

import pytest

from repro.workloads.bibtex import CHANG_AUTHOR_QUERY


@pytest.mark.parametrize("size", [100, 400])
def bench_full_indexing(benchmark, bibtex_engines, size):
    engine = bibtex_engines[size]
    result = benchmark(lambda: engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        size=size,
        strategy=result.stats.strategy,
        candidates=result.stats.candidate_regions,
        rows=len(result.rows),
        bytes_parsed=result.stats.bytes_parsed,
        index_entries=engine.statistics().total_region_entries,
    )


@pytest.mark.parametrize("size", [100, 400])
def bench_partial_indexing(benchmark, bibtex_partial_engines, size):
    engine = bibtex_partial_engines[size]
    result = benchmark(lambda: engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        size=size,
        strategy=result.stats.strategy,
        candidates=result.stats.candidate_regions,
        rows=len(result.rows),
        filtered_out=result.stats.objects_filtered_out,
        bytes_parsed=result.stats.bytes_parsed,
        corpus_bytes=len(engine.text),
        index_entries=engine.statistics().total_region_entries,
    )


@pytest.mark.parametrize("size", [100, 400])
def bench_partial_vs_scan_baseline(benchmark, bibtex_partial_engines, size):
    engine = bibtex_partial_engines[size]
    result = benchmark(lambda: engine.baseline_query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        size=size, bytes_parsed=result.stats.bytes_parsed
    )


@pytest.mark.parametrize("size", [100, 400])
def bench_scoped_indexing(benchmark, bibtex_texts, size):
    """Section 7's selective indexing: Last_Name only inside Authors —
    exact answers with a small index."""
    from repro.core.engine import FileQueryEngine
    from repro.index.config import IndexConfig
    from repro.workloads.bibtex import bibtex_schema

    config = IndexConfig.partial({"Reference", "Key"}).with_scoped(
        "Last_Name", "Authors"
    )
    from repro.cache import CacheConfig

    engine = FileQueryEngine(
        bibtex_schema(), bibtex_texts[size], config, cache_config=CacheConfig.disabled()
    )
    result = benchmark(lambda: engine.query(CHANG_AUTHOR_QUERY))
    benchmark.extra_info.update(
        size=size,
        strategy=result.stats.strategy,
        candidates=result.stats.candidate_regions,
        rows=len(result.rows),
        index_entries=engine.statistics().total_region_entries,
    )
