"""E13 — live ingestion: append throughput and crash-recovery time.

The paper's engine answers queries over *files as they are*; the live
layer extends that to files as they grow.  Two costs matter:

- **Append latency** — a durable append journals the record and fsyncs
  before acknowledging, so the floor is one fsync.  Measured solo and as
  an append+query mix (the serving steady state).
- **Recovery time** — reopening an index whose journal holds unfolded
  frames must replay them into delta segments.  Measured against journal
  depth, along with the compaction that folds the delta away.

Benchmarks build a fresh index per round (appends mutate on-disk state),
so the measured body includes only the live-path work being quantified.
"""

from __future__ import annotations

import shutil

import pytest

from repro.live import LiveEngine
from repro.shard import ShardedEngine
from repro.workloads.logs import generate_log, log_schema, tail_entries

N_SHARDS = 4
BASE_ENTRIES = 400
QUERY = 'SELECT e FROM Entry e WHERE e.Level = "ERROR"'


@pytest.fixture(scope="module")
def live_schema():
    return log_schema()


@pytest.fixture(scope="module")
def base_corpus() -> str:
    return generate_log(entries=BASE_ENTRIES, seed=29)


@pytest.fixture(scope="module")
def ingest_records(live_schema) -> list[str]:
    return list(tail_entries(entries=64, seed=7, start=BASE_ENTRIES))


@pytest.fixture(scope="module")
def saved_base(tmp_path_factory, live_schema, base_corpus):
    directory = tmp_path_factory.mktemp("e13") / "base-idx"
    ShardedEngine.split(live_schema, base_corpus, N_SHARDS).save(directory)
    return directory


@pytest.fixture
def fresh_index(tmp_path, saved_base):
    """A private copy of the saved base index: appends are destructive."""
    directory = tmp_path / "idx"
    shutil.copytree(saved_base, directory)
    return directory


def bench_append_durable(benchmark, live_schema, fresh_index, ingest_records):
    """One journaled, fsynced append (the ack floor is the fsync)."""
    live = LiveEngine.open(live_schema, fresh_index)
    cursor = iter(ingest_records * 1000)

    try:
        benchmark(lambda: live.append(next(cursor)))
        status = live.status()
        benchmark.extra_info.update(
            appended=status["next_seq"] - 1,
            journal_bytes=status["journal_bytes"],
            fsync_per_append=1,
        )
    finally:
        live.close()


def bench_append_query_mix(benchmark, live_schema, fresh_index, ingest_records):
    """The serving steady state: one append, then a query that merges the
    delta segment with the base shards."""
    live = LiveEngine.open(live_schema, fresh_index)
    cursor = iter(ingest_records * 1000)

    def round_trip():
        live.append(next(cursor))
        return live.query(QUERY)

    try:
        result = benchmark(round_trip)
        benchmark.extra_info.update(
            rows=len(result.rows),
            pending=live.status()["pending_records"],
        )
    finally:
        live.close()


@pytest.mark.parametrize("depth", [8, 64])
def bench_recovery_replay(benchmark, live_schema, saved_base, tmp_path, depth):
    """Reopen with ``depth`` unfolded journal frames: orphan sweep +
    fingerprint check + journal replay into a pending delta."""
    seed_dir = tmp_path / "seed"
    shutil.copytree(saved_base, seed_dir)
    live = LiveEngine.open(live_schema, seed_dir)
    for record in tail_entries(entries=depth, seed=13, start=BASE_ENTRIES):
        live.append(record)
    live.close()

    counter = [0]

    def setup():
        work = tmp_path / f"run-{counter[0]}"
        counter[0] += 1
        if work.exists():
            shutil.rmtree(work)
        shutil.copytree(seed_dir, work)
        return (work,), {}

    def reopen(work):
        engine = LiveEngine.open(live_schema, work)
        pending = engine.status()["pending_records"]
        engine.close()
        return pending

    pending = benchmark.pedantic(reopen, setup=setup, rounds=10)
    benchmark.extra_info.update(journal_depth=depth, replayed=pending)


def bench_compaction_fold(benchmark, live_schema, saved_base, tmp_path):
    """Folding a 32-record delta into the base index (stage + swap +
    manifest + trim)."""
    seed_dir = tmp_path / "seed"
    shutil.copytree(saved_base, seed_dir)
    live = LiveEngine.open(live_schema, seed_dir)
    for record in tail_entries(entries=32, seed=17, start=BASE_ENTRIES):
        live.append(record)
    live.close()

    counter = [0]

    def setup():
        work = tmp_path / f"run-{counter[0]}"
        counter[0] += 1
        if work.exists():
            shutil.rmtree(work)
        shutil.copytree(seed_dir, work)
        engine = LiveEngine.open(live_schema, work)
        return (engine,), {}

    def fold(engine):
        report = engine.compact()
        engine.close()
        return report

    report = benchmark.pedantic(fold, setup=setup, rounds=10)
    benchmark.extra_info.update(folded=sum(report["folded"].values()))
