"""E2 — index evaluation vs the standard database pipeline (Sections 1, 2).

The paper's headline claim: "some queries can be evaluated significantly
faster than in standard database implementations" because the index locates
the relevant regions and only those get parsed, instead of scanning, parsing
and loading the whole file.

Expected shape: the index strategy wins by roughly the ratio of answer bytes
to corpus bytes; the gap widens with corpus size.
"""

import pytest

from repro.workloads.bibtex import CHANG_AUTHOR_QUERY

QUERIES = {
    "author-eq": CHANG_AUTHOR_QUERY,
    "year-eq": 'SELECT r FROM Reference r WHERE r.Year = "1982"',
    "disjunction": (
        'SELECT r FROM Reference r WHERE r.Publisher = "SIAM" '
        'OR r.Publisher = "ACM"'
    ),
}


@pytest.mark.parametrize("size", [100, 400])
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def bench_index_strategy(benchmark, bibtex_engines, size, query_name):
    engine = bibtex_engines[size]
    query = QUERIES[query_name]
    result = benchmark(lambda: engine.query(query))
    benchmark.extra_info.update(
        size=size,
        strategy=result.stats.strategy,
        rows=len(result.rows),
        bytes_parsed=result.stats.bytes_parsed,
        corpus_bytes=len(engine.text),
    )


@pytest.mark.parametrize("size", [100, 400])
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def bench_standard_database(benchmark, bibtex_engines, size, query_name):
    engine = bibtex_engines[size]
    query = QUERIES[query_name]
    result = benchmark(lambda: engine.baseline_query(query))
    benchmark.extra_info.update(
        size=size,
        rows=len(result.rows),
        bytes_parsed=result.stats.bytes_parsed,
        corpus_bytes=len(engine.text),
    )


@pytest.mark.parametrize("size", [100, 400])
def bench_amortized_database_query(benchmark, bibtex_engines, size):
    """The generous baseline: the database image is already loaded (parsing
    amortized away); only in-database evaluation is measured."""
    from repro.db.evaluator import NaiveEvaluator
    from repro.db.parser import parse_query

    engine = bibtex_engines[size]
    database = engine.load_baseline_database()
    query = parse_query(CHANG_AUTHOR_QUERY)
    rows = benchmark(lambda: NaiveEvaluator(database).evaluate(query))
    benchmark.extra_info.update(size=size, rows=len(rows))
