"""Cache configuration.

One :class:`CacheConfig` governs every cache an engine holds.  Caches are
strictly per-engine: an engine indexes one immutable corpus, so cached
results can never go stale; two engines never share cache state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexConfigError


@dataclass(frozen=True)
class CacheConfig:
    """What the engine may memoize, and how much of it.

    Attributes
    ----------
    enabled:
        Master switch.  ``CacheConfig.disabled()`` turns every cache off;
        query results are byte-identical either way.
    expression_cache_size:
        LRU entry bound for the region-expression result cache
        (``0`` disables that cache only).
    parse_memo_size:
        LRU entry bound for the candidate-parse memo (``0`` disables it).
    plan_cache_size:
        LRU entry bound for the planner's text-query plan cache
        (``0`` disables it).
    full_scan_tree:
        Whether the executor may keep the corpus parse tree produced by a
        planner-chosen full scan and reuse it for later full scans.
        (The forced baseline pipeline never uses it, so benchmark baselines
        stay honest.)
    """

    enabled: bool = True
    expression_cache_size: int = 256
    parse_memo_size: int = 4096
    plan_cache_size: int = 64
    full_scan_tree: bool = True

    def __post_init__(self) -> None:
        for attribute in ("expression_cache_size", "parse_memo_size", "plan_cache_size"):
            if getattr(self, attribute) < 0:
                raise IndexConfigError(f"{attribute} must be >= 0")

    @classmethod
    def disabled(cls) -> "CacheConfig":
        """The escape hatch: no caching anywhere."""
        return cls(enabled=False)

    @property
    def caches_expressions(self) -> bool:
        return self.enabled and self.expression_cache_size > 0

    @property
    def caches_parses(self) -> bool:
        return self.enabled and self.parse_memo_size > 0

    @property
    def caches_plans(self) -> bool:
        return self.enabled and self.plan_cache_size > 0

    @property
    def caches_full_scan_tree(self) -> bool:
        return self.enabled and self.full_scan_tree

    def describe(self) -> str:
        if not self.enabled:
            return "disabled"
        parts = [
            f"expressions≤{self.expression_cache_size}",
            f"parses≤{self.parse_memo_size}",
            f"plans≤{self.plan_cache_size}",
            f"full-scan-tree={'on' if self.full_scan_tree else 'off'}",
        ]
        return "enabled (" + ", ".join(parts) + ")"
