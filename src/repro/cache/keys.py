"""Canonical structural keys for region expressions.

Two region expressions that denote the same computation should share one
cache entry.  ``∪`` and ``∩`` are associative, commutative and idempotent
on region sets, so the key flattens same-kind chains, sorts the operand
keys and drops duplicates: ``(A ∪ B) ∪ C`` and ``C ∪ (B ∪ A)`` key
identically.  Difference, inclusion and selection keep their operand order
(they are not commutative).

Keys are nested tuples of strings — hashable, comparable, and independent
of object identity, so they survive re-translation of the same query text.
"""

from __future__ import annotations

from repro.algebra.ast import (
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
)
from repro.errors import AlgebraError

_COMMUTATIVE = ("union", "intersect")


def canonical_key(expression: RegionExpr) -> tuple:
    """A canonical, hashable key for ``expression``'s denotation."""
    if isinstance(expression, Name):
        return ("name", expression.region_name)
    if isinstance(expression, Select):
        return ("select", expression.mode, expression.word, canonical_key(expression.child))
    if isinstance(expression, Inclusion):
        return (
            "incl",
            expression.op,
            canonical_key(expression.left),
            canonical_key(expression.right),
        )
    if isinstance(expression, SetOp):
        if expression.kind in _COMMUTATIVE:
            operands = sorted(
                {
                    canonical_key(operand)
                    for operand in _commutative_operands(expression, expression.kind)
                }
            )
            if len(operands) == 1:
                # x ∪ x and x ∩ x both denote x.
                return operands[0]
            return (expression.kind, tuple(operands))
        return (
            "difference",
            canonical_key(expression.left),
            canonical_key(expression.right),
        )
    if isinstance(expression, Innermost):
        return ("innermost", canonical_key(expression.child))
    if isinstance(expression, Outermost):
        return ("outermost", canonical_key(expression.child))
    raise AlgebraError(f"cannot key expression node {expression!r}")


def _commutative_operands(expression: RegionExpr, kind: str):
    """Yield the leaves of a same-kind ``∪``/``∩`` chain (associativity)."""
    if isinstance(expression, SetOp) and expression.kind == kind:
        yield from _commutative_operands(expression.left, kind)
        yield from _commutative_operands(expression.right, kind)
    else:
        yield expression
