"""The engine-wide cache tally.

One :class:`CacheStats` object is shared by every cache an engine holds;
each cache increments its own counters.  ``PlanExecutor`` snapshots the
tally around a query to attribute per-query deltas to that query's
``ExecutionStats``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hits, misses, and the file bytes caching saved from re-parsing."""

    expression_hits: int = 0
    expression_misses: int = 0
    expression_evictions: int = 0
    parse_hits: int = 0
    parse_misses: int = 0
    parse_evictions: int = 0
    bytes_parse_avoided: int = 0
    plan_hits: int = 0
    plan_misses: int = 0

    def snapshot(self) -> tuple[int, ...]:
        """An immutable copy of the counters (for per-query deltas)."""
        return (
            self.expression_hits,
            self.expression_misses,
            self.parse_hits,
            self.parse_misses,
            self.bytes_parse_avoided,
        )

    @property
    def total_hits(self) -> int:
        return self.expression_hits + self.parse_hits + self.plan_hits

    def to_dict(self) -> dict:
        """A JSON-ready view of the lifetime tallies."""
        return {
            "expression_hits": self.expression_hits,
            "expression_misses": self.expression_misses,
            "expression_evictions": self.expression_evictions,
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "parse_evictions": self.parse_evictions,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "bytes_parse_avoided": self.bytes_parse_avoided,
        }

    def summary(self) -> str:
        lines = [
            f"expression cache:  {self.expression_hits} hits / "
            f"{self.expression_misses} misses ({self.expression_evictions} evicted)",
            f"parse memo:        {self.parse_hits} hits / "
            f"{self.parse_misses} misses ({self.parse_evictions} evicted)",
            f"plan cache:        {self.plan_hits} hits / {self.plan_misses} misses",
            f"bytes not reparsed: {self.bytes_parse_avoided}",
        ]
        return "\n".join(lines)
