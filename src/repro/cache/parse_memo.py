"""The candidate-parse memo.

Section 6's second phase re-parses each candidate region as the source
non-terminal and instantiates it restricted to the query's push-down trie.
On an immutable corpus the outcome is fully determined by
``(source class, region, trie fingerprint)`` — so repeated or overlapping
queries can skip the file bytes entirely.  Failures memoize too: a region
that does not re-parse as the source class never will.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable

from repro.cache.stats import CacheStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.values import ObjectValue
    from repro.errors import ParseError


@dataclass(frozen=True)
class ParseFailure:
    """Why a candidate region failed to parse — enough to re-surface the
    :class:`~repro.errors.ParseError` (message, position, symbol intact)
    on a memo hit without re-reading the file."""

    message: str
    position: int
    symbol: str | None

    @classmethod
    def of(cls, error: "ParseError") -> "ParseFailure":
        return cls(
            message=getattr(error, "detail", None) or str(error),
            position=getattr(error, "position", 0),
            symbol=getattr(error, "symbol", None),
        )


@dataclass(frozen=True)
class ParseOutcome:
    """What parsing one candidate region produced, and what it cost.

    ``value`` is the instantiated object, or ``None`` when the region failed
    to parse (or did not instantiate to an object); ``parse_error`` records
    the failure when parsing (not instantiation) was the reason.  The
    recorded costs are credited to ``bytes_parse_avoided`` / hit accounting
    on reuse.
    """

    value: "ObjectValue | None"
    bytes_cost: int
    values_built: int
    parse_error: ParseFailure | None = None


class CandidateParseMemo:
    """LRU memo: ``(source_class, region, trie_fingerprint)`` → outcome.

    Thread-safe: concurrent queries on one engine share this memo, so all
    access is under a lock (the stored outcomes are immutable).
    """

    def __init__(self, max_entries: int = 4096, stats: CacheStats | None = None) -> None:
        self._max_entries = max_entries
        self._entries: OrderedDict[Hashable, ParseOutcome] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = stats if stats is not None else CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key(source_class: str, region: Any, trie_fingerprint: Hashable) -> Hashable:
        return (source_class, region, trie_fingerprint)

    def get(self, key: Hashable) -> ParseOutcome | None:
        with self._lock:
            outcome = self._entries.get(key)
            if outcome is None:
                self.stats.parse_misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.parse_hits += 1
            self.stats.bytes_parse_avoided += outcome.bytes_cost
            return outcome

    def put(self, key: Hashable, outcome: ParseOutcome) -> None:
        with self._lock:
            self._entries[key] = outcome
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.parse_evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
