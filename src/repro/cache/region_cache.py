"""The LRU-bounded region-expression result cache.

Keys are canonical structural keys (:mod:`repro.cache.keys`), values are
:class:`~repro.algebra.region.RegionSet` objects — immutable, so entries
can be handed out without copying.  The cache is sound only because the
engine's region instance never changes after the corpus is indexed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.cache.stats import CacheStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.algebra.region import RegionSet


class RegionCache:
    """Maps canonical expression keys to evaluated region sets (LRU).

    Thread-safe: concurrent queries on one engine share this cache, so all
    access is under a lock (the stored region sets are immutable).
    """

    def __init__(self, max_entries: int = 256, stats: CacheStats | None = None) -> None:
        self._max_entries = max_entries
        self._entries: OrderedDict[Hashable, "RegionSet"] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = stats if stats is not None else CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> "RegionSet | None":
        """The cached result for ``key``, or ``None`` (tallied either way)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.expression_misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.expression_hits += 1
            return entry

    def put(self, key: Hashable, result: "RegionSet") -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.expression_evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
