"""Engine-wide caching of region-expression evaluation and candidate parsing.

The paper's premise is that queries on files should avoid re-touching file
text: queries compile to region-algebra expressions over a PAT-style index,
and only the candidate regions are parsed (Section 6).  On one *immutable*
indexed corpus, consecutive queries frequently share subexpressions (the
translation of Section 5.1 emits highly regular inclusion chains) and
re-visit the same candidate regions.  This package memoizes both layers
per engine:

- :class:`RegionCache` — an LRU cache of region-expression results keyed by
  a canonical structural key (:func:`canonical_key`), so syntactically
  different but equivalent plans (commuted ``∪``/``∩`` operands) hit;
- :class:`CandidateParseMemo` — a memo of candidate-region parses keyed by
  ``(source class, region, push-down-trie fingerprint)``, so repeated or
  overlapping queries skip re-parsing file bytes;
- :class:`CacheConfig` — per-engine knobs, with ``CacheConfig.disabled()``
  as the escape hatch (results are identical with caching on or off);
- :class:`CacheStats` — the engine-wide hit/miss/bytes-avoided tally
  surfaced through ``ExecutionStats`` and the CLI.
"""

from repro.cache.config import CacheConfig
from repro.cache.keys import canonical_key
from repro.cache.parse_memo import CandidateParseMemo, ParseFailure, ParseOutcome
from repro.cache.region_cache import RegionCache
from repro.cache.stats import CacheStats

__all__ = [
    "CacheConfig",
    "CacheStats",
    "CandidateParseMemo",
    "ParseFailure",
    "ParseOutcome",
    "RegionCache",
    "canonical_key",
]
