"""The naive in-database evaluator — the paper's baseline.

Evaluates a query against loaded extents by scanning every object of the
source class and walking its value tree.  Path semantics are existential
(XSQL): a path ranges over all values it can reach (descending through set
and list elements), and a comparison holds if *some* reached value
satisfies it — "references where Chang is *one of* the authors".

Variables bind to attribute-name sequences.  Conditions evaluate to sets of
consistent *bindings* rather than booleans, so a variable used twice (in one
path or across conditions) is forced to the same attribute sequence
everywhere, as Section 5.3 requires.  ``NOT`` requires its operand to share
no unbound variables with the outside (the usual safety condition); it
evaluates to "no satisfying bindings".

The evaluator also reports how much work it did (objects scanned, values
visited, comparisons), which benchmarks use alongside wall time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.db.model import Database
from repro.db.query import (
    And,
    Attr,
    Comparison,
    Condition,
    Not,
    Or,
    PathComparison,
    PathExpr,
    Query,
    SeqVars,
    StarVar,
    TrueCondition,
)
from repro.db.values import (
    AtomicValue,
    ListValue,
    ObjectValue,
    SetValue,
    TupleValue,
    Value,
    canonical,
)
from repro.errors import QueryError

Bindings = tuple[tuple[str, tuple[str, ...]], ...]  # sorted (var, attrs) pairs

_EMPTY_BINDINGS: Bindings = ()


def _bind(bindings: Bindings, var: str, attrs: tuple[str, ...]) -> Bindings | None:
    """Extend ``bindings`` with ``var = attrs``; None on conflict."""
    for bound_var, bound_attrs in bindings:
        if bound_var == var:
            return bindings if bound_attrs == attrs else None
    return tuple(sorted(bindings + ((var, attrs),)))


def _merge(left: Bindings, right: Bindings) -> Bindings | None:
    """Union of two binding sets; None on conflict."""
    merged = dict(left)
    for var, attrs in right:
        if var in merged and merged[var] != attrs:
            return None
        merged[var] = attrs
    return tuple(sorted(merged.items()))


@dataclass
class EvaluationReport:
    """Work tally for one query evaluation."""

    objects_scanned: int = 0
    values_visited: int = 0
    comparisons: int = 0
    rows: int = 0


class NaiveEvaluator:
    """Scan-everything query evaluation over a loaded database.

    ``extents_by_var`` optionally narrows the objects a range variable
    iterates over (the index-assisted multi-variable strategy pre-filters
    each variable's extent before handing over to the join loops).
    """

    def __init__(
        self,
        database: Database,
        extents_by_var: dict[str, tuple[ObjectValue, ...]] | None = None,
    ) -> None:
        self._database = database
        self._extents_by_var = extents_by_var or {}
        self.report = EvaluationReport()

    def evaluate(self, query: Query) -> list[tuple[Value, ...]]:
        """All output rows.

        The evaluator nests one loop per range variable (the standard
        database join of Section 5.2's closing discussion) and, per
        assignment, output paths range over every value they reach (cross
        product across outputs)."""
        self.report = EvaluationReport()
        rows: list[tuple[Value, ...]] = []
        seen_rows: set[tuple] = set()
        for assignment in self._assignments(query):
            self.report.objects_scanned += 1
            satisfying = self._condition_bindings(query.where, assignment)
            if not satisfying:
                continue
            for row in self._output_rows(query, assignment, satisfying):
                key = tuple(canonical(value) for value in row)
                if key not in seen_rows:
                    seen_rows.add(key)
                    rows.append(row)
        self.report.rows = len(rows)
        return rows

    def _assignments(self, query: Query) -> Iterator[dict[str, ObjectValue]]:
        """The cartesian product of the declared (possibly narrowed) extents."""
        extents = [
            self._extents_by_var.get(source.var, self._database.extent(source.class_name))
            for source in query.sources
        ]
        variables = [source.var for source in query.sources]
        for objects in itertools.product(*extents):
            yield dict(zip(variables, objects))

    def qualifying_objects(self, query: Query) -> list[ObjectValue]:
        """Single-source convenience: the objects satisfying the WHERE."""
        objects = []
        for obj in self._database.extent(query.source_class):
            self.report.objects_scanned += 1
            if self._condition_bindings(query.where, {query.var: obj}):
                objects.append(obj)
        return objects

    def object_satisfies(self, query: Query, obj: ObjectValue) -> bool:
        """Does one object satisfy a single-source query's WHERE clause?
        (Used by the candidate-filtering phase of partial indexing.)"""
        return bool(self._condition_bindings(query.where, {query.var: obj}))

    # -- conditions ---------------------------------------------------------------

    def _condition_bindings(
        self, condition: Condition, assignment: dict[str, ObjectValue]
    ) -> list[Bindings]:
        if isinstance(condition, TrueCondition):
            return [_EMPTY_BINDINGS]
        if isinstance(condition, Comparison):
            found: list[Bindings] = []
            for value, bindings in self._walk_path(condition.path, assignment):
                self.report.comparisons += 1
                if condition.op == "like":
                    if isinstance(value, AtomicValue) and value.text.startswith(
                        condition.prefix
                    ):
                        found.append(bindings)
                    continue
                matches = isinstance(value, AtomicValue) and value.text == condition.literal
                if condition.op == "=" and matches:
                    found.append(bindings)
                elif condition.op == "<>" and not matches:
                    found.append(bindings)
            return _dedupe(found)
        if isinstance(condition, PathComparison):
            found = []
            right_values = list(self._walk_path(condition.right, assignment))
            for left_value, left_bindings in self._walk_path(condition.left, assignment):
                for right_value, right_bindings in right_values:
                    self.report.comparisons += 1
                    equal = canonical(left_value) == canonical(right_value)
                    keep = equal if condition.op == "=" else not equal
                    if not keep:
                        continue
                    merged = _merge(left_bindings, right_bindings)
                    if merged is not None:
                        found.append(merged)
            return _dedupe(found)
        if isinstance(condition, And):
            combined: list[Bindings] = []
            left_sets = self._condition_bindings(condition.left, assignment)
            if not left_sets:
                return []
            right_sets = self._condition_bindings(condition.right, assignment)
            for left_bindings in left_sets:
                for right_bindings in right_sets:
                    merged = _merge(left_bindings, right_bindings)
                    if merged is not None:
                        combined.append(merged)
            return _dedupe(combined)
        if isinstance(condition, Or):
            return _dedupe(
                self._condition_bindings(condition.left, assignment)
                + self._condition_bindings(condition.right, assignment)
            )
        if isinstance(condition, Not):
            inner = self._condition_bindings(condition.child, assignment)
            return [] if inner else [_EMPTY_BINDINGS]
        raise QueryError(f"cannot evaluate condition {condition!r}")

    # -- outputs -------------------------------------------------------------------

    def _output_rows(
        self,
        query: Query,
        assignment: dict[str, ObjectValue],
        satisfying: list[Bindings],
    ) -> Iterator[tuple[Value, ...]]:
        per_output: list[list[Value]] = []
        for output in query.outputs:
            values: list[Value] = []
            seen: set[object] = set()
            for value, bindings in self._walk_path(output, assignment):
                if output.has_variables() and not any(
                    _merge(bindings, sat) is not None for sat in satisfying
                ):
                    continue
                key = canonical(value)
                if key not in seen:
                    seen.add(key)
                    values.append(value)
            per_output.append(values)
        rows = [()]
        for values in per_output:
            rows = [row + (value,) for row in rows for value in values]
        yield from rows

    # -- path walking ----------------------------------------------------------------

    def _walk_path(
        self, path: PathExpr, assignment: dict[str, ObjectValue]
    ) -> Iterator[tuple[Value, Bindings]]:
        yield from self._walk_steps(assignment[path.var], path.steps, _EMPTY_BINDINGS)

    def _walk_steps(
        self, value: Value, steps: tuple, bindings: Bindings
    ) -> Iterator[tuple[Value, Bindings]]:
        self.report.values_visited += 1
        if not steps:
            yield value, bindings
            return
        step, rest = steps[0], steps[1:]
        if isinstance(step, Attr):
            for target in self._apply_attribute(value, step.name):
                yield from self._walk_steps(target, rest, bindings)
        elif isinstance(step, SeqVars):
            for attr_name, target in self._any_attribute(value):
                extended = _bind(bindings, step.name, (attr_name,))
                if extended is not None:
                    yield from self._walk_steps(target, rest, extended)
        elif isinstance(step, StarVar):
            for attr_names, target in self._descendants(value):
                extended = _bind(bindings, step.name, attr_names)
                if extended is not None:
                    yield from self._walk_steps(target, rest, extended)
        else:
            raise QueryError(f"unknown path step {step!r}")

    def _apply_attribute(self, value: Value, name: str) -> Iterator[Value]:
        """Resolve one attribute step, descending through sets/lists.

        A step naming a tuple/object's own type selects the value itself
        (``Authors.Name`` ranges over the Name tuples inside the set)."""
        if isinstance(value, (SetValue, ListValue)):
            for element in value:
                yield from self._apply_attribute(element, name)
        elif isinstance(value, (TupleValue, ObjectValue)):
            if value.has(name):
                yield value.attributes[name]
            else:
                type_name = (
                    value.class_name if isinstance(value, ObjectValue) else value.type_name
                )
                if type_name == name:
                    yield value
        elif isinstance(value, AtomicValue) and value.type_name == name:
            yield value

    def _any_attribute(self, value: Value) -> Iterator[tuple[str, Value]]:
        """All one-step attribute moves (for plain variables)."""
        if isinstance(value, (SetValue, ListValue)):
            for element in value:
                yield from self._any_attribute(element)
        elif isinstance(value, (TupleValue, ObjectValue)):
            yield from value.attributes.items()

    def _descendants(self, value: Value) -> Iterator[tuple[tuple[str, ...], Value]]:
        """All attribute sequences of length >= 0 (for star variables).

        This is the OODB's expensive operation the paper contrasts with the
        single inclusion test on files (Section 5.3): "in traditional OODBMS,
        path expressions with variables are computationally more expensive
        ... the system has to actually traverse all possible paths".
        """
        self.report.values_visited += 1
        yield (), value
        for attr_name, child in self._any_attribute(value):
            for deeper_names, target in self._descendants(child):
                yield (attr_name,) + deeper_names, target


def _dedupe(bindings_list: list[Bindings]) -> list[Bindings]:
    seen: set[Bindings] = set()
    unique: list[Bindings] = []
    for bindings in bindings_list:
        if bindings not in seen:
            seen.add(bindings)
            unique.append(bindings)
    return unique
