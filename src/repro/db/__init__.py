"""Object database substrate.

The paper's baseline ("standard database implementations") parses the whole
file, loads its database image, and evaluates the query inside the DBMS.
This package is that DBMS: a small in-memory object-oriented database in the
style of O2 with an XSQL-subset query language [KKS92]:

- :mod:`repro.db.values` — the value model (atomic, tuple, set, list,
  object);
- :mod:`repro.db.model` — the database (classes and extents);
- :mod:`repro.db.query` — query AST (select / path expressions with
  variables / conditions);
- :mod:`repro.db.parser` — text syntax for queries;
- :mod:`repro.db.evaluator` — the naive evaluator used as the baseline;
- :mod:`repro.db.loader` — load structuring-schema parse results into a
  database.
"""

from repro.db.values import (
    Value,
    AtomicValue,
    TupleValue,
    SetValue,
    ListValue,
    ObjectValue,
    canonical,
)
from repro.db.model import Database
from repro.db.query import (
    Query,
    PathExpr,
    Attr,
    StarVar,
    SeqVars,
    Comparison,
    PathComparison,
    And,
    Or,
    Not,
    TrueCondition,
)
from repro.db.parser import parse_query
from repro.db.evaluator import NaiveEvaluator, EvaluationReport

__all__ = [
    "Value",
    "AtomicValue",
    "TupleValue",
    "SetValue",
    "ListValue",
    "ObjectValue",
    "canonical",
    "Database",
    "Query",
    "PathExpr",
    "Attr",
    "StarVar",
    "SeqVars",
    "Comparison",
    "PathComparison",
    "And",
    "Or",
    "Not",
    "TrueCondition",
    "parse_query",
    "NaiveEvaluator",
    "EvaluationReport",
]
