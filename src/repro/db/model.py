"""The in-memory object database.

A :class:`Database` holds class extents (ordered lists of
:class:`~repro.db.values.ObjectValue`).  Loading the database image of a
file means inserting every object reachable from the image's root value —
exactly the paper's baseline pipeline: "construct the database image of the
file (i.e. parse the file using the structuring schema, construct the
objects/tuples, and load them into the database)".
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.db.values import (
    ListValue,
    ObjectValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.errors import DatabaseError


class Database:
    """Class extents over immutable objects."""

    def __init__(self) -> None:
        self._extents: dict[str, list[ObjectValue]] = {}
        self._oids: set[int] = set()

    def insert(self, obj: ObjectValue) -> None:
        """Insert one object into its class extent (idempotent per oid)."""
        if obj.oid in self._oids:
            return
        self._oids.add(obj.oid)
        self._extents.setdefault(obj.class_name, []).append(obj)

    def load_value(self, value: Value) -> int:
        """Insert every object reachable from ``value``; return how many
        objects were inserted."""
        before = len(self._oids)
        for obj in iter_objects(value):
            self.insert(obj)
        return len(self._oids) - before

    def extent(self, class_name: str) -> tuple[ObjectValue, ...]:
        """All objects of a class (empty for unknown classes)."""
        return tuple(self._extents.get(class_name, ()))

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._extents))

    @property
    def object_count(self) -> int:
        return len(self._oids)

    def require_class(self, class_name: str) -> tuple[ObjectValue, ...]:
        if class_name not in self._extents:
            raise DatabaseError(
                f"no extent for class {class_name!r} (loaded classes: "
                f"{', '.join(self.classes) or 'none'})"
            )
        return self.extent(class_name)


def iter_objects(value: Value) -> Iterator[ObjectValue]:
    """All :class:`ObjectValue` nodes reachable from ``value`` (pre-order)."""
    if isinstance(value, ObjectValue):
        yield value
        for child in value.attributes.values():
            yield from iter_objects(child)
    elif isinstance(value, TupleValue):
        for child in value.attributes.values():
            yield from iter_objects(child)
    elif isinstance(value, (SetValue, ListValue)):
        for element in value:
            yield from iter_objects(element)


def database_from_values(values: Iterable[Value]) -> Database:
    """Build a database containing every object reachable from ``values``."""
    database = Database()
    for value in values:
        database.load_value(value)
    return database
