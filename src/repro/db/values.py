"""The object-database value model.

Matches the data model the paper borrows from XSQL/O2 (Section 2): classes
with object identity, tuple types, set and list values, and atomic values.
A BibTeX file, for instance, maps to a set of ``Reference`` objects whose
``Authors`` attribute is a set of ``Name`` tuples with ``First_Name`` and
``Last_Name`` string attributes.

Values are immutable.  :func:`canonical` converts any value to plain Python
data (dicts / frozensets / tuples / strings), which is how tests compare
query results across evaluation strategies (object identity is not part of
query-answer equality).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Union

from repro.errors import DatabaseError

_OID_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class AtomicValue:
    """A string (or stringly-typed scalar) value.

    ``type_name`` records which non-terminal produced the value (the
    innermost named one) so that paths can address atomic set elements by
    name (``r.Keywords.Keyword``); it does not affect canonical equality.
    """

    text: str
    type_name: str = ""

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class TupleValue:
    """A tuple value: named attributes, no identity.

    ``type_name`` names the tuple type (e.g. ``"Name"``).
    """

    type_name: str
    attributes: Mapping[str, "Value"]

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", dict(self.attributes))

    def get(self, attribute: str) -> "Value":
        try:
            return self.attributes[attribute]
        except KeyError:
            raise DatabaseError(
                f"tuple type {self.type_name!r} has no attribute {attribute!r} "
                f"(has: {', '.join(sorted(self.attributes))})"
            ) from None

    def has(self, attribute: str) -> bool:
        return attribute in self.attributes

    def __hash__(self) -> int:
        return hash((self.type_name, frozenset(self.attributes.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleValue):
            return NotImplemented
        return self.type_name == other.type_name and self.attributes == other.attributes


@dataclass(frozen=True)
class SetValue:
    """A set value.  Stored as a tuple but compared as a set."""

    elements: tuple["Value", ...]

    def __init__(self, elements: Iterable["Value"] = ()) -> None:
        object.__setattr__(self, "elements", tuple(elements))

    def __iter__(self) -> Iterator["Value"]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetValue):
            return NotImplemented
        return frozenset(self.elements) == frozenset(other.elements)

    def __hash__(self) -> int:
        return hash(frozenset(self.elements))


@dataclass(frozen=True)
class ListValue:
    """A list value (order matters)."""

    elements: tuple["Value", ...]

    def __init__(self, elements: Iterable["Value"] = ()) -> None:
        object.__setattr__(self, "elements", tuple(elements))

    def __iter__(self) -> Iterator["Value"]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)


@dataclass(frozen=True, eq=False)
class ObjectValue:
    """An object: identity (``oid``) plus named attributes."""

    class_name: str
    attributes: Mapping[str, "Value"]
    oid: int = field(default_factory=lambda: next(_OID_COUNTER))

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", dict(self.attributes))

    def get(self, attribute: str) -> "Value":
        try:
            return self.attributes[attribute]
        except KeyError:
            raise DatabaseError(
                f"class {self.class_name!r} has no attribute {attribute!r} "
                f"(has: {', '.join(sorted(self.attributes))})"
            ) from None

    def has(self, attribute: str) -> bool:
        return attribute in self.attributes

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash(self.oid)


Value = Union[AtomicValue, TupleValue, SetValue, ListValue, ObjectValue]


def atom(text: str) -> AtomicValue:
    """Shorthand constructor for an atomic string value."""
    return AtomicValue(text)


def canonical(value: Value) -> object:
    """Convert a value to plain, identity-free Python data.

    Objects become ``("object", class_name, {attr: canonical})``; sets become
    frozensets; lists become tuples.  Two query answers are "the same" iff
    their canonical forms are equal — this is what integration tests compare.
    """
    if isinstance(value, AtomicValue):
        return value.text
    if isinstance(value, TupleValue):
        return (
            "tuple",
            value.type_name,
            tuple(sorted((k, canonical(v)) for k, v in value.attributes.items())),
        )
    if isinstance(value, ObjectValue):
        return (
            "object",
            value.class_name,
            tuple(sorted((k, canonical(v)) for k, v in value.attributes.items())),
        )
    if isinstance(value, SetValue):
        return frozenset(canonical(element) for element in value)
    if isinstance(value, ListValue):
        return tuple(canonical(element) for element in value)
    raise DatabaseError(f"cannot canonicalise {value!r}")


def iter_children(value: Value) -> Iterator[tuple[str | None, Value]]:
    """Iterate the immediate sub-values of ``value`` as ``(attribute, child)``.

    Set/list elements yield ``None`` as the attribute.  Used by the path
    evaluator: path navigation descends through sets implicitly (XSQL
    semantics: ``r.Authors.Name`` ranges over the set members).
    """
    if isinstance(value, (TupleValue, ObjectValue)):
        for attribute, child in value.attributes.items():
            yield attribute, child
    elif isinstance(value, (SetValue, ListValue)):
        for element in value:
            yield None, element
