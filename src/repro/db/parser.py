"""Text syntax for the XSQL query subset.

Examples::

    SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"
    SELECT r.Authors.Name.Last_Name FROM References r
    SELECT r FROM References r
        WHERE r.*X.Last_Name = "Chang" OR r.Key = "Corl82a"
    SELECT r FROM References r WHERE r.Editors.Name = r.Authors.Name

Path-step conventions (documented, following the paper's notation):

- ``*X`` is a star variable — an arbitrary attribute sequence;
- a bare step matching one uppercase letter plus optional digits (``X``,
  ``X1``, ``Y2``) is a plain variable standing for exactly one attribute
  step; everything else is an attribute name.

Keywords are case-insensitive; string constants use double quotes.
"""

from __future__ import annotations

import re

from repro.db.query import (
    And,
    Attr,
    Comparison,
    Condition,
    Not,
    Or,
    PathComparison,
    PathExpr,
    Query,
    SeqVars,
    Source,
    StarVar,
    TrueCondition,
)
from repro.errors import QuerySyntaxError

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r'(?P<string>"(?P<string_body>[^"]*)")'
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<punct><>|=|\.|,|\*|\(|\))"
    r")"
)

_KEYWORDS = {"select", "from", "where", "and", "or", "not", "like"}
_PLAIN_VARIABLE_RE = re.compile(r"^[A-Z][0-9]*$")


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip():
                raise QuerySyntaxError(
                    f"cannot tokenize {text[position:position + 20]!r}", position
                )
            break
        if match.group("string") is not None:
            tokens.append(("string", match.group("string_body"), match.start()))
        elif match.group("ident") is not None:
            word = match.group("ident")
            kind = "keyword" if word.lower() in _KEYWORDS else "ident"
            value = word.lower() if kind == "keyword" else word
            tokens.append((kind, value, match.start()))
        else:
            tokens.append(("punct", match.group("punct"), match.start()))
        position = match.end()
    return tokens


class _QueryParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._position = 0

    # -- token plumbing -----------------------------------------------------------

    def _peek(self) -> tuple[str, str, int] | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> tuple[str, str, int]:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query", len(self._text))
        self._position += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> tuple[str, str, int]:
        token = self._advance()
        if token[0] != kind or (value is not None and token[1] != value):
            expected = value if value is not None else kind
            raise QuerySyntaxError(f"expected {expected!r}, found {token[1]!r}", token[2])
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token[0] == "keyword" and token[1] == word

    # -- grammar ---------------------------------------------------------------------

    def parse(self) -> Query:
        self._expect("keyword", "select")
        outputs = [self._parse_path()]
        while True:
            token = self._peek()
            if token is None or token[0] != "punct" or token[1] != ",":
                break
            self._advance()
            outputs.append(self._parse_path())
        self._expect("keyword", "from")
        sources = [self._parse_source()]
        while True:
            token = self._peek()
            if token is None or token[0] != "punct" or token[1] != ",":
                break
            self._advance()
            sources.append(self._parse_source())
        where: Condition = TrueCondition()
        if self._at_keyword("where"):
            self._advance()
            where = self._parse_or()
        if self._peek() is not None:
            token = self._peek()
            raise QuerySyntaxError(f"trailing input: {token[1]!r}", token[2])
        return Query(outputs=tuple(outputs), sources=tuple(sources), where=where)

    def _parse_source(self) -> Source:
        class_name = self._expect("ident")[1]
        var = self._expect("ident")[1]
        return Source(class_name=class_name, var=var)

    def _parse_or(self) -> Condition:
        left = self._parse_and()
        while self._at_keyword("or"):
            self._advance()
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Condition:
        left = self._parse_not()
        while self._at_keyword("and"):
            self._advance()
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Condition:
        if self._at_keyword("not"):
            self._advance()
            return Not(self._parse_not())
        token = self._peek()
        if token is not None and token[0] == "punct" and token[1] == "(":
            self._advance()
            inner = self._parse_or()
            self._expect("punct", ")")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Condition:
        left = self._parse_path()
        token = self._peek()
        if token is not None and token[0] == "keyword" and token[1] == "like":
            self._advance()
            literal = self._expect("string")
            return Comparison(path=left, op="like", literal=literal[1])
        op = self._expect("punct")[1]
        if op not in ("=", "<>"):
            raise QuerySyntaxError(f"expected '=', '<>' or LIKE, found {op!r}", 0)
        token = self._peek()
        if token is not None and token[0] == "string":
            self._advance()
            return Comparison(path=left, op=op, literal=token[1])
        right = self._parse_path()
        return PathComparison(left=left, op=op, right=right)

    def _parse_path(self) -> PathExpr:
        var = self._expect("ident")[1]
        steps = []
        while True:
            token = self._peek()
            if token is None or token[0] != "punct" or token[1] != ".":
                break
            self._advance()
            token = self._peek()
            if token is not None and token[0] == "punct" and token[1] == "*":
                self._advance()
                name = self._expect("ident")[1]
                steps.append(StarVar(name))
                continue
            name = self._expect("ident")[1]
            if _PLAIN_VARIABLE_RE.match(name):
                steps.append(SeqVars(name))
            else:
                steps.append(Attr(name))
        return PathExpr(var=var, steps=tuple(steps))


def parse_query(text: str) -> Query:
    """Parse an XSQL-subset query."""
    return _QueryParser(text).parse()
