"""Query AST: the XSQL subset of the paper.

Supported shape (Sections 2, 5.1–5.3)::

    SELECT <output>, ...  FROM <Class> <var>  WHERE <condition>

- outputs are the range variable itself (``SELECT r``) or attribute paths
  (``SELECT r.Authors.Name.Last_Name``);
- conditions compare a path to a string constant (``r.p = "Chang"``), or a
  path to a path (the join-like comparison of Section 5.2), combined with
  ``AND`` / ``OR`` / ``NOT``;
- path steps are attribute names, star variables ``*X`` ("no matter what is
  the path leading to this attribute"), or plain variables ``X`` standing
  for exactly one attribute step — a sequence ``X1.X2...Xn`` is "an
  arbitrary path of length n".

Variables with the same name must bind to the same attribute sequence
everywhere they occur; evaluation therefore deals in *bindings*
(variable -> attribute-name tuple), not booleans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import QueryError

# -- path steps ---------------------------------------------------------------


@dataclass(frozen=True)
class Attr:
    """A concrete attribute step."""

    name: str


@dataclass(frozen=True)
class StarVar:
    """``*X``: an arbitrary attribute sequence (zero or more steps)."""

    name: str


@dataclass(frozen=True)
class SeqVars:
    """One plain variable: exactly one attribute step.

    ``X1.X2...Xn`` in a path parses to n consecutive ``SeqVars`` steps.
    """

    name: str


PathStep = Union[Attr, StarVar, SeqVars]


@dataclass(frozen=True)
class PathExpr:
    """``var.step1.step2...`` — an attribute path from a range variable."""

    var: str
    steps: tuple[PathStep, ...] = ()

    def has_variables(self) -> bool:
        return any(not isinstance(step, Attr) for step in self.steps)

    def variable_names(self) -> set[str]:
        return {step.name for step in self.steps if not isinstance(step, Attr)}

    def attribute_names(self) -> list[str]:
        return [step.name for step in self.steps if isinstance(step, Attr)]

    def render(self) -> str:
        parts = [self.var]
        for step in self.steps:
            if isinstance(step, Attr):
                parts.append(step.name)
            elif isinstance(step, StarVar):
                parts.append(f"*{step.name}")
            else:
                parts.append(step.name)
        return ".".join(parts)


# -- conditions -----------------------------------------------------------------


@dataclass(frozen=True)
class TrueCondition:
    """No WHERE clause."""


@dataclass(frozen=True)
class Comparison:
    """``path op "constant"`` with op ``=``, ``<>`` or ``like``.

    ``like`` is PAT's lexical (prefix) search: the constant must end with a
    single ``*`` and matches values starting with the prefix before it.
    """

    path: PathExpr
    op: str
    literal: str

    def __post_init__(self) -> None:
        if self.op not in ("=", "<>", "like"):
            raise QueryError(f"unsupported comparison operator {self.op!r}")
        if self.op == "like":
            if not self.literal.endswith("*") or "*" in self.literal[:-1]:
                raise QueryError(
                    "LIKE patterns are prefixes: one trailing '*', e.g. \"Chan*\""
                )
            if len(self.literal) < 2:
                raise QueryError("LIKE prefix must be non-empty")

    @property
    def prefix(self) -> str:
        """The prefix of a ``like`` comparison."""
        assert self.op == "like"
        return self.literal[:-1]


@dataclass(frozen=True)
class PathComparison:
    """``path op path`` — the join-like comparison of Section 5.2."""

    left: PathExpr
    op: str
    right: PathExpr

    def __post_init__(self) -> None:
        if self.op not in ("=", "<>"):
            raise QueryError(f"unsupported comparison operator {self.op!r}")


@dataclass(frozen=True)
class And:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class Or:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class Not:
    child: "Condition"


Condition = Union[TrueCondition, Comparison, PathComparison, And, Or, Not]


# -- the query -------------------------------------------------------------------


@dataclass(frozen=True)
class Source:
    """One FROM-clause entry: a class extent bound to a range variable."""

    class_name: str
    var: str


@dataclass(frozen=True)
class Query:
    """One SELECT–FROM–WHERE block.

    ``sources`` may declare several range variables over (possibly the
    same) class extents — Section 5.2's "complex queries involving several
    view definitions or several occurrences of the same view (e.g. nested
    queries) use join".
    """

    outputs: tuple[PathExpr, ...]
    sources: tuple[Source, ...]
    where: Condition = TrueCondition()

    def __init__(
        self,
        outputs: tuple[PathExpr, ...],
        sources: tuple[Source, ...] | None = None,
        where: Condition = TrueCondition(),
        source_class: str | None = None,
        var: str | None = None,
    ) -> None:
        if sources is None:
            if source_class is None or var is None:
                raise QueryError("query needs sources (or source_class + var)")
            sources = (Source(class_name=source_class, var=var),)
        object.__setattr__(self, "outputs", tuple(outputs))
        object.__setattr__(self, "sources", tuple(sources))
        object.__setattr__(self, "where", where)
        self.__post_init__()

    def __post_init__(self) -> None:
        if not self.outputs:
            raise QueryError("query must select at least one output")
        if not self.sources:
            raise QueryError("query must range over at least one class")
        declared = [source.var for source in self.sources]
        if len(set(declared)) != len(declared):
            raise QueryError(f"duplicate range variables in FROM: {declared}")
        variables = set(declared)
        for output in self.outputs:
            if output.var not in variables:
                raise QueryError(
                    f"output {output.render()!r} does not use a declared "
                    f"range variable (declared: {sorted(variables)})"
                )
        for path in iter_condition_paths(self.where):
            if path.var not in variables:
                raise QueryError(
                    f"condition path {path.render()!r} does not use a declared "
                    f"range variable (declared: {sorted(variables)})"
                )

    # -- single-source conveniences (most queries) ---------------------------

    @property
    def source_class(self) -> str:
        return self.sources[0].class_name

    @property
    def var(self) -> str:
        return self.sources[0].var

    def is_single_source(self) -> bool:
        return len(self.sources) == 1

    def class_of(self, var: str) -> str:
        for source in self.sources:
            if source.var == var:
                return source.class_name
        raise QueryError(f"unknown range variable {var!r}")

    def is_identity_select(self) -> bool:
        """``SELECT r`` — the outputs are the bare range variable."""
        return len(self.outputs) == 1 and not self.outputs[0].steps

    def render(self) -> str:
        from_clause = ", ".join(
            f"{source.class_name} {source.var}" for source in self.sources
        )
        text = (
            f"SELECT {', '.join(o.render() for o in self.outputs)} "
            f"FROM {from_clause}"
        )
        if not isinstance(self.where, TrueCondition):
            text += f" WHERE {render_condition(self.where)}"
        return text


def iter_condition_paths(condition: Condition):
    """Yield every path expression inside a condition."""
    if isinstance(condition, Comparison):
        yield condition.path
    elif isinstance(condition, PathComparison):
        yield condition.left
        yield condition.right
    elif isinstance(condition, (And, Or)):
        yield from iter_condition_paths(condition.left)
        yield from iter_condition_paths(condition.right)
    elif isinstance(condition, Not):
        yield from iter_condition_paths(condition.child)


def condition_range_variables(condition: Condition) -> frozenset[str]:
    """The range variables a condition's paths mention."""
    return frozenset(path.var for path in iter_condition_paths(condition))


def split_conjuncts(condition: Condition) -> list[Condition]:
    """Flatten top-level ANDs into a conjunct list."""
    if isinstance(condition, And):
        return split_conjuncts(condition.left) + split_conjuncts(condition.right)
    if isinstance(condition, TrueCondition):
        return []
    return [condition]


def conjoin(conditions: list[Condition]) -> Condition:
    """Rebuild a condition from conjuncts."""
    if not conditions:
        return TrueCondition()
    combined = conditions[0]
    for conjunct in conditions[1:]:
        combined = And(combined, conjunct)
    return combined


def render_condition(condition: Condition) -> str:
    if isinstance(condition, TrueCondition):
        return "TRUE"
    if isinstance(condition, Comparison):
        if condition.op == "like":
            return f'{condition.path.render()} LIKE "{condition.literal}"'
        return f'{condition.path.render()} {condition.op} "{condition.literal}"'
    if isinstance(condition, PathComparison):
        return f"{condition.left.render()} {condition.op} {condition.right.render()}"
    if isinstance(condition, And):
        return f"({render_condition(condition.left)} AND {render_condition(condition.right)})"
    if isinstance(condition, Or):
        return f"({render_condition(condition.left)} OR {render_condition(condition.right)})"
    if isinstance(condition, Not):
        return f"NOT ({render_condition(condition.child)})"
    raise QueryError(f"cannot render condition {condition!r}")
