"""Loading file database images into the object database.

This is the "standard database implementation" pipeline the paper uses as
its baseline: parse the *whole* file with the structuring schema, construct
every object and complex value, and insert the objects into class extents.
The returned :class:`LoadReport` records the cost (bytes parsed = the whole
file, values built = everything), which benchmark E2 contrasts with the
index-based evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.counters import OperationCounters
from repro.db.model import Database
from repro.db.values import Value
from repro.schema.parser import ParseNode
from repro.schema.pushdown import InstantiationStats
from repro.schema.structuring import StructuringSchema


@dataclass
class LoadReport:
    """What it cost to load a file into the database."""

    bytes_parsed: int = 0
    values_built: int = 0
    objects_loaded: int = 0


@dataclass
class LoadedDatabase:
    """A database plus the artefacts of loading it."""

    database: Database
    root: Value
    tree: ParseNode
    report: LoadReport


def load_database(schema: StructuringSchema, text: str) -> LoadedDatabase:
    """Parse ``text`` with ``schema`` and load its full database image."""
    parse_counters = OperationCounters()
    tree = schema.parse(text, counters=parse_counters)
    stats = InstantiationStats()
    root = schema.instantiate(tree, stats=stats)
    database = Database()
    loaded = database.load_value(root)
    report = LoadReport(
        bytes_parsed=parse_counters.bytes_scanned,
        values_built=stats.values_built,
        objects_loaded=loaded,
    )
    return LoadedDatabase(database=database, root=root, tree=tree, report=report)
