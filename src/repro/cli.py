"""Command-line interface.

Examples::

    # Generate a synthetic corpus
    python -m repro generate --workload bibtex --entries 200 --seed 1 > refs.bib

    # Query a file through its database view
    python -m repro query --workload bibtex --file refs.bib \
        'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'

    # Show the plan (translation + Section 3.2 rewrites)
    python -m repro explain --workload bibtex --file refs.bib 'SELECT ...'

    # EXPLAIN ANALYZE: estimated costs next to measured per-stage actuals
    python -m repro analyze --workload bibtex --file refs.bib 'SELECT ...'
    python -m repro analyze --workload bibtex --file refs.bib --json 'SELECT ...'

    # Build and persist indexes, then query without re-parsing
    python -m repro index --workload bibtex --file refs.bib --out ./idx
    python -m repro query --workload bibtex --index ./idx 'SELECT ...'

    # Fault tolerance: degrade past a corrupt/stale saved index via full
    # scans (warnings on stderr), or fail fast with typed errors
    python -m repro query --workload bibtex --index ./idx --degrade 'SELECT ...'
    python -m repro query --workload bibtex --index ./idx --strict 'SELECT ...'

    # Guarded evaluation: abort (or degrade) past a resource budget
    python -m repro query --workload bibtex --file refs.bib \
        --budget-ms 50 --budget-regions 10000 'SELECT ...'

    # Index statistics
    python -m repro stats --workload bibtex --file refs.bib

    # Sharded corpora: one isolated index per file (or per byte-balanced
    # chunk of one file), scatter-gather queries with partial results
    python -m repro shard build --workload bibtex --out ./sidx --files a.bib b.bib
    python -m repro shard build --workload bibtex --out ./sidx \
        --file refs.bib --shards 8
    python -m repro shard query --workload bibtex --index ./sidx 'SELECT ...'
    python -m repro shard query --workload bibtex --index ./sidx \
        --fail-fast --max-parallel 4 'SELECT ...'

    # Replication: N complete copies per shard, breaker-aware failover on
    # read, and a scrubber that verifies checksums + corpus fingerprints
    # and heals damage from a verified peer (quarantining, never deleting)
    python -m repro shard build --workload bibtex --out ./sidx \
        --file refs.bib --shards 4 --replicas 2
    python -m repro scrub --workload bibtex --index ./sidx
    python -m repro scrub --workload bibtex --index ./sidx --repair

``query``, ``stats``, ``analyze``, and ``shard query`` accept ``--json``
for machine-readable output, assembled from the unified response
dataclasses in :mod:`repro.api` — the exact shapes the query server
emits (``analyze`` is validated in CI against
``schemas/analyze.schema.json``, the server envelopes against
``schemas/server.schema.json``)::

    # Long-lived query server over a corpus or saved (sharded) index
    python -m repro serve --workload bibtex --file refs.bib --port 8080
    python -m repro serve --workload bibtex --index ./sidx --workers 8
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro.api import AnalyzeResponse, QueryRequest, query_response, render_value
from repro.cache import CacheConfig
from repro.core.engine import FileQueryEngine
from repro.errors import ReproError
from repro.index.config import IndexConfig
from repro.resilience import DegradationPolicy, ResourceBudget

WORKLOADS: dict[str, tuple[Callable, Callable]] = {}


def _register_workloads() -> None:
    from repro.workloads.bibtex import bibtex_schema, generate_bibtex
    from repro.workloads.logs import generate_log, log_schema
    from repro.workloads.sgml import generate_sgml, sgml_schema
    from repro.workloads.source import generate_source, source_schema

    WORKLOADS["bibtex"] = (bibtex_schema, lambda n, s: generate_bibtex(entries=n, seed=s))
    WORKLOADS["logs"] = (log_schema, lambda n, s: generate_log(entries=n, seed=s))
    WORKLOADS["sgml"] = (sgml_schema, lambda n, s: generate_sgml(documents=n, seed=s))
    WORKLOADS["source"] = (source_schema, lambda n, s: generate_source(functions=n, seed=s))


def _schema_for(name: str):
    _register_workloads()
    try:
        return WORKLOADS[name][0]()
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r} (available: {', '.join(sorted(WORKLOADS))})"
        )


def _policy_from_args(args: argparse.Namespace) -> DegradationPolicy | None:
    if getattr(args, "strict", False):
        return DegradationPolicy.strict()
    if getattr(args, "degrade", False):
        return DegradationPolicy.degrade()
    return None  # the engine default


def _budget_from_args(args: argparse.Namespace) -> ResourceBudget | None:
    ms = getattr(args, "budget_ms", None)
    regions = getattr(args, "budget_regions", None)
    parsed_bytes = getattr(args, "budget_bytes", None)
    if ms is None and regions is None and parsed_bytes is None:
        return None
    return ResourceBudget(
        deadline_s=ms / 1e3 if ms is not None else None,
        max_regions=regions,
        max_bytes_parsed=parsed_bytes,
    )


def _feedback_from_args(args: argparse.Namespace):
    """``--feedback`` / ``--feedback-dir`` → a
    :class:`~repro.feedback.FeedbackConfig`, or ``None`` (= disabled, the
    default: cold planning is byte-identical to a feedback-free build)."""
    directory = getattr(args, "feedback_dir", None)
    if not getattr(args, "feedback", False) and directory is None:
        return None
    from repro.feedback import FeedbackConfig

    if directory is None and getattr(args, "index", None):
        # Persist calibration next to the index it was learned against.
        directory = args.index
    return FeedbackConfig(directory=directory)


def _engine_from_args(args: argparse.Namespace) -> FileQueryEngine:
    schema = _schema_for(args.workload)
    cache_config = (
        CacheConfig.disabled() if getattr(args, "no_cache", False) else CacheConfig()
    )
    policy = _policy_from_args(args)
    feedback = _feedback_from_args(args)
    if getattr(args, "index", None):
        # --file alongside --index names the current source: it enables the
        # staleness check and gives recovery a fresh text to fall back on.
        return FileQueryEngine.from_saved(
            schema,
            args.index,
            cache_config=cache_config,
            policy=policy,
            source_path=args.file or None,
            feedback=feedback,
        )
    if not args.file:
        raise SystemExit("either --file or --index is required")
    with open(args.file, "r", encoding="utf-8") as handle:
        text = handle.read()
    config = IndexConfig.full()
    if getattr(args, "partial", None):
        config = IndexConfig.partial(set(args.partial.split(",")))
    return FileQueryEngine(
        schema,
        text,
        config,
        cache_config=cache_config,
        policy=policy,
        feedback=feedback,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    _register_workloads()
    if args.workload not in WORKLOADS:
        raise SystemExit(f"unknown workload {args.workload!r}")
    sys.stdout.write(WORKLOADS[args.workload][1](args.entries, args.seed))
    return 0


def _print_warnings(result) -> None:
    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    result = engine.query(args.query, budget=_budget_from_args(args))
    if getattr(args, "json", False):
        response = query_response(result, QueryRequest(query=args.query))
        print(json.dumps(response.to_dict(), indent=2))
        _print_warnings(result)
        return 0
    for row in result.rows:
        print(" | ".join(render_value(value) for value in row))
    _print_warnings(result)
    stats = result.stats
    cache_note = ""
    if stats.cache_hits or stats.cache_misses:
        cache_note = (
            f", cache {stats.cache_hits} hit(s)"
            f" ({stats.bytes_parse_avoided} bytes not reparsed)"
        )
    print(
        f"-- {len(result.rows)} row(s), strategy {stats.strategy}, "
        f"{stats.bytes_parsed} bytes parsed{cache_note}",
        file=sys.stderr,
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    print(engine.explain(args.query))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    response = AnalyzeResponse.from_analysis(engine.analyze(args.query))
    if getattr(args, "json", False):
        print(json.dumps(response.to_dict(), indent=2))
    else:
        print(response.text)
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    replicas = _replicas_from_args(args)
    engine.save(args.out, source_path=args.file or None, replicas=replicas)
    where = f"{args.out} ({replicas} replica(s))" if replicas else args.out
    print(f"saved index to {where}", file=sys.stderr)
    print(engine.statistics().summary())
    return 0


def _sharded_engine_from_args(args: argparse.Namespace):
    from repro.shard import ShardedEngine

    schema = _schema_for(args.workload)
    cache_config = (
        CacheConfig.disabled() if getattr(args, "no_cache", False) else CacheConfig()
    )
    options = {
        "cache_config": cache_config,
        "policy": _policy_from_args(args),
        "fail_fast": getattr(args, "fail_fast", False),
        "feedback": _feedback_from_args(args),
    }
    if getattr(args, "max_parallel", None):
        options["max_parallel"] = args.max_parallel
    return ShardedEngine.from_saved(schema, args.index, **options)


def _live_engine_from_args(args: argparse.Namespace):
    from repro.live import LiveEngine

    schema = _schema_for(args.workload)
    if not getattr(args, "index", None):
        raise SystemExit("live commands need --index DIR (a saved sharded index)")
    cache_config = (
        CacheConfig.disabled() if getattr(args, "no_cache", False) else CacheConfig()
    )
    return LiveEngine.open(
        schema,
        args.index,
        max_shard_bytes=getattr(args, "max_shard_bytes", None),
        ack_quorum=getattr(args, "ack_quorum", None),
        cache_config=cache_config,
        policy=_policy_from_args(args),
        feedback=_feedback_from_args(args),
    )


def _cmd_live_append(args: argparse.Namespace) -> int:
    engine = _live_engine_from_args(args)
    try:
        records: list[str] = list(args.record or [])
        if not records:
            data = sys.stdin.read()
            if args.lines:
                records = [line + "\n" for line in data.splitlines() if line.strip()]
            elif data:
                records = [data]
        if not records:
            raise SystemExit(
                "nothing to append: pass --record TEXT (repeatable) or pipe "
                "records on stdin (--lines for one record per line)"
            )
        last_seq = None
        for record in records:
            last_seq = engine.append(record)
        status = engine.status()
        print(
            f"appended {len(records)} record(s) through seq {last_seq} "
            f"to shard {status['tail']} "
            f"({status['pending_records']} pending, journal "
            f"{status['journal_bytes']} byte(s))",
            file=sys.stderr,
        )
        if args.compact:
            return _print_compaction(engine.compact())
        return 0
    finally:
        engine.close()


def _print_compaction(report: dict) -> int:
    folded = report.get("folded", {})
    if folded:
        for name, count in folded.items():
            print(f"folded {count} record(s) into shard {name}", file=sys.stderr)
    else:
        print("nothing pending; base indexes already current", file=sys.stderr)
    split = report.get("split")
    if split:
        print(
            f"split shard {split['shard']} ({split['bytes']} bytes) into "
            f"{', '.join(split['into'])}",
            file=sys.stderr,
        )
    return 0


def _cmd_live_compact(args: argparse.Namespace) -> int:
    engine = _live_engine_from_args(args)
    try:
        return _print_compaction(engine.compact())
    finally:
        engine.close()


def _cmd_live_status(args: argparse.Namespace) -> int:
    engine = _live_engine_from_args(args)
    try:
        status = engine.status()
        if getattr(args, "json", False):
            print(json.dumps(status, indent=2))
            return 0
        print(f"live index at {status['root']}")
        print(
            f"  {len(status['shards'])} shard(s), tail {status['tail']}, "
            f"next seq {status['next_seq']}"
        )
        print(
            f"  {status['pending_records']} pending record(s), "
            f"{status['journal_bytes']} journal byte(s)"
        )
        for shard in status["shards"]:
            print(
                f"  {shard['name']}: applied_seq {shard['applied_seq']}, "
                f"{shard['pending']} pending, journal {shard['journal_bytes']} B"
            )
        return 0
    finally:
        engine.close()


def _replicas_from_args(args: argparse.Namespace) -> int | None:
    replicas = getattr(args, "replicas", None)
    if replicas is None:
        return None
    if replicas < 2:
        raise SystemExit("--replicas needs at least 2 copies to be worth the disk")
    return replicas


def _cmd_shard_build(args: argparse.Namespace) -> int:
    from repro.shard import ShardedEngine

    schema = _schema_for(args.workload)
    config = IndexConfig.full()
    if getattr(args, "partial", None):
        config = IndexConfig.partial(set(args.partial.split(",")))
    if args.files:
        engine = ShardedEngine.from_paths(schema, args.files, config=config)
    elif args.file:
        if not args.shards or args.shards < 1:
            raise SystemExit("--file needs --shards N (how many chunks to cut)")
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
        engine = ShardedEngine.split(schema, text, args.shards, config=config)
    else:
        raise SystemExit("either --files F [F ...] or --file F --shards N is required")
    replicas = _replicas_from_args(args)
    engine.save(args.out, replicas=replicas)
    copies = f", {replicas} replica(s) each" if replicas else ""
    print(
        f"saved sharded index ({len(engine.shard_names)} shard(s){copies}) "
        f"to {args.out}",
        file=sys.stderr,
    )
    for name in engine.shard_names:
        print(f"  {name}", file=sys.stderr)
    return 0


def _cmd_shard_query(args: argparse.Namespace) -> int:
    engine = _sharded_engine_from_args(args)
    result = engine.query(args.query, budget=_budget_from_args(args))
    if getattr(args, "json", False):
        response = query_response(result, QueryRequest(query=args.query))
        print(json.dumps(response.to_dict(), indent=2))
        _print_warnings(result)
        return 0
    for row in result.rows:
        print(" | ".join(render_value(value) for value in row))
    _print_warnings(result)
    stats = result.stats
    print(
        f"-- {len(result.rows)} row(s) from {stats.healthy_shards}/"
        f"{len(stats.shards)} shard(s), {stats.retries} retry(ies)",
        file=sys.stderr,
    )
    return 0


def _cmd_shard_explain(args: argparse.Namespace) -> int:
    engine = _sharded_engine_from_args(args)
    print(engine.explain(args.query))
    return 0


def _cmd_shard_analyze(args: argparse.Namespace) -> int:
    engine = _sharded_engine_from_args(args)
    response = AnalyzeResponse.from_analysis(engine.analyze(args.query))
    if getattr(args, "json", False):
        print(json.dumps(response.to_dict(), indent=2))
    else:
        print(response.text)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    response = engine.stats()
    calibration = response.calibration
    if getattr(args, "json", False):
        print(json.dumps(response.to_dict(), indent=2))
        return 0
    print(engine.statistics().summary())
    print(f"cache:                  {engine.cache_config.describe()}")
    print(engine.cache_stats.summary())
    if calibration["enabled"]:
        state = "calibrated" if calibration["calibrated"] else "cold"
        print(
            f"feedback:               enabled ({state}: "
            f"{calibration['observations']} observation(s) over "
            f"{calibration['keys']} key(s), version {calibration['version']})"
        )
    else:
        print("feedback:               disabled (--feedback to enable)")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.shard.scrub import scrub_index

    schema = _schema_for(args.workload)
    report = scrub_index(schema, args.index, repair=args.repair)
    if getattr(args, "json", False):
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(
            f"scrubbed {report.shards_checked} shard(s), "
            f"{report.replicas_checked} replica(s): "
            f"{'clean' if report.clean else f'{len(report.findings)} finding(s)'}"
        )
        for finding in report.findings:
            where = finding.shard if finding.replica is None else (
                f"{finding.shard}/{finding.replica}"
            )
            print(f"  {finding.kind:12s} {where}: {finding.detail}")
        for repair in report.repairs:
            where = repair.shard if repair.replica is None else (
                f"{repair.shard}/{repair.replica}"
            )
            print(f"  {repair.action:12s} {where}: {repair.detail}")
    for warning in report.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    # Clean pass → 0.  Findings healed in this pass → 0 (the index is
    # healthy *now*).  Unrepaired damage (or --repair not given) → 1.
    if report.clean:
        return 0
    if args.repair and not report.unrepaired:
        return 0
    return 1


def _scrubber_from_args(args: argparse.Namespace):
    interval = getattr(args, "scrub_interval_s", None)
    if not interval:
        return None
    if not getattr(args, "index", None):
        raise SystemExit("--scrub-interval-s needs --index (a saved sharded index)")
    from repro.shard.manifest import is_sharded_index
    from repro.shard.scrub import ScrubDaemon, scrub_index

    if not is_sharded_index(args.index):
        raise SystemExit("--scrub-interval-s needs a *sharded* --index to scrub")
    schema = _schema_for(args.workload)
    return ScrubDaemon(
        lambda: scrub_index(schema, args.index, repair=True),
        interval_s=interval,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.server import QueryServer, ServerConfig
    from repro.shard.manifest import is_sharded_index

    if getattr(args, "live", False):
        backend = _live_engine_from_args(args)
    elif getattr(args, "index", None) and is_sharded_index(args.index):
        backend = _sharded_engine_from_args(args)
    else:
        backend = _engine_from_args(args)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        budget=_budget_from_args(args),
        default_page_size=args.page_size,
        max_page_size=args.max_page_size,
        drain_deadline_s=getattr(args, "drain_s", 5.0),
    )
    server = QueryServer(backend, config, scrubber=_scrubber_from_args(args))

    # SIGTERM/SIGINT only set an event: calling server.shutdown() from
    # inside a handler would deadlock against the serve loop it interrupts.
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    server.start()
    print(
        f"serving {type(backend).__name__} on {server.url} "
        f"({config.workers} worker(s), queue depth {config.queue_depth}; "
        f"Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        while not stop.wait(0.5):
            pass
    finally:
        server.shutdown()
    print("server stopped", file=sys.stderr)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import BACKENDS, SCENARIOS, parse_seeds, render_report, run_matrix

    if args.list_scenarios:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name:16s} [{', '.join(scenario.backends)}]")
            print(f"    {scenario.description}")
            print(f"    injection: {scenario.injection}")
        return 0
    backends = BACKENDS if args.backend == "both" else (args.backend,)
    runs = run_matrix(
        parse_seeds(args.seeds),
        scenarios=args.scenario or None,
        backends=backends,
    )
    print(render_report(runs))
    return 0 if all(run.passed for run in runs) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query semi-structured files through a database view "
        "(Consens & Milo, SIGMOD 1994).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_feedback(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--feedback",
            action=argparse.BooleanOptionalAction,
            default=False,
            help="calibrate the cost model from estimate-vs-actual history "
            "fed by `analyze` runs (off by default: cold plans match a "
            "feedback-free build)",
        )
        sub.add_argument(
            "--feedback-dir",
            dest="feedback_dir",
            help="directory holding feedback.json (implies --feedback; "
            "defaults to the --index directory when one is given)",
        )

    def add_common(sub: argparse.ArgumentParser, with_query: bool) -> None:
        sub.add_argument("--workload", required=True, help="bibtex | logs | sgml")
        sub.add_argument("--file", help="corpus file to parse and index")
        sub.add_argument("--index", help="directory of a saved index")
        sub.add_argument(
            "--partial",
            help="comma-separated non-terminals for a partial region index",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            dest="no_cache",
            help="disable the engine's evaluation/parse caches",
        )
        mode = sub.add_mutually_exclusive_group()
        mode.add_argument(
            "--strict",
            action="store_true",
            help="fail fast: typed errors on corrupt/stale indexes, "
            "malformed regions, and blown budgets (no fallbacks)",
        )
        mode.add_argument(
            "--degrade",
            action="store_true",
            help="keep answering: full-scan past corrupt/stale indexes and "
            "blown budgets, skip malformed regions (warnings on stderr)",
        )
        add_feedback(sub)
        if with_query:
            sub.add_argument("query", help="XSQL-subset query text")

    generate = commands.add_parser("generate", help="emit a synthetic corpus")
    generate.add_argument("--workload", required=True)
    generate.add_argument("--entries", type=int, default=100)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    def add_json(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON instead of text",
        )

    query = commands.add_parser("query", help="run a query")
    add_common(query, with_query=True)
    add_json(query)
    query.add_argument(
        "--budget-ms",
        type=float,
        dest="budget_ms",
        help="wall-clock budget for the execution, in milliseconds",
    )
    query.add_argument(
        "--budget-regions",
        type=int,
        dest="budget_regions",
        help="cap on regions materialized by the algebra evaluator",
    )
    query.add_argument(
        "--budget-bytes",
        type=int,
        dest="budget_bytes",
        help="cap on file bytes (re-)parsed during execution",
    )
    query.set_defaults(handler=_cmd_query)

    explain = commands.add_parser("explain", help="show a query's plan")
    add_common(explain, with_query=True)
    explain.set_defaults(handler=_cmd_explain)

    analyze = commands.add_parser(
        "analyze",
        help="run a query and show estimated vs measured costs "
        "(EXPLAIN ANALYZE)",
    )
    add_common(analyze, with_query=True)
    add_json(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    index = commands.add_parser("index", help="build and persist indexes")
    add_common(index, with_query=False)
    index.add_argument("--out", required=True, help="output directory")
    index.add_argument(
        "--replicas",
        type=int,
        help="persist N complete copies of the index (replica-{i}/ dirs)",
    )
    index.set_defaults(handler=_cmd_index)

    stats = commands.add_parser("stats", help="index statistics")
    add_common(stats, with_query=False)
    add_json(stats)
    stats.set_defaults(handler=_cmd_stats)

    serve = commands.add_parser(
        "serve",
        help="long-lived HTTP query server over a corpus or saved index "
        "(POST /query /explain /analyze, GET /stats /healthz)",
    )
    add_common(serve, with_query=False)
    serve.add_argument(
        "--live",
        action="store_true",
        help="serve a saved sharded --index as a live engine: enables "
        "journaled POST /append next to the query endpoints",
    )
    serve.add_argument(
        "--max-shard-bytes",
        type=int,
        dest="max_shard_bytes",
        help="with --live: split the tail shard during compaction once it "
        "exceeds this many bytes",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="concurrently executing requests (the worker pool size)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        dest="queue_depth",
        default=16,
        help="requests allowed to wait past the workers; anything more "
        "is rejected with a structured 429",
    )
    serve.add_argument(
        "--page-size",
        type=int,
        dest="page_size",
        help="default rows per response page (unset = everything at once)",
    )
    serve.add_argument(
        "--max-page-size",
        type=int,
        dest="max_page_size",
        default=10_000,
        help="largest page a client may request",
    )
    serve.add_argument(
        "--budget-ms",
        type=float,
        dest="budget_ms",
        help="server-level wall-clock budget; each request's quota "
        "inherits this deadline",
    )
    serve.add_argument(
        "--budget-regions",
        type=int,
        dest="budget_regions",
        help="server-level region cap, split across workers per request",
    )
    serve.add_argument(
        "--budget-bytes",
        type=int,
        dest="budget_bytes",
        help="server-level (re-)parse byte cap, split across workers",
    )
    serve.add_argument(
        "--drain-s",
        type=float,
        dest="drain_s",
        default=5.0,
        help="graceful-shutdown window: how long SIGTERM waits for "
        "in-flight requests before detaching them",
    )
    serve.add_argument(
        "--ack-quorum",
        type=int,
        dest="ack_quorum",
        help="with --live over a replicated index: replica journals that "
        "must fsync before an append is acknowledged (default: all)",
    )
    serve.add_argument(
        "--scrub-interval-s",
        type=float,
        dest="scrub_interval_s",
        help="run a background scrub-and-repair pass over the sharded "
        "--index every N seconds (jittered; findings in GET /stats)",
    )
    serve.set_defaults(handler=_cmd_serve)

    scrub = commands.add_parser(
        "scrub",
        help="verify every replica of every shard (CRC32s + corpus "
        "fingerprints); --repair quarantines damage and heals from a "
        "verified peer or the recorded source",
    )
    scrub.add_argument("--workload", required=True, help="bibtex | logs | sgml")
    scrub.add_argument(
        "--index", required=True, help="directory of a saved sharded index"
    )
    scrub.add_argument(
        "--repair",
        action="store_true",
        help="heal what verification finds: quarantine the damaged copy "
        "(never delete), then copy a verified peer or rebuild from source",
    )
    add_json(scrub)
    scrub.set_defaults(handler=_cmd_scrub)

    chaos = commands.add_parser(
        "chaos",
        help="seed-driven chaos matrix: inject faults (hangs, corruption, "
        "stalls, overload) and verify the degradation contracts hold",
    )
    chaos.add_argument(
        "--seeds",
        default="0..7",
        help="seeds to run: N, N..M, or a comma-separated mix (default 0..7)",
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        help="run only this scenario (repeatable; --list-scenarios to see them)",
    )
    chaos.add_argument(
        "--backend",
        choices=["solo", "sharded", "both"],
        default="both",
        help="engine(s) to drive the scenarios against",
    )
    chaos.add_argument(
        "--list-scenarios",
        action="store_true",
        dest="list_scenarios",
        help="list the registered scenarios and their injection points",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    shard = commands.add_parser(
        "shard",
        help="sharded corpora: one fault-isolated index per file, "
        "scatter-gather queries with partial results",
    )
    shard_commands = shard.add_subparsers(dest="shard_command", required=True)

    build = shard_commands.add_parser(
        "build", help="build and persist one index per shard"
    )
    build.add_argument("--workload", required=True, help="bibtex | logs | sgml")
    build.add_argument(
        "--files", nargs="+", help="corpus files, one shard per file"
    )
    build.add_argument(
        "--file", help="single corpus file to cut into --shards chunks"
    )
    build.add_argument(
        "--shards",
        type=int,
        help="with --file: number of byte-balanced chunks to cut "
        "(at record boundaries)",
    )
    build.add_argument(
        "--partial",
        help="comma-separated non-terminals for partial region indexes",
    )
    build.add_argument(
        "--replicas",
        type=int,
        help="persist N complete copies of every shard (replica-{i}/ "
        "dirs); reads fail over between them and scrub heals damage",
    )
    build.add_argument("--out", required=True, help="output directory")
    build.set_defaults(handler=_cmd_shard_build)

    def add_shard_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workload", required=True, help="bibtex | logs | sgml")
        sub.add_argument(
            "--index", required=True, help="directory of a saved sharded index"
        )
        sub.add_argument(
            "--fail-fast",
            action="store_true",
            dest="fail_fast",
            help="raise a typed ShardFailedError on the first unhealthy "
            "shard instead of returning a partial result",
        )
        sub.add_argument(
            "--max-parallel",
            type=int,
            dest="max_parallel",
            help="cap on concurrently evaluating shards (default 8)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            dest="no_cache",
            help="disable the per-shard evaluation/parse caches",
        )
        mode = sub.add_mutually_exclusive_group()
        mode.add_argument(
            "--strict",
            action="store_true",
            help="typed errors on corrupt/stale shard indexes (a damaged "
            "shard fails instead of degrading to a full scan)",
        )
        mode.add_argument(
            "--degrade",
            action="store_true",
            help="keep answering: degraded shards serve full scans, "
            "warnings on stderr",
        )
        add_feedback(sub)
        sub.add_argument("query", help="XSQL-subset query text")

    shard_query = shard_commands.add_parser(
        "query", help="scatter-gather a query over all shards"
    )
    add_shard_common(shard_query)
    add_json(shard_query)
    shard_query.add_argument(
        "--budget-ms",
        type=float,
        dest="budget_ms",
        help="per-shard wall-clock budget, in milliseconds",
    )
    shard_query.add_argument(
        "--budget-regions",
        type=int,
        dest="budget_regions",
        help="per-shard cap on regions materialized",
    )
    shard_query.add_argument(
        "--budget-bytes",
        type=int,
        dest="budget_bytes",
        help="per-shard cap on file bytes (re-)parsed",
    )
    shard_query.set_defaults(handler=_cmd_shard_query)

    shard_explain = shard_commands.add_parser(
        "explain", help="show the shared per-shard plan and shard roster"
    )
    add_shard_common(shard_explain)
    shard_explain.set_defaults(handler=_cmd_shard_explain)

    shard_analyze = shard_commands.add_parser(
        "analyze",
        help="EXPLAIN ANALYZE across shards (per-shard stats included)",
    )
    add_shard_common(shard_analyze)
    add_json(shard_analyze)
    shard_analyze.set_defaults(handler=_cmd_shard_analyze)

    live = commands.add_parser(
        "live",
        help="crash-safe live ingestion over a saved sharded index: "
        "journaled appends, delta-segment queries, compaction",
    )
    live_commands = live.add_subparsers(dest="live_command", required=True)

    def add_live_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workload", required=True, help="bibtex | logs | sgml")
        sub.add_argument(
            "--index", required=True, help="directory of a saved sharded index"
        )
        sub.add_argument(
            "--max-shard-bytes",
            type=int,
            dest="max_shard_bytes",
            help="split the tail shard during compaction once its corpus "
            "exceeds this many bytes",
        )
        sub.add_argument(
            "--ack-quorum",
            type=int,
            dest="ack_quorum",
            help="over a replicated index: replica journals that must "
            "fsync before an append is acknowledged (default: all)",
        )

    live_append = live_commands.add_parser(
        "append",
        help="durably append records (journaled + fsynced before the ack)",
    )
    add_live_common(live_append)
    live_append.add_argument(
        "--record",
        action="append",
        help="record text to append (repeatable; default: read stdin)",
    )
    live_append.add_argument(
        "--lines",
        action="store_true",
        help="treat each non-blank stdin line as one record (for "
        "line-oriented workloads like logs)",
    )
    live_append.add_argument(
        "--compact",
        action="store_true",
        help="fold the delta into the base indexes after appending",
    )
    live_append.set_defaults(handler=_cmd_live_append)

    live_compact = live_commands.add_parser(
        "compact",
        help="fold journaled deltas into the base shard indexes "
        "(and split an oversized tail shard)",
    )
    add_live_common(live_compact)
    live_compact.set_defaults(handler=_cmd_live_compact)

    live_status = live_commands.add_parser(
        "status", help="journal checkpoints and pending delta sizes"
    )
    add_live_common(live_status)
    add_json(live_status)
    live_status.set_defaults(handler=_cmd_live_status)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
