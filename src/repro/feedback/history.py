"""The estimate-vs-actual calibration history.

Every key is a ``(operator kind, region name, corpus fingerprint)`` triple:
the *kind* says which algebra operator produced the cardinality, the
*region* anchors it to the driving region name (the leftmost name in the
operator's subtree), and the *fingerprint* pins it to one corpus state —
history learned on one corpus (or one shard) never contaminates another.

The store accumulates estimated and actual row counts per key and exposes
a multiplicative *correction* (``actual_total / estimated_total``, clamped)
that the :class:`~repro.feedback.calibrate.CalibratedCostModel` folds into
its cardinality estimates.  A monotonically increasing :attr:`version`
changes whenever a correction moves materially, so plan caches built under
stale costs can be invalidated (see
:class:`~repro.core.planner.Planner`).

Persistence is one JSON file with a SHA-256 payload checksum; load
failures raise the typed
:class:`~repro.errors.CalibrationCorruptError` instead of silently
steering plans with garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import CalibrationCorruptError

#: Corrections are clamped into this band: one wildly mis-measured run must
#: not swing estimates by more than a constant factor in either direction.
MIN_CORRECTION = 1.0 / 64.0
MAX_CORRECTION = 64.0

#: Relative movement of a key's correction below which :attr:`version` does
#: not bump — repeated identical queries converge and stop invalidating
#: plan caches.
_STABLE_FRACTION = 0.05

_FORMAT_VERSION = 1

#: File name used inside a feedback directory.
HISTORY_FILENAME = "feedback.json"


@dataclass
class CalibrationRecord:
    """Accumulated estimate-vs-actual evidence for one key."""

    observations: int = 0
    estimated_total: float = 0.0
    actual_total: float = 0.0
    last_estimated: float = 0.0
    last_actual: float = 0.0

    @property
    def correction(self) -> float:
        """The multiplicative fix-up for estimates under this key."""
        if self.observations == 0 or self.estimated_total <= 0.0:
            return 1.0
        ratio = self.actual_total / self.estimated_total
        return min(MAX_CORRECTION, max(MIN_CORRECTION, ratio))

    def to_dict(self) -> dict[str, Any]:
        return {
            "observations": self.observations,
            "estimated_total": self.estimated_total,
            "actual_total": self.actual_total,
            "last_estimated": self.last_estimated,
            "last_actual": self.last_actual,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CalibrationRecord":
        return cls(
            observations=int(payload["observations"]),
            estimated_total=float(payload["estimated_total"]),
            actual_total=float(payload["actual_total"]),
            last_estimated=float(payload["last_estimated"]),
            last_actual=float(payload["last_actual"]),
        )


HistoryKey = tuple[str, str, str]  # (operator kind, region name, fingerprint)


@dataclass(frozen=True)
class ReplanEvent:
    """One adaptive re-planning decision (kept for stats/JSON output)."""

    node: str
    estimated: float
    actual: int
    factor: float
    from_strategy: str
    to_strategy: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "estimated": self.estimated,
            "actual": self.actual,
            "factor": self.factor,
            "from_strategy": self.from_strategy,
            "to_strategy": self.to_strategy,
        }


class FeedbackHistory:
    """Thread-safe persisted store of estimate-vs-actual observations."""

    def __init__(self) -> None:
        self._records: dict[HistoryKey, CalibrationRecord] = {}
        self._version = 0
        self._lock = threading.RLock()

    # -- observation ---------------------------------------------------------

    @property
    def version(self) -> int:
        """Bumps whenever calibration state changes materially (new key, or
        a correction moving by more than ~5%).  Plan caches key on it."""
        with self._lock:
            return self._version

    def observe(
        self,
        kind: str,
        region: str,
        fingerprint: str,
        estimated: float,
        actual: float,
    ) -> bool:
        """Record one estimate-vs-actual pair.  Returns whether the store's
        :attr:`version` bumped (i.e. plans chosen before are now suspect)."""
        key = (kind, region, fingerprint)
        estimated = max(0.0, float(estimated))
        actual = max(0.0, float(actual))
        with self._lock:
            record = self._records.get(key)
            created = record is None
            if record is None:
                record = self._records[key] = CalibrationRecord()
            before = record.correction
            record.observations += 1
            record.estimated_total += estimated
            record.actual_total += actual
            record.last_estimated = estimated
            record.last_actual = actual
            after = record.correction
            moved = abs(after - before) > _STABLE_FRACTION * max(before, 1e-9)
            if created or moved:
                self._version += 1
                return True
            return False

    def correction(self, kind: str, region: str, fingerprint: str) -> float:
        """The clamped multiplicative correction for a key (1.0 unknown)."""
        with self._lock:
            record = self._records.get((kind, region, fingerprint))
            return record.correction if record is not None else 1.0

    def record(self, kind: str, region: str, fingerprint: str) -> CalibrationRecord | None:
        with self._lock:
            return self._records.get((kind, region, fingerprint))

    def has_history(self, fingerprint: str) -> bool:
        """Whether any observation exists for this corpus state — the gate
        between cold (static-rule) and calibrated planning."""
        with self._lock:
            return any(key[2] == fingerprint for key in self._records)

    def observation_count(self, fingerprint: str | None = None) -> int:
        with self._lock:
            return sum(
                record.observations
                for key, record in self._records.items()
                if fingerprint is None or key[2] == fingerprint
            )

    def keys(self) -> Iterator[HistoryKey]:
        with self._lock:
            return iter(list(self._records))

    def clear(self) -> None:
        with self._lock:
            if self._records:
                self._version += 1
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- persistence ---------------------------------------------------------

    def _payload(self) -> list[dict[str, Any]]:
        return [
            {
                "kind": kind,
                "region": region,
                "fingerprint": fingerprint,
                **record.to_dict(),
            }
            for (kind, region, fingerprint), record in sorted(self._records.items())
        ]

    @staticmethod
    def _checksum(records_json: str) -> str:
        return "sha256:" + hashlib.sha256(records_json.encode("utf-8")).hexdigest()[:32]

    def save(self, path: str | os.PathLike[str]) -> None:
        """Atomically persist the history (tmp file + rename): a crash mid-
        write leaves the previous file intact, never a torn one."""
        with self._lock:
            records_json = json.dumps(self._payload(), sort_keys=True)
        envelope = {
            "format": _FORMAT_VERSION,
            "checksum": self._checksum(records_json),
            "records": json.loads(records_json),
        }
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        staging = target.with_name(target.name + ".tmp")
        staging.write_text(json.dumps(envelope, indent=1, sort_keys=True), encoding="utf-8")
        os.replace(staging, target)

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "FeedbackHistory":
        """Load a saved history; any integrity failure raises the typed
        :class:`~repro.errors.CalibrationCorruptError`."""
        target = Path(path)
        try:
            text = target.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise
        except OSError as error:
            raise CalibrationCorruptError(str(target), f"unreadable: {error}") from error
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as error:
            raise CalibrationCorruptError(str(target), f"invalid JSON: {error}") from error
        if not isinstance(envelope, dict):
            raise CalibrationCorruptError(str(target), "envelope is not an object")
        if envelope.get("format") != _FORMAT_VERSION:
            raise CalibrationCorruptError(
                str(target), f"unsupported format {envelope.get('format')!r}"
            )
        records = envelope.get("records")
        if not isinstance(records, list):
            raise CalibrationCorruptError(str(target), "records is not a list")
        expected = cls._checksum(json.dumps(records, sort_keys=True))
        if envelope.get("checksum") != expected:
            raise CalibrationCorruptError(
                str(target),
                f"checksum mismatch (saved {envelope.get('checksum')!r}, "
                f"computed {expected!r})",
            )
        history = cls()
        try:
            for entry in records:
                key = (str(entry["kind"]), str(entry["region"]), str(entry["fingerprint"]))
                history._records[key] = CalibrationRecord.from_dict(entry)
        except (KeyError, TypeError, ValueError) as error:
            raise CalibrationCorruptError(
                str(target), f"malformed record: {error}"
            ) from error
        history._version = 1 if history._records else 0
        return history

    @classmethod
    def load_or_fresh(cls, path: str | os.PathLike[str]) -> "FeedbackHistory":
        """Load when the file exists; a missing file is a normal cold start
        (corruption still raises — it must be visible)."""
        try:
            return cls.load(path)
        except FileNotFoundError:
            return cls()

    # -- introspection -------------------------------------------------------

    def snapshot(self, fingerprint: str | None = None) -> dict[str, Any]:
        """A JSON-friendly view of calibration state (``stats --json``)."""
        with self._lock:
            keys = [
                key for key in self._records
                if fingerprint is None or key[2] == fingerprint
            ]
            fingerprints = sorted({key[2] for key in keys})
            return {
                "version": self._version,
                "keys": len(keys),
                "observations": sum(
                    self._records[key].observations for key in keys
                ),
                "fingerprints": fingerprints,
                "corrections": {
                    f"{kind}:{region}": round(self._records[(kind, region, fp)].correction, 4)
                    for (kind, region, fp) in sorted(keys)
                },
            }

    def describe(self, fingerprint: str | None = None) -> str:
        view = self.snapshot(fingerprint)
        if not view["keys"]:
            return "calibration: cold (no history)"
        return (
            f"calibration: {view['observations']} observation(s) over "
            f"{view['keys']} key(s), {len(view['fingerprints'])} corpus "
            f"fingerprint(s), version {view['version']}"
        )
