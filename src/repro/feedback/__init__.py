"""Feedback-calibrated costing and adaptive re-planning.

Closes the loop ROADMAP item 2 asked for: the per-node actuals that
``engine.analyze()`` already measures flow into a persisted
:class:`FeedbackHistory`, a :class:`CalibratedCostModel` turns them into
weight × cardinality plan costs, and the executor re-plans mid-query when
actuals blow past estimates (:class:`ReplanTriggered`).  See
``docs/cost_model.md`` for the full model and its invariants.
"""

from repro.feedback.calibrate import (
    CalibratedCostModel,
    FeedbackConfig,
    NodeGuard,
    ReplanTriggered,
    anchor_region,
    make_node_guard,
    node_kind,
)
from repro.feedback.history import (
    HISTORY_FILENAME,
    CalibrationRecord,
    FeedbackHistory,
    ReplanEvent,
)

__all__ = [
    "CalibratedCostModel",
    "CalibrationRecord",
    "FeedbackConfig",
    "FeedbackHistory",
    "HISTORY_FILENAME",
    "NodeGuard",
    "ReplanEvent",
    "anchor_region",
    "make_node_guard",
    "node_kind",
    "ReplanTriggered",
]
