"""The calibrated cost model and the adaptive-replan guard.

The static model in :mod:`repro.core.cost` ranks plans by operator weight
alone; that is exactly what E10 showed to be insufficient for multi-join
queries, where the dominant term is *how many regions* flow through each
operator, not how many operators there are.  The calibrated model keeps
the same operator weights but multiplies each by the estimated number of
regions entering the operator::

    cost(node) = weight(node) × (1 + Σ estimated_rows(child))
    cost(tree) = Σ cost(node) over the tree

The ``1 +`` keeps every operator strictly positive, so the two Definition
3.4 rewrite families still *strictly* decrease cost on an empty history
(property-tested in ``tests/feedback/test_calibrated_cost.py``) — cold
behavior therefore matches the static ordering and v1.3.0 plans.

Cardinality seeds come from per-region counts the index already holds
(``Instance.get(name)`` is O(1) and exact); operator selectivities start
from fixed priors and are refined by the multiplicative corrections the
:class:`~repro.feedback.history.FeedbackHistory` has accumulated for
``(kind, anchor region, corpus fingerprint)`` keys.

:class:`ReplanTriggered` plus :func:`make_node_guard` implement mid-query
adaptive re-planning: the evaluator calls an opaque guard after each
computed node (no feedback import inside :mod:`repro.algebra`), and the
guard raises when actuals blow past estimates badly enough that the
chosen index strategy is likely a loss.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.algebra.ast import (
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
)
from repro.core.cost import node_weight
from repro.errors import FeedbackError
from repro.feedback.history import FeedbackHistory

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.algebra.evaluator import NodeRecord
    from repro.algebra.region import Instance


@dataclass(frozen=True)
class FeedbackConfig:
    """Tuning knobs for calibration and adaptive re-planning.

    Attributes
    ----------
    enabled:
        Master switch; ``False`` makes the engine behave exactly like a
        build without the feedback subsystem.
    directory:
        Where to persist ``feedback.json`` across processes (``None`` keeps
        history in-memory for the engine's lifetime only).
    replan_factor:
        A node must produce more than ``estimate × replan_factor`` regions
        before a mid-query replan is even considered.
    replan_min_rows:
        ...and at least this many regions in absolute terms — tiny
        misestimates never justify abandoning a running plan.
    select_selectivity / inclusion_selectivity:
        Cold-start priors for how much of the input a σ-selection or an
        inclusion keeps, before history corrections refine them.
    """

    enabled: bool = True
    directory: str | None = None
    replan_factor: float = 4.0
    replan_min_rows: int = 64
    select_selectivity: float = 0.2
    inclusion_selectivity: float = 0.5

    def __post_init__(self) -> None:
        if self.replan_factor <= 1.0:
            raise FeedbackError(
                f"replan_factor must be > 1.0 (got {self.replan_factor})"
            )
        for knob in ("select_selectivity", "inclusion_selectivity"):
            value = getattr(self, knob)
            if not 0.0 < value <= 1.0:
                raise FeedbackError(f"{knob} must be in (0, 1] (got {value})")

    @classmethod
    def coerce(cls, value: "FeedbackConfig | bool | None") -> "FeedbackConfig":
        """Normalise the engine-constructor shorthand: ``None``/``False`` →
        disabled (feedback is opt-in), ``True`` → defaults, a config →
        itself."""
        if value is None or value is False:
            return cls(enabled=False)
        if value is True:
            return cls()
        return value

    def disabled(self) -> "FeedbackConfig":
        return replace(self, enabled=False)


def node_kind(node: RegionExpr) -> str:
    """The history-key operator kind: stable, human-readable, and finer
    than the weight classes (each inclusion/set-op variant is its own
    kind, since their selectivities genuinely differ)."""
    if isinstance(node, Name):
        return "name"
    if isinstance(node, Select):
        return f"select:{node.mode}"
    if isinstance(node, Inclusion):
        return f"inclusion:{node.op}"
    if isinstance(node, SetOp):
        return f"set_op:{node.kind}"
    if isinstance(node, Innermost):
        return "innermost"
    if isinstance(node, Outermost):
        return "outermost"
    return type(node).__name__.lower()


def anchor_region(node: RegionExpr) -> str:
    """The first region name in pre-order — the 'driving' index of the
    subtree, used as the history key's region component."""
    for sub in node.walk():
        if isinstance(sub, Name):
            return sub.region_name
    return ""


class ReplanTriggered(Exception):
    """Raised by the evaluator's node guard to abandon the current index
    strategy mid-query.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it is control
    flow, caught by the executor, and must never escape to callers (the
    executor re-runs the query under a safer strategy).
    """

    def __init__(self, node: RegionExpr, estimated: float, actual: int) -> None:
        self.node = node
        self.estimated = estimated
        self.actual = actual
        super().__init__(
            f"node {node} produced {actual} regions "
            f"(estimated {estimated:.1f}); replanning"
        )


class CalibratedCostModel:
    """Weight × cardinality costs, seeded from the index and refined from
    feedback history for one corpus fingerprint."""

    def __init__(
        self,
        instance: "Instance",
        fingerprint: str,
        history: FeedbackHistory,
        config: FeedbackConfig | None = None,
        corpus_bytes: int = 0,
    ) -> None:
        self.instance = instance
        self.fingerprint = fingerprint
        self.history = history
        self.config = config or FeedbackConfig()
        #: Total corpus size; the index-vs-scan break-even compares the
        #: estimated candidate parse bytes against parsing this once.
        self.corpus_bytes = corpus_bytes

    # -- cardinality estimation ---------------------------------------------

    @property
    def calibrated(self) -> bool:
        """Whether any history exists for this corpus — the gate that keeps
        cold-start planning identical to the static rules."""
        return self.history.has_history(self.fingerprint)

    def region_count(self, name: str) -> int:
        return len(self.instance.get(name))

    def avg_region_bytes(self, name: str) -> float:
        """Mean byte length of the indexed regions under ``name``."""
        regions = self.instance.get(name)
        if not len(regions):
            return 0.0
        return sum(len(region) for region in regions) / len(regions)

    def estimated_parse_bytes(self, expression: RegionExpr, source_name: str) -> float:
        """Bytes the candidate pipeline is expected to re-parse: estimated
        candidate count × the source class's mean region size."""
        return self.estimate_rows(expression) * self.avg_region_bytes(source_name)

    def _seed_rows(self, node: RegionExpr, child_rows: list[float]) -> float:
        config = self.config
        if isinstance(node, Name):
            return float(self.region_count(node.region_name))
        if isinstance(node, Select):
            return child_rows[0] * config.select_selectivity
        if isinstance(node, Inclusion):
            return child_rows[0] * config.inclusion_selectivity
        if isinstance(node, SetOp):
            left, right = child_rows
            if node.kind == "union":
                return left + right
            if node.kind == "intersect":
                return min(left, right)
            return left  # difference: at most everything on the left
        if isinstance(node, (Innermost, Outermost)):
            return child_rows[0]
        return sum(child_rows)

    def estimate_rows(self, node: RegionExpr) -> float:
        """Estimated output cardinality: the structural seed times the
        history correction for this (kind, anchor, fingerprint) key."""
        child_rows = [self.estimate_rows(child) for child in node.children()]
        seed = self._seed_rows(node, child_rows)
        correction = self.history.correction(
            node_kind(node), anchor_region(node), self.fingerprint
        )
        return seed * correction

    # -- costs ---------------------------------------------------------------

    def node_cost(self, node: RegionExpr) -> float:
        """weight × (1 + regions entering the node)."""
        inflow = sum(self.estimate_rows(child) for child in node.children())
        return node_weight(node) * (1.0 + inflow)

    def cost(self, expression: RegionExpr) -> float:
        """The summed calibrated cost of a whole expression tree."""
        return sum(self.node_cost(node) for node in expression.walk())

    def choose(
        self, raw: RegionExpr | None, optimized: RegionExpr
    ) -> tuple[RegionExpr, float, float | None]:
        """Pick the cheaper of the raw and the rewrite-optimized form.

        Returns ``(winner, winner_cost, loser_cost)``.  Only meaningful
        when :attr:`calibrated`; ties keep the optimized form (matching
        cold behavior).
        """
        optimized_cost = self.cost(optimized)
        if raw is None or raw == optimized:
            return optimized, optimized_cost, None
        raw_cost = self.cost(raw)
        if raw_cost < optimized_cost:
            return raw, raw_cost, optimized_cost
        return optimized, optimized_cost, raw_cost

    # -- feeding the history -------------------------------------------------

    def observe(self, node: RegionExpr, actual: float) -> bool:
        """Record one node's actual output cardinality against its current
        estimate.  Returns whether the history version bumped."""
        return self.history.observe(
            node_kind(node),
            anchor_region(node),
            self.fingerprint,
            self.estimate_rows(node),
            actual,
        )

    def observe_tree(
        self,
        expression: RegionExpr,
        node_log: "dict[RegionExpr, NodeRecord]",
    ) -> int:
        """Feed every *computed* (non-cache-hit) node record into the
        history; cached records are skipped because they measure the cache,
        not the operator.  Returns how many observations were recorded.

        Estimates are taken for all nodes *before* any observation is
        written, so one batch does not calibrate against itself.
        """
        pending: list[tuple[RegionExpr, float, float]] = []
        for node in expression.walk():
            record = node_log.get(node)
            if record is None or record.cached:
                continue
            pending.append((node, self.estimate_rows(node), float(record.regions)))
        for node, estimated, actual in pending:
            self.history.observe(
                node_kind(node), anchor_region(node), self.fingerprint,
                estimated, actual,
            )
        return len(pending)


#: Signature of the evaluator's per-node hook: ``guard(node, region_count)``.
NodeGuard = Callable[[RegionExpr, int], None]


def make_node_guard(model: CalibratedCostModel) -> NodeGuard:
    """Build the mid-query guard the executor hands to the evaluator.

    The guard raises :class:`ReplanTriggered` when a computed node's actual
    cardinality exceeds its estimate by more than ``replan_factor`` *and*
    by at least ``replan_min_rows`` regions — both conditions, so small
    absolute blow-ups never abandon a nearly-finished plan.  Estimates are
    computed lazily per distinct node and memoised: the guard runs on the
    evaluator's hot path.
    """
    config = model.config
    estimates: dict[RegionExpr, float] = {}

    def guard(node: RegionExpr, actual: int) -> None:
        if actual < config.replan_min_rows:
            return
        estimated = estimates.get(node)
        if estimated is None:
            estimated = estimates[node] = model.estimate_rows(node)
        if actual > estimated * config.replan_factor:
            raise ReplanTriggered(node, estimated, actual)

    return guard
