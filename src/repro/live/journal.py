"""The write-ahead journal: checksummed, record-boundary-aware frames.

Every live append is journaled *before* it is acknowledged.  The frame
format is fixed and self-delimiting::

    [u32 length][u32 crc32][payload]          (big-endian)
    payload = [u64 seq][UTF-8 record bytes]
    payload = [u64 seq|RID_FLAG][u16 rid_len][rid bytes][UTF-8 record]

``length`` counts payload bytes; ``crc32`` covers the payload.  The
sequence number is a monotonically increasing per-journal counter — it is
what the compaction checkpoint (``applied_seq`` in the shard's own
manifest) refers to, so replay can tell "already folded into the base
index" from "pending in the delta segment" without comparing bytes.

A frame may carry a client-supplied **request id** for idempotent
appends: the high bit of the sequence field (:data:`RID_FLAG`) marks its
presence, followed by a length-prefixed UTF-8 id before the record bytes.
Journals written before this extension never set the bit (sequence
numbers are far below 2**63), so old journals replay unchanged.

The ack contract: :meth:`JournalWriter.append` returns only after the
frame's bytes are flushed **and fsynced**.  A record whose append call
returned therefore survives any crash; a record whose call did not return
may or may not have reached the disk — and replay resolves that edge
deterministically:

- a frame that simply runs past end-of-file (short header *or* short
  payload) is a **torn tail** — the signature of a crash mid-write.
  Appends only ever extend the journal, so a torn frame is always the
  last one; :func:`replay_journal` truncates it away and carries on.
- a fully present frame whose CRC does not match, a complete header
  describing an impossible payload, or sequence numbers that fail to
  increase are **corruption** — in-place damage that truncation cannot
  explain — and raise :class:`~repro.errors.JournalCorruptError` rather
  than silently dropping acked data.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import JournalCorruptError

_HEADER = struct.Struct(">II")  # payload length, payload crc32
_SEQ = struct.Struct(">Q")
_RID_LEN = struct.Struct(">H")

#: Smallest legal payload: a u64 sequence number and an empty record.
_MIN_PAYLOAD = _SEQ.size

#: High bit of the sequence field: this frame carries a request id.
RID_FLAG = 1 << 63


@dataclass(frozen=True)
class Frame:
    """One journaled append: its sequence number, the record text, and the
    client request id (``None`` unless the append asked for idempotence)."""

    seq: int
    record: str
    request_id: str | None = None


def encode_frame(seq: int, record: str, request_id: str | None = None) -> bytes:
    """The on-disk bytes for one frame (exposed for tests and the chaos
    scenarios, which forge torn tails from real frame prefixes)."""
    if seq >= RID_FLAG:
        raise ValueError(f"sequence number {seq} collides with the request-id flag bit")
    if request_id is None:
        payload = _SEQ.pack(seq) + record.encode("utf-8")
    else:
        rid = request_id.encode("utf-8")
        if len(rid) > 0xFFFF:
            raise ValueError(f"request id is {len(rid)} bytes; the frame format caps it at 65535")
        payload = _SEQ.pack(seq | RID_FLAG) + _RID_LEN.pack(len(rid)) + rid + record.encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


@dataclass
class ReplayResult:
    """What :func:`replay_journal` found: the intact frames, plus how many
    torn-tail bytes were discarded (0 on a clean journal)."""

    frames: list[Frame]
    torn_bytes: int

    @property
    def max_seq(self) -> int:
        return self.frames[-1].seq if self.frames else 0


def replay_journal(
    path: str | os.PathLike[str], repair: bool = True
) -> ReplayResult:
    """Read every intact frame from a journal, truncating a torn tail.

    With ``repair`` (the default) a torn tail is also physically truncated
    from the file, so the next append extends a clean journal.  Raises
    :class:`~repro.errors.JournalCorruptError` on damage that is not a
    torn tail (see the module docstring for the torn/corrupt distinction).
    A missing journal is an empty one.
    """
    journal = Path(path)
    try:
        data = journal.read_bytes()
    except FileNotFoundError:
        return ReplayResult(frames=[], torn_bytes=0)
    frames: list[Frame] = []
    offset = 0
    last_seq = 0
    good_end = 0
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            break  # torn tail: header itself ran past EOF
        length, crc = _HEADER.unpack_from(data, offset)
        if length < _MIN_PAYLOAD:
            raise JournalCorruptError(
                str(journal),
                f"frame payload length {length} is below the {_MIN_PAYLOAD}-byte "
                "minimum (a sequence number no longer fits)",
                offset=offset,
            )
        start = offset + _HEADER.size
        if start + length > len(data):
            break  # torn tail: payload ran past EOF
        payload = data[start : start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise JournalCorruptError(
                str(journal),
                "frame checksum mismatch (in-place damage, not a torn tail)",
                offset=offset,
            )
        (raw_seq,) = _SEQ.unpack_from(payload, 0)
        seq = raw_seq & ~RID_FLAG
        if seq <= last_seq:
            raise JournalCorruptError(
                str(journal),
                f"sequence numbers must increase (frame {seq} after {last_seq})",
                offset=offset,
            )
        body = _MIN_PAYLOAD
        request_id: str | None = None
        if raw_seq & RID_FLAG:
            if len(payload) < body + _RID_LEN.size:
                raise JournalCorruptError(
                    str(journal),
                    "frame claims a request id but the payload cannot hold "
                    "its length prefix",
                    offset=offset,
                )
            (rid_len,) = _RID_LEN.unpack_from(payload, body)
            body += _RID_LEN.size
            if len(payload) < body + rid_len:
                raise JournalCorruptError(
                    str(journal),
                    f"frame claims a {rid_len}-byte request id but the "
                    "payload ends early",
                    offset=offset,
                )
            try:
                request_id = payload[body : body + rid_len].decode("utf-8")
            except UnicodeDecodeError as error:
                raise JournalCorruptError(
                    str(journal),
                    f"frame request id is not valid UTF-8 despite a matching "
                    f"checksum: {error}",
                    offset=offset,
                ) from None
            body += rid_len
        try:
            record = payload[body:].decode("utf-8")
        except UnicodeDecodeError as error:
            raise JournalCorruptError(
                str(journal),
                f"frame record is not valid UTF-8 despite a matching "
                f"checksum: {error}",
                offset=offset,
            ) from None
        frames.append(Frame(seq=seq, record=record, request_id=request_id))
        last_seq = seq
        offset = start + length
        good_end = offset
    torn = len(data) - good_end
    if torn and repair:
        with open(journal, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
    return ReplayResult(frames=frames, torn_bytes=torn)


def trim_journal(path: str | os.PathLike[str], applied_seq: int) -> int:
    """Drop every frame at or below ``applied_seq`` — pure garbage
    collection, safe at any time, because the checkpoint those frames fed
    is already committed in the shard's own manifest.

    The trim is atomic (rewrite to a temporary sibling, fsync, rename);
    a journal left with no frames is deleted outright.  Returns how many
    frames remain.
    """
    journal = Path(path)
    replay = replay_journal(journal)
    kept = [frame for frame in replay.frames if frame.seq > applied_seq]
    if not kept:
        journal.unlink(missing_ok=True)
        return 0
    if len(kept) == len(replay.frames) and replay.torn_bytes == 0:
        return len(kept)  # nothing to drop and the tail is clean
    tmp = journal.parent / f".{journal.name}.trim-{os.getpid()}"
    with open(tmp, "wb") as handle:
        for frame in kept:
            handle.write(encode_frame(frame.seq, frame.record, frame.request_id))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, journal)
    return len(kept)


class JournalWriter:
    """Append frames to one shard's journal with an fsync-before-ack
    contract.  Not thread-safe by itself — the live engine serializes
    appends under its own lock."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")

    def append(
        self, seq: int, record: str, crash_hook=None, request_id: str | None = None
    ) -> None:
        """Write one frame and fsync it.  Returning *is* the ack: the
        record is durable.  ``crash_hook`` (tests/chaos only) fires after
        the write but before the fsync — the widest unacked window."""
        self._handle.write(encode_frame(seq, record, request_id))
        if crash_hook is not None:
            crash_hook("append:written")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
