"""Crash-safe live ingestion: write-ahead journal, delta segments, and a
recovery-verified shard lifecycle (see :mod:`repro.live.engine`)."""

from repro.live.engine import WAL_SUBDIR, LiveEngine
from repro.live.journal import (
    RID_FLAG,
    Frame,
    JournalWriter,
    ReplayResult,
    encode_frame,
    replay_journal,
    trim_journal,
)

__all__ = [
    "LiveEngine",
    "RID_FLAG",
    "WAL_SUBDIR",
    "Frame",
    "JournalWriter",
    "ReplayResult",
    "encode_frame",
    "replay_journal",
    "trim_journal",
]
