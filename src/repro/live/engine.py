"""Crash-safe live ingestion over a saved sharded index.

:class:`LiveEngine` turns the immutable sharded index of
:mod:`repro.shard` into an appendable corpus without giving up any of its
durability guarantees.  The moving parts:

- **Write-ahead journal** (:mod:`repro.live.journal`): every append is
  framed, checksummed, and fsynced before the call returns.  Journals
  live under ``<root>/wal/`` — *outside* the shard directories — because
  compaction replaces a shard directory wholesale and must never take
  unfolded journal frames down with it.
- **Delta segment**: acked records accumulate in memory per shard and are
  queried alongside the base index — each dirty shard's delta is answered
  by a small :class:`~repro.core.engine.FileQueryEngine` over the joined
  record texts, and its rows are spliced after that shard's base rows, so
  the merged result is byte-identical to a full rebuild of the logical
  corpus (base text + acked appends).
- **Compaction**: folds each dirty shard's delta into its base index via
  the existing staging-sibling + rename-swap save.  The journal
  checkpoint (``applied_seq``) rides *in the shard's own manifest*, so
  one rename commits the folded rows and the checkpoint together; the
  journal trim afterwards is pure garbage collection.  A tail shard that
  outgrows ``max_shard_bytes`` then splits through
  :func:`~repro.shard.split.split_corpus`, with the root ``manifest.json``
  rewritten last as the commit point.
- **Recovery** (:meth:`LiveEngine.open`): orphaned shard directories from
  an uncommitted split are swept; a shard whose own manifest ran ahead of
  the root manifest (crash between a compaction's swap and the root
  rewrite) refreshes the root entry; journal frames above each shard's
  ``applied_seq`` are replayed into the delta segment with a
  ``delta-replayed`` warning; torn journal tails are truncated.  Every
  acked append survives, every unacked one vanishes.

**Replicated shards** (saved with ``replicas=N``, see
:mod:`repro.shard.replica`) extend each of those parts:

- the WAL fans out: each replica gets its own journal
  (``wal/<shard>.replica-{i}.wal``) and an append is acknowledged once
  ``ack_quorum`` journals have fsynced the frame (default: all of them;
  fewer acks than journals but at least the quorum surfaces a
  ``quorum-degraded`` warning, fewer than the quorum raises
  :class:`~repro.errors.WriteQuorumError`);
- recovery replays the **union** of the replica journals (the same
  sequence number must carry the same record everywhere) and re-levels
  every journal to that union, so a frame durable on one journal when
  the process died is promoted to all of them — for a replicated shard,
  "acked" weakens to "fsynced on at least one journal";
- compaction folds the delta into *every* replica, then rewrites the
  shard-level replica manifest as the commit point; a crash in between is
  finished at the next :meth:`open`, which reconciles a shard manifest
  that fell behind replicas that all agree on a newer fingerprint
  *before* the checkpoint is read (otherwise replay would re-apply frames
  the replicas already hold).

Appends may carry a client ``request_id`` for **idempotence**: a replayed
id returns the original sequence number with ``deduped=True`` instead of
appending again, and an id reused with *different* content raises
:class:`~repro.errors.DuplicateRequestError`.  The dedupe window is the
journal retention window — an id is remembered until its frame is folded
by compaction.

Appends go to the **tail shard** (the root manifest's last entry) and
each record must be self-delimiting — it carries its own separators, so
the logical shard text is exactly ``base + "".join(records)``.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import threading
from pathlib import Path
from typing import Any

from repro.api import (
    AnalyzeResponse,
    ExplainResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    query_response,
)
from repro.core.engine import FileQueryEngine
from repro.errors import (
    DuplicateRequestError,
    IndexCorruptError,
    JournalCorruptError,
    ParseError,
    WriteQuorumError,
)
from repro.index.persist import applied_seq as saved_applied_seq
from repro.index.persist import (
    corpus_fingerprint,
    load_manifest,
    load_replica_manifest,
    save_replica_manifest,
)
from repro.live.journal import (
    Frame,
    JournalWriter,
    encode_frame,
    replay_journal,
    trim_journal,
)
from repro.resilience.budget import ResourceBudget
from repro.resilience.warnings import (
    DELTA_REPLAYED,
    QUORUM_DEGRADED,
    SHARD_SPLIT,
    STALE_STAGING_REMOVED,
    QueryWarning,
)
from repro.schema.structuring import StructuringSchema
from repro.shard.engine import ShardedEngine, ShardedQueryResult
from repro.shard.manifest import (
    SHARDS_SUBDIR,
    ShardEntry,
    ShardManifest,
    load_shard_manifest,
    save_shard_manifest,
    shard_slug,
)
from repro.shard.split import split_corpus

WAL_SUBDIR = "wal"


def _record_digest(record: str) -> str:
    return hashlib.sha256(record.encode("utf-8")).hexdigest()


class LiveEngine:
    """A sharded query engine that accepts durable appends.

    Construct via :meth:`open` on a directory produced by
    :meth:`~repro.shard.ShardedEngine.save` (``repro shard build``).  The
    engine satisfies the unified :class:`~repro.api.QueryBackend` surface
    (``query``/``explain``/``analyze``/``stats`` accept
    :class:`~repro.api.QueryRequest` and return wire responses), which is
    what lets ``repro serve`` put ``POST /append`` next to ``/query``.

    ``crash_hook`` is a test-only seam: a callable invoked with a named
    point (``"append:written"``, ``"append:journal-acked:{i}"``,
    ``"compact:replica-saved:{name}"``, ``"compact:shard-saved"``,
    ``"compact:manifest-updated"``, ``"split:shards-saved"``,
    ``"split:manifest-updated"``) that may raise to simulate a crash
    exactly there — the chaos scenarios drive every window through it.
    """

    def __init__(
        self,
        schema: StructuringSchema,
        root: Path,
        manifest: ShardManifest,
        engine: ShardedEngine,
        options: dict[str, Any],
        pending: dict[str, list[Frame]],
        next_seq: int,
        load_warnings: list[QueryWarning],
        max_shard_bytes: int | None = None,
        crash_hook=None,
        ack_quorum: int | None = None,
        request_seqs: dict[str, tuple[int, str]] | None = None,
    ) -> None:
        self.schema = schema
        self.root = root
        self.max_shard_bytes = max_shard_bytes
        self.crash_hook = crash_hook
        self.ack_quorum = ack_quorum
        self._manifest = manifest
        self._engine = engine
        self._options = options
        self._pending = pending
        self._next_seq = next_seq
        self._load_warnings = load_warnings
        self._delta: dict[str, tuple[int, FileQueryEngine]] = {}
        self._writers: dict[str, JournalWriter] = {}
        self._replica_layout: dict[str, list[str] | None] = {}
        self._request_seqs: dict[str, tuple[int, str]] = dict(request_seqs or {})
        self._quorum_warned: set[tuple[str, tuple[str, ...]]] = set()
        self._lock = threading.RLock()

    # -- construction / recovery ------------------------------------------------

    @classmethod
    def open(
        cls,
        schema: StructuringSchema,
        directory: str | os.PathLike[str],
        max_shard_bytes: int | None = None,
        crash_hook=None,
        ack_quorum: int | None = None,
        **options: Any,
    ) -> "LiveEngine":
        """Open a saved sharded index for live ingestion, running the full
        crash-recovery protocol described in the module docstring.
        ``options`` pass through to :meth:`ShardedEngine.from_saved` (and
        to the reopen after every compaction)."""
        root = Path(directory)
        manifest = load_shard_manifest(root)
        warnings: list[QueryWarning] = []

        # 1. Sweep shard directories no manifest entry references: the
        # staging side of a split whose commit (the root manifest rewrite)
        # never happened, or the retired side of one that did.  Quarantined
        # replicas live *inside* shard directories and are never touched.
        referenced = {entry.directory for entry in manifest.shards}
        shards_dir = root / SHARDS_SUBDIR
        if shards_dir.is_dir():
            for child in sorted(shards_dir.iterdir()):
                relative = f"{SHARDS_SUBDIR}/{child.name}"
                if (
                    child.is_dir()
                    and not child.name.startswith(".")
                    and relative not in referenced
                ):
                    shutil.rmtree(child, ignore_errors=True)
                    warnings.append(
                        QueryWarning(
                            STALE_STAGING_REMOVED,
                            f"removed unreferenced shard directory {relative} "
                            "(uncommitted or superseded by a split)",
                            detail={"path": str(child), "root": str(root)},
                        )
                    )

        # 2. Replicated shards whose replicas all committed *ahead* of the
        # shard-level manifest: a compaction crashed after folding every
        # replica but before the manifest rewrite.  Finish that commit now
        # — before the checkpoint is read in step 4 — or replay would
        # re-apply frames the replicas already hold, duplicating rows.
        for entry in manifest.shards:
            shard_dir = root / entry.directory
            replicated = load_replica_manifest(shard_dir)
            if replicated is None:
                continue
            states: list[tuple[str, dict | None]] = []
            for rel in replicated["replicas"]:
                try:
                    own = load_manifest(shard_dir / rel["directory"])
                except IndexCorruptError:
                    continue
                if own is None or not isinstance(own.get("corpus_fingerprint"), str):
                    continue
                live = own.get("live")
                states.append(
                    (
                        own["corpus_fingerprint"],
                        dict(live) if isinstance(live, dict) else None,
                    )
                )
            fingerprints = {fingerprint for fingerprint, _ in states}
            if len(fingerprints) != 1:
                continue  # unreadable or disagreeing replicas: scrubber territory
            agreed = fingerprints.pop()
            if agreed == replicated.get("corpus_fingerprint"):
                continue
            lives = [live for _, live in states if live]
            live = max(lives, key=lambda l: l.get("applied_seq", 0), default=None)
            save_replica_manifest(
                shard_dir,
                agreed,
                [rel["directory"] for rel in replicated["replicas"]],
                source=replicated.get("source"),
                live=live,
            )
            warnings.append(
                QueryWarning(
                    DELTA_REPLAYED,
                    f"shard {entry.name!r}'s replicas committed ahead of its "
                    "manifest (crash mid-compaction); shard manifest reconciled",
                    detail={"shard": entry.name, "fingerprint": agreed},
                )
            )

        # 3. A shard whose own (atomically committed) manifest ran ahead
        # of the root manifest: a compaction crashed between the shard
        # swap and the root rewrite.  The shard is authoritative — refresh
        # the root entry.
        entries: list[ShardEntry] = []
        refreshed = False
        for entry in manifest.shards:
            shard_manifest = load_manifest(root / entry.directory)
            actual = (
                shard_manifest.get("corpus_fingerprint")
                if isinstance(shard_manifest, dict)
                else None
            )
            if isinstance(actual, str) and actual != entry.corpus_fingerprint:
                entry = ShardEntry(
                    name=entry.name,
                    directory=entry.directory,
                    corpus_fingerprint=actual,
                    source=entry.source,
                )
                refreshed = True
                warnings.append(
                    QueryWarning(
                        DELTA_REPLAYED,
                        f"shard {entry.name!r} committed ahead of the root "
                        "manifest (crash mid-compaction); root entry refreshed",
                        detail={"shard": entry.name, "fingerprint": actual},
                    )
                )
            entries.append(entry)
        if refreshed:
            manifest = ShardManifest(
                shards=tuple(entries),
                schema_fingerprint=manifest.schema_fingerprint,
                format_version=manifest.format_version,
            )
            save_shard_manifest(root, manifest)

        # 4. Replay journals: frames above a shard's applied_seq become
        # its delta segment again; torn tails are truncated; journals for
        # vanished shards are deleted iff fully applied.  A replicated
        # shard replays the *union* of its replica journals and re-levels
        # each journal to that union, promoting frames that reached only
        # some journals before a crash.
        applied_by_dir = {
            entry.directory: saved_applied_seq(root / entry.directory)
            for entry in entries
        }
        global_applied = max(applied_by_dir.values(), default=0)
        pending: dict[str, list[Frame]] = {}
        request_seqs: dict[str, tuple[int, str]] = {}
        next_seq = global_applied + 1
        wal_dir = root / WAL_SUBDIR
        known_wals: set[str] = set()
        for entry in entries:
            applied = applied_by_dir[entry.directory]
            replicated = load_replica_manifest(root / entry.directory)
            replica_names = (
                [rel["directory"] for rel in replicated["replicas"]]
                if replicated is not None
                else None
            )
            paths = cls._journal_paths_for(root, entry.directory, replica_names)
            legacy: Path | None = None
            if replica_names is not None:
                # A shard replicated after it already journaled keeps its
                # old single journal in the union until it is re-leveled.
                legacy = wal_dir / f"{Path(entry.directory).name}.wal"
                if legacy.exists():
                    paths = paths + [legacy]
            known_wals.update(path.name for path in paths)
            replays = {path: replay_journal(path) for path in paths}
            union: dict[int, Frame] = {}
            for path, replay in replays.items():
                for frame in replay.frames:
                    prev = union.get(frame.seq)
                    if prev is None:
                        union[frame.seq] = frame
                    elif prev.record != frame.record:
                        raise JournalCorruptError(
                            str(path),
                            f"replica journals disagree at seq {frame.seq}: "
                            "same sequence number, different record",
                        )
                    elif prev.request_id is None and frame.request_id is not None:
                        union[frame.seq] = frame
            ordered = [union[seq] for seq in sorted(union)]
            if ordered:
                next_seq = max(next_seq, ordered[-1].seq + 1)
            frames = [frame for frame in ordered if frame.seq > applied]
            torn = sum(replay.torn_bytes for replay in replays.values())
            promoted = 0
            if replica_names is not None:
                want = [frame.seq for frame in frames]
                for path in paths:
                    if path is legacy:
                        continue
                    have = [
                        frame.seq
                        for frame in replays[path].frames
                        if frame.seq > applied
                    ]
                    if have == want:
                        continue
                    promoted += len(set(want) - set(have))
                    cls._rewrite_journal(path, frames)
                if legacy is not None:
                    legacy.unlink(missing_ok=True)
            for frame in frames:
                if frame.request_id is not None:
                    request_seqs[frame.request_id] = (
                        frame.seq,
                        _record_digest(frame.record),
                    )
            if frames:
                pending[entry.name] = frames
            if frames or torn:
                message = (
                    f"replayed {len(frames)} journaled append(s) into "
                    f"shard {entry.name!r}'s delta segment"
                )
                if torn:
                    message += f"; truncated a {torn}-byte torn tail"
                if promoted:
                    message += (
                        f"; promoted {promoted} frame(s) to lagging replica "
                        "journal(s)"
                    )
                warnings.append(
                    QueryWarning(
                        DELTA_REPLAYED,
                        message,
                        detail={
                            "shard": entry.name,
                            "replayed": len(frames),
                            "torn_bytes": torn,
                            "promoted": promoted,
                            "journals": [str(path) for path in paths],
                        },
                    )
                )
        if wal_dir.is_dir():
            for wal in sorted(wal_dir.glob("*.wal")):
                if wal.name in known_wals:
                    continue
                replay = replay_journal(wal)
                if replay.max_seq <= global_applied:
                    wal.unlink(missing_ok=True)
                    continue
                raise JournalCorruptError(
                    str(wal),
                    "journal for a shard absent from the manifest holds "
                    f"frames beyond the applied checkpoint {global_applied} "
                    "— acked appends would be lost",
                )

        engine = ShardedEngine.from_saved(schema, root, **options)
        return cls(
            schema=schema,
            root=root,
            manifest=manifest,
            engine=engine,
            options=dict(options),
            pending=pending,
            next_seq=next_seq,
            load_warnings=warnings,
            max_shard_bytes=max_shard_bytes,
            crash_hook=crash_hook,
            ack_quorum=ack_quorum,
            request_seqs=request_seqs,
        )

    @staticmethod
    def _rewrite_journal(path: Path, frames: list[Frame]) -> None:
        """Atomically replace one journal with exactly ``frames``."""
        path.parent.mkdir(parents=True, exist_ok=True)
        if not frames:
            path.unlink(missing_ok=True)
            return
        tmp = path.parent / f".{path.name}.sync-{os.getpid()}"
        with open(tmp, "wb") as handle:
            for frame in frames:
                handle.write(encode_frame(frame.seq, frame.record, frame.request_id))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- journal plumbing -------------------------------------------------------

    @staticmethod
    def _journal_paths_for(
        root: Path, directory: str, replica_names: list[str] | None
    ) -> list[Path]:
        base = Path(directory).name
        wal_dir = root / WAL_SUBDIR
        if replica_names:
            return [wal_dir / f"{base}.{name}.wal" for name in replica_names]
        return [wal_dir / f"{base}.wal"]

    def _replica_names(self, entry: ShardEntry) -> list[str] | None:
        if entry.directory not in self._replica_layout:
            replicated = load_replica_manifest(self.root / entry.directory)
            self._replica_layout[entry.directory] = (
                [rel["directory"] for rel in replicated["replicas"]]
                if replicated is not None
                else None
            )
        return self._replica_layout[entry.directory]

    def _journal_paths(self, entry: ShardEntry) -> list[Path]:
        return self._journal_paths_for(
            self.root, entry.directory, self._replica_names(entry)
        )

    def _writer_for(self, path: Path) -> JournalWriter:
        key = str(path)
        writer = self._writers.get(key)
        if writer is None:
            writer = JournalWriter(path)
            self._writers[key] = writer
        return writer

    def _close_writers(self) -> None:
        """Trims and splits replace journal files; never keep a handle to
        a replaced inode."""
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    # -- appending --------------------------------------------------------------

    def append(self, record: str, request_id: str | None = None) -> int:
        """Durably append one record to the tail shard.

        The record must parse under the engine's schema as at least one
        complete top-level record (raises
        :class:`~repro.errors.ParseError` otherwise — nothing is
        journaled) and must be self-delimiting: it carries any separators
        the grammar needs, e.g. a trailing newline for line-oriented
        workloads.  Returns the record's journal sequence number; by the
        time it returns, the frame is fsynced — the append survives any
        subsequent crash.  See :meth:`append_record` for the quorum and
        idempotence contract on replicated tails.
        """
        return self.append_record(record, request_id=request_id)["seq"]

    def append_record(
        self, record: str, request_id: str | None = None
    ) -> dict[str, Any]:
        """:meth:`append` with the full ack envelope: ``{"seq", "deduped"}``.

        On a replicated tail the frame is written and fsynced to every
        replica journal; the append is acknowledged once ``ack_quorum``
        journals acked (default: all).  Journals beyond the quorum that
        failed surface a ``quorum-degraded`` warning on subsequent
        queries; fewer acks than the quorum raise
        :class:`~repro.errors.WriteQuorumError` — but any journal that
        *did* ack keeps the frame, and recovery promotes it, so a
        quorum-failed append may still reappear after a restart.  Supply a
        ``request_id`` to make retries safe: a replayed id returns the
        original sequence number with ``deduped=True``; an id reused with
        different content raises
        :class:`~repro.errors.DuplicateRequestError`.  Ids are remembered
        until their frame is folded by compaction (the journal retention
        window).
        """
        tree = self.schema.parse(record)
        if not list(tree.children):
            raise ParseError(
                f"record contains no top-level <{tree.symbol}> record", 0
            )
        digest = _record_digest(record) if request_id is not None else None
        with self._lock:
            if request_id is not None:
                known = self._request_seqs.get(request_id)
                if known is not None:
                    seq, known_digest = known
                    if known_digest != digest:
                        raise DuplicateRequestError(request_id, seq)
                    return {"seq": seq, "deduped": True}
            tail = self._manifest.shards[-1]
            paths = self._journal_paths(tail)
            quorum = self._effective_quorum(len(paths))
            seq = self._next_seq
            # The sequence number is burned even if the fan-out fails
            # below quorum: a journal that acked holds it durably, and
            # reusing it for different content would corrupt replay.
            self._next_seq = seq + 1
            acked = 0
            failed: list[str] = []
            last_error: OSError | None = None
            for i, path in enumerate(paths):
                try:
                    self._writer_for(path).append(
                        seq,
                        record,
                        crash_hook=self.crash_hook if i == 0 else None,
                        request_id=request_id,
                    )
                except OSError as error:
                    last_error = error
                    failed.append(path.name)
                    writer = self._writers.pop(str(path), None)
                    if writer is not None:
                        try:
                            writer.close()
                        except OSError:
                            pass
                    continue
                acked += 1
                self._crash(f"append:journal-acked:{i}")
            if acked < quorum:
                raise WriteQuorumError(
                    tail.name, acked, quorum, len(paths), cause=last_error
                ) from last_error
            if failed:
                self._note_quorum_degraded(tail.name, failed, acked, len(paths))
            self._pending.setdefault(tail.name, []).append(
                Frame(seq=seq, record=record, request_id=request_id)
            )
            if request_id is not None and digest is not None:
                self._request_seqs[request_id] = (seq, digest)
            return {"seq": seq, "deduped": False}

    def _effective_quorum(self, journals: int) -> int:
        if self.ack_quorum is None:
            return journals
        return max(1, min(int(self.ack_quorum), journals))

    def _note_quorum_degraded(
        self, shard: str, failed: list[str], acked: int, journals: int
    ) -> None:
        key = (shard, tuple(sorted(failed)))
        if key in self._quorum_warned:
            return
        self._quorum_warned.add(key)
        self._load_warnings.append(
            QueryWarning(
                QUORUM_DEGRADED,
                f"append to shard {shard!r} acknowledged by {acked}/{journals} "
                f"replica journal(s); {', '.join(failed)} failed — durability "
                "is degraded until recovery re-levels the journals",
                detail={
                    "shard": shard,
                    "acked": acked,
                    "journals": journals,
                    "failed": failed,
                },
            )
        )

    # -- querying ---------------------------------------------------------------

    def query(
        self,
        query: Any,
        budget: ResourceBudget | None = None,
        fail_fast: bool | None = None,
    ) -> ShardedQueryResult | QueryResponse:
        """Scatter-gather over the base index, with each dirty shard's
        delta segment answered alongside and its rows spliced after that
        shard's base rows — the merged rows match a full rebuild of the
        logical corpus.  A :class:`~repro.api.QueryRequest` returns the
        wire-ready :class:`~repro.api.QueryResponse`."""
        if isinstance(query, QueryRequest):
            result = self.query(query.query, budget=query.budget)
            return query_response(result, query)
        with self._lock:
            snapshot = {
                name: list(frames)
                for name, frames in self._pending.items()
                if frames
            }
            manifest = self._manifest
        base = self._engine.query(query, budget=budget, fail_fast=fail_fast)
        if self._load_warnings:
            base.stats.warnings[:0] = list(self._load_warnings)
        if not snapshot:
            return base
        rows: list[tuple] = []
        for entry in manifest.shards:
            shard_result = base.shard_results.get(entry.name)
            if shard_result is not None:
                rows.extend(shard_result.rows)
            frames = snapshot.get(entry.name)
            if frames:
                delta_result = self._delta_engine(entry.name, frames).query(query)
                rows.extend(delta_result.rows)
        return ShardedQueryResult(
            rows=rows,
            plan=base.plan,
            stats=base.stats,
            shard_results=base.shard_results,
            trace=base.trace,
        )

    def _delta_engine(self, shard_name: str, frames: list[Frame]) -> FileQueryEngine:
        """The cached delta-segment engine for one dirty shard, rebuilt
        whenever the shard's pending tail advances (keyed by last seq)."""
        cached = self._delta.get(shard_name)
        if cached is not None and cached[0] == frames[-1].seq:
            return cached[1]
        engine = FileQueryEngine(
            self.schema, "".join(frame.record for frame in frames)
        )
        self._delta[shard_name] = (frames[-1].seq, engine)
        return engine

    # -- compaction and the shard lifecycle -------------------------------------

    def compact(self) -> dict[str, Any]:
        """Fold every dirty shard's delta into its base index, then split
        the tail shard if it outgrew ``max_shard_bytes``.

        Commit points, in order, per shard: (1) the staging-sibling
        rename-swap that lands the folded index *and* its ``applied_seq``
        checkpoint atomically (a replicated shard folds into every replica
        and commits via the shard-level manifest rewrite instead); (2) the
        root-manifest rewrite refreshing the shard's fingerprint; (3) the
        atomic journal trim.  A crash between any two is recovered by
        :meth:`open` — step 1 makes the remaining steps idempotent
        housekeeping.
        """
        with self._lock:
            self._close_writers()
            folded: dict[str, int] = {}
            for entry in list(self._manifest.shards):
                frames = self._pending.get(entry.name)
                if not frames:
                    continue
                shard_dir = self.root / entry.directory
                replicated = load_replica_manifest(shard_dir)
                applied = frames[-1].seq
                delta = "".join(frame.record for frame in frames)
                if replicated is None:
                    base_text = (shard_dir / "corpus.txt").read_text(encoding="utf-8")
                    new_text = base_text + delta
                    FileQueryEngine(self.schema, new_text).save(
                        str(shard_dir), live={"applied_seq": applied}
                    )
                else:
                    names = [rel["directory"] for rel in replicated["replicas"]]
                    base_text = self._replica_corpus(
                        shard_dir, names, replicated.get("corpus_fingerprint")
                    )
                    new_text = base_text + delta
                    folded_engine = FileQueryEngine(self.schema, new_text)
                    for name in names:
                        folded_engine.save(
                            str(shard_dir / name), live={"applied_seq": applied}
                        )
                        self._crash(f"compact:replica-saved:{name}")
                    save_replica_manifest(
                        shard_dir,
                        corpus_fingerprint(new_text),
                        names,
                        source=replicated.get("source"),
                        live={"applied_seq": applied},
                    )
                self._crash("compact:shard-saved")
                self._replace_entry(
                    entry,
                    ShardEntry(
                        name=entry.name,
                        directory=entry.directory,
                        corpus_fingerprint=corpus_fingerprint(new_text),
                        source=entry.source,
                    ),
                )
                save_shard_manifest(self.root, self._manifest)
                self._crash("compact:manifest-updated")
                for path in self._journal_paths(entry):
                    trim_journal(path, applied)
                self._pending.pop(entry.name, None)
                self._delta.pop(entry.name, None)
                for frame in frames:
                    # Folded frames leave the journal, and their request
                    # ids leave the dedupe window with them.
                    if frame.request_id is not None:
                        self._request_seqs.pop(frame.request_id, None)
                folded[entry.name] = len(frames)
            split = self._maybe_split() if self.max_shard_bytes is not None else None
            self._replica_layout.clear()
            self._engine = ShardedEngine.from_saved(
                self.schema, self.root, **self._options
            )
            return {"folded": folded, "split": split}

    def _replica_corpus(
        self, shard_dir: Path, names: list[str], expected: str | None
    ) -> str:
        """The authoritative base text of a replicated shard: the first
        replica whose corpus matches the recorded fingerprint (any
        readable copy when no copy matches or no expectation is recorded
        — the scrubber, not compaction, adjudicates damage)."""
        fallback: str | None = None
        for name in names:
            try:
                text = (shard_dir / name / "corpus.txt").read_text(encoding="utf-8")
            except OSError:
                continue
            if expected is None or corpus_fingerprint(text) == expected:
                return text
            if fallback is None:
                fallback = text
        if fallback is not None:
            return fallback
        raise IndexCorruptError(
            str(shard_dir), "no replica holds a readable corpus"
        )

    def _replace_entry(self, old: ShardEntry, new: ShardEntry) -> None:
        entries = tuple(
            new if entry.name == old.name else entry
            for entry in self._manifest.shards
        )
        self._manifest = ShardManifest(
            shards=entries,
            schema_fingerprint=self._manifest.schema_fingerprint,
            format_version=self._manifest.format_version,
        )

    def _maybe_split(self) -> dict[str, Any] | None:
        """Split the (just-compacted) tail shard in two when it exceeds the
        byte budget.  New shard directories are always fresh slugs — the
        old directory is never reused — and the root manifest rewrite is
        the commit point; the old directory and journal are garbage
        afterwards.  A replicated tail splits into children saved with the
        same replica count."""
        tail = self._manifest.shards[-1]
        shard_dir = self.root / tail.directory
        replicated = load_replica_manifest(shard_dir)
        if replicated is None:
            replicas = None
            text = (shard_dir / "corpus.txt").read_text(encoding="utf-8")
        else:
            names = [rel["directory"] for rel in replicated["replicas"]]
            replicas = len(names)
            text = self._replica_corpus(
                shard_dir, names, replicated.get("corpus_fingerprint")
            )
        if len(text.encode("utf-8")) <= self.max_shard_bytes:
            return None
        halves = split_corpus(self.schema, text, 2)
        if len(halves) < 2:
            return None  # a single record cannot be split
        applied = saved_applied_seq(shard_dir)
        position = len(self._manifest.shards) - 1
        new_entries: list[ShardEntry] = []
        for offset, half in enumerate(halves):
            name = f"{tail.name}/{offset}"
            index = position + offset
            relative = f"{SHARDS_SUBDIR}/{shard_slug(name, index)}"
            while (self.root / relative).exists():
                index += len(self._manifest.shards) + 1
                relative = f"{SHARDS_SUBDIR}/{shard_slug(name, index)}"
            FileQueryEngine(self.schema, half).save(
                str(self.root / relative),
                live={"applied_seq": applied},
                replicas=replicas,
            )
            new_entries.append(
                ShardEntry(
                    name=name,
                    directory=relative,
                    corpus_fingerprint=corpus_fingerprint(half),
                    source=None,
                )
            )
        self._crash("split:shards-saved")
        old_journals = self._journal_paths(tail)
        self._manifest = ShardManifest(
            shards=tuple(self._manifest.shards[:-1]) + tuple(new_entries),
            schema_fingerprint=self._manifest.schema_fingerprint,
            format_version=self._manifest.format_version,
        )
        save_shard_manifest(self.root, self._manifest)
        self._crash("split:manifest-updated")
        shutil.rmtree(shard_dir, ignore_errors=True)
        for path in old_journals:
            path.unlink(missing_ok=True)
        self._replica_layout.pop(tail.directory, None)
        warning = QueryWarning(
            SHARD_SPLIT,
            f"shard {tail.name!r} exceeded {self.max_shard_bytes} bytes and "
            f"split into {new_entries[0].name!r} and {new_entries[1].name!r}",
            detail={
                "shard": tail.name,
                "bytes": len(text.encode("utf-8")),
                "max_shard_bytes": self.max_shard_bytes,
                "into": [entry.name for entry in new_entries],
                "replicas": replicas,
            },
        )
        self._load_warnings.append(warning)
        return {
            "shard": tail.name,
            "into": [entry.name for entry in new_entries],
            "bytes": len(text.encode("utf-8")),
            "replicas": replicas,
        }

    def _crash(self, point: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(point)

    # -- introspection ----------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """A structured snapshot of the live state: shard roster with
        journal checkpoints, pending delta sizes, and journal footprint."""
        with self._lock:
            shards = []
            journal_bytes = 0
            for entry in self._manifest.shards:
                names = self._replica_names(entry)
                size = 0
                for wal in self._journal_paths(entry):
                    size += wal.stat().st_size if wal.exists() else 0
                journal_bytes += size
                shards.append(
                    {
                        "name": entry.name,
                        "directory": entry.directory,
                        "applied_seq": saved_applied_seq(self.root / entry.directory),
                        "pending": len(self._pending.get(entry.name, [])),
                        "journal_bytes": size,
                        "replicas": len(names) if names else 1,
                    }
                )
            return {
                "root": str(self.root),
                "shards": shards,
                "tail": self._manifest.shards[-1].name,
                "pending_records": sum(
                    len(frames) for frames in self._pending.values()
                ),
                "next_seq": self._next_seq,
                "max_shard_bytes": self.max_shard_bytes,
                "journal_bytes": journal_bytes,
                "ack_quorum": self.ack_quorum,
                "request_ids": len(self._request_seqs),
            }

    def replica_health(self) -> list[dict[str, Any]]:
        """Per-shard replica health from the underlying sharded engine
        (empty when no shard is replicated)."""
        return self._engine.replica_health()

    def explain(self, query: Any) -> str | ExplainResponse:
        """The base engine's plan/roster explanation (the delta segment
        executes the same shared plan shape on a small in-memory engine)."""
        return self._engine.explain(query)

    def analyze(
        self, query: Any, budget: ResourceBudget | None = None
    ) -> Any | AnalyzeResponse:
        """EXPLAIN ANALYZE over the *base* index (instrumentation needs
        the persisted shard engines; pending deltas are excluded — compact
        first for exact row counts)."""
        return self._engine.analyze(query, budget=budget)

    def stats(self) -> StatsResponse:
        response = self._engine.stats()
        with self._lock:
            response.backend.update(
                {
                    "type": "live",
                    "base": "sharded",
                    "pending_records": sum(
                        len(frames) for frames in self._pending.values()
                    ),
                    "next_seq": self._next_seq,
                    "tail": self._manifest.shards[-1].name,
                    "ack_quorum": self.ack_quorum,
                }
            )
        return response

    def close(self) -> None:
        with self._lock:
            self._close_writers()
