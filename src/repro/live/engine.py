"""Crash-safe live ingestion over a saved sharded index.

:class:`LiveEngine` turns the immutable sharded index of
:mod:`repro.shard` into an appendable corpus without giving up any of its
durability guarantees.  The moving parts:

- **Write-ahead journal** (:mod:`repro.live.journal`): every append is
  framed, checksummed, and fsynced before the call returns.  Journals
  live under ``<root>/wal/`` — *outside* the shard directories — because
  compaction replaces a shard directory wholesale and must never take
  unfolded journal frames down with it.
- **Delta segment**: acked records accumulate in memory per shard and are
  queried alongside the base index — each dirty shard's delta is answered
  by a small :class:`~repro.core.engine.FileQueryEngine` over the joined
  record texts, and its rows are spliced after that shard's base rows, so
  the merged result is byte-identical to a full rebuild of the logical
  corpus (base text + acked appends).
- **Compaction**: folds each dirty shard's delta into its base index via
  the existing staging-sibling + rename-swap save.  The journal
  checkpoint (``applied_seq``) rides *in the shard's own manifest*, so
  one rename commits the folded rows and the checkpoint together; the
  journal trim afterwards is pure garbage collection.  A tail shard that
  outgrows ``max_shard_bytes`` then splits through
  :func:`~repro.shard.split.split_corpus`, with the root ``manifest.json``
  rewritten last as the commit point.
- **Recovery** (:meth:`LiveEngine.open`): orphaned shard directories from
  an uncommitted split are swept; a shard whose own manifest ran ahead of
  the root manifest (crash between a compaction's swap and the root
  rewrite) refreshes the root entry; journal frames above each shard's
  ``applied_seq`` are replayed into the delta segment with a
  ``delta-replayed`` warning; torn journal tails are truncated.  Every
  acked append survives, every unacked one vanishes.

Appends go to the **tail shard** (the root manifest's last entry) and
each record must be self-delimiting — it carries its own separators, so
the logical shard text is exactly ``base + "".join(records)``.
"""

from __future__ import annotations

import os
import shutil
import threading
from pathlib import Path
from typing import Any

from repro.api import (
    AnalyzeResponse,
    ExplainResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    query_response,
)
from repro.core.engine import FileQueryEngine
from repro.errors import JournalCorruptError, ParseError
from repro.index.persist import applied_seq as saved_applied_seq
from repro.index.persist import corpus_fingerprint, load_manifest
from repro.live.journal import Frame, JournalWriter, replay_journal, trim_journal
from repro.resilience.budget import ResourceBudget
from repro.resilience.warnings import DELTA_REPLAYED, SHARD_SPLIT, STALE_STAGING_REMOVED, QueryWarning
from repro.schema.structuring import StructuringSchema
from repro.shard.engine import ShardedEngine, ShardedQueryResult
from repro.shard.manifest import (
    SHARDS_SUBDIR,
    ShardEntry,
    ShardManifest,
    load_shard_manifest,
    save_shard_manifest,
    shard_slug,
)
from repro.shard.split import split_corpus

WAL_SUBDIR = "wal"


class LiveEngine:
    """A sharded query engine that accepts durable appends.

    Construct via :meth:`open` on a directory produced by
    :meth:`~repro.shard.ShardedEngine.save` (``repro shard build``).  The
    engine satisfies the unified :class:`~repro.api.QueryBackend` surface
    (``query``/``explain``/``analyze``/``stats`` accept
    :class:`~repro.api.QueryRequest` and return wire responses), which is
    what lets ``repro serve`` put ``POST /append`` next to ``/query``.

    ``crash_hook`` is a test-only seam: a callable invoked with a named
    point (``"append:written"``, ``"compact:shard-saved"``,
    ``"compact:manifest-updated"``, ``"split:shards-saved"``,
    ``"split:manifest-updated"``) that may raise to simulate a crash
    exactly there — the chaos scenarios drive every window through it.
    """

    def __init__(
        self,
        schema: StructuringSchema,
        root: Path,
        manifest: ShardManifest,
        engine: ShardedEngine,
        options: dict[str, Any],
        pending: dict[str, list[Frame]],
        next_seq: int,
        load_warnings: list[QueryWarning],
        max_shard_bytes: int | None = None,
        crash_hook=None,
    ) -> None:
        self.schema = schema
        self.root = root
        self.max_shard_bytes = max_shard_bytes
        self.crash_hook = crash_hook
        self._manifest = manifest
        self._engine = engine
        self._options = options
        self._pending = pending
        self._next_seq = next_seq
        self._load_warnings = load_warnings
        self._delta: dict[str, tuple[int, FileQueryEngine]] = {}
        self._journal: JournalWriter | None = None
        self._lock = threading.RLock()

    # -- construction / recovery ------------------------------------------------

    @classmethod
    def open(
        cls,
        schema: StructuringSchema,
        directory: str | os.PathLike[str],
        max_shard_bytes: int | None = None,
        crash_hook=None,
        **options: Any,
    ) -> "LiveEngine":
        """Open a saved sharded index for live ingestion, running the full
        crash-recovery protocol described in the module docstring.
        ``options`` pass through to :meth:`ShardedEngine.from_saved` (and
        to the reopen after every compaction)."""
        root = Path(directory)
        manifest = load_shard_manifest(root)
        warnings: list[QueryWarning] = []

        # 1. Sweep shard directories no manifest entry references: the
        # staging side of a split whose commit (the root manifest rewrite)
        # never happened, or the retired side of one that did.
        referenced = {entry.directory for entry in manifest.shards}
        shards_dir = root / SHARDS_SUBDIR
        if shards_dir.is_dir():
            for child in sorted(shards_dir.iterdir()):
                relative = f"{SHARDS_SUBDIR}/{child.name}"
                if (
                    child.is_dir()
                    and not child.name.startswith(".")
                    and relative not in referenced
                ):
                    shutil.rmtree(child, ignore_errors=True)
                    warnings.append(
                        QueryWarning(
                            STALE_STAGING_REMOVED,
                            f"removed unreferenced shard directory {relative} "
                            "(uncommitted or superseded by a split)",
                            detail={"path": str(child), "root": str(root)},
                        )
                    )

        # 2. A shard whose own (atomically committed) manifest ran ahead
        # of the root manifest: a compaction crashed between the shard
        # swap and the root rewrite.  The shard is authoritative — refresh
        # the root entry.
        entries: list[ShardEntry] = []
        refreshed = False
        for entry in manifest.shards:
            shard_manifest = load_manifest(root / entry.directory)
            actual = (
                shard_manifest.get("corpus_fingerprint")
                if isinstance(shard_manifest, dict)
                else None
            )
            if isinstance(actual, str) and actual != entry.corpus_fingerprint:
                entry = ShardEntry(
                    name=entry.name,
                    directory=entry.directory,
                    corpus_fingerprint=actual,
                    source=entry.source,
                )
                refreshed = True
                warnings.append(
                    QueryWarning(
                        DELTA_REPLAYED,
                        f"shard {entry.name!r} committed ahead of the root "
                        "manifest (crash mid-compaction); root entry refreshed",
                        detail={"shard": entry.name, "fingerprint": actual},
                    )
                )
            entries.append(entry)
        if refreshed:
            manifest = ShardManifest(
                shards=tuple(entries),
                schema_fingerprint=manifest.schema_fingerprint,
                format_version=manifest.format_version,
            )
            save_shard_manifest(root, manifest)

        # 3. Replay journals: frames above a shard's applied_seq become
        # its delta segment again; torn tails are truncated; journals for
        # vanished shards are deleted iff fully applied.
        applied_by_dir = {
            entry.directory: saved_applied_seq(root / entry.directory)
            for entry in entries
        }
        global_applied = max(applied_by_dir.values(), default=0)
        by_basename = {Path(entry.directory).name: entry for entry in entries}
        pending: dict[str, list[Frame]] = {}
        next_seq = global_applied + 1
        wal_dir = root / WAL_SUBDIR
        if wal_dir.is_dir():
            for wal in sorted(wal_dir.glob("*.wal")):
                entry = by_basename.get(wal.name[: -len(".wal")])
                replay = replay_journal(wal)
                if entry is None:
                    if replay.max_seq <= global_applied:
                        wal.unlink(missing_ok=True)
                        continue
                    raise JournalCorruptError(
                        str(wal),
                        "journal for a shard absent from the manifest holds "
                        f"frames beyond the applied checkpoint {global_applied} "
                        "— acked appends would be lost",
                    )
                next_seq = max(next_seq, replay.max_seq + 1)
                frames = [
                    frame
                    for frame in replay.frames
                    if frame.seq > applied_by_dir[entry.directory]
                ]
                if frames:
                    pending[entry.name] = frames
                if frames or replay.torn_bytes:
                    warnings.append(
                        QueryWarning(
                            DELTA_REPLAYED,
                            f"replayed {len(frames)} journaled append(s) into "
                            f"shard {entry.name!r}'s delta segment"
                            + (
                                f"; truncated a {replay.torn_bytes}-byte torn tail"
                                if replay.torn_bytes
                                else ""
                            ),
                            detail={
                                "shard": entry.name,
                                "replayed": len(frames),
                                "torn_bytes": replay.torn_bytes,
                                "journal": str(wal),
                            },
                        )
                    )

        engine = ShardedEngine.from_saved(schema, root, **options)
        return cls(
            schema=schema,
            root=root,
            manifest=manifest,
            engine=engine,
            options=dict(options),
            pending=pending,
            next_seq=next_seq,
            load_warnings=warnings,
            max_shard_bytes=max_shard_bytes,
            crash_hook=crash_hook,
        )

    # -- appending --------------------------------------------------------------

    def append(self, record: str) -> int:
        """Durably append one record to the tail shard.

        The record must parse under the engine's schema as at least one
        complete top-level record (raises
        :class:`~repro.errors.ParseError` otherwise — nothing is
        journaled) and must be self-delimiting: it carries any separators
        the grammar needs, e.g. a trailing newline for line-oriented
        workloads.  Returns the record's journal sequence number; by the
        time it returns, the frame is fsynced — the append survives any
        subsequent crash.
        """
        tree = self.schema.parse(record)
        if not list(tree.children):
            raise ParseError(
                f"record contains no top-level <{tree.symbol}> record", 0
            )
        with self._lock:
            tail = self._manifest.shards[-1]
            seq = self._next_seq
            self._writer(tail).append(seq, record, crash_hook=self.crash_hook)
            # Past this point the append is acked: frame fsynced.
            self._next_seq = seq + 1
            self._pending.setdefault(tail.name, []).append(
                Frame(seq=seq, record=record)
            )
            return seq

    def _writer(self, tail: ShardEntry) -> JournalWriter:
        path = self._journal_path(tail)
        if self._journal is None or self._journal.path != path:
            if self._journal is not None:
                self._journal.close()
            self._journal = JournalWriter(path)
        return self._journal

    def _journal_path(self, entry: ShardEntry) -> Path:
        return self.root / WAL_SUBDIR / f"{Path(entry.directory).name}.wal"

    # -- querying ---------------------------------------------------------------

    def query(
        self,
        query: Any,
        budget: ResourceBudget | None = None,
        fail_fast: bool | None = None,
    ) -> ShardedQueryResult | QueryResponse:
        """Scatter-gather over the base index, with each dirty shard's
        delta segment answered alongside and its rows spliced after that
        shard's base rows — the merged rows match a full rebuild of the
        logical corpus.  A :class:`~repro.api.QueryRequest` returns the
        wire-ready :class:`~repro.api.QueryResponse`."""
        if isinstance(query, QueryRequest):
            result = self.query(query.query, budget=query.budget)
            return query_response(result, query)
        with self._lock:
            snapshot = {
                name: list(frames)
                for name, frames in self._pending.items()
                if frames
            }
            manifest = self._manifest
        base = self._engine.query(query, budget=budget, fail_fast=fail_fast)
        if self._load_warnings:
            base.stats.warnings[:0] = list(self._load_warnings)
        if not snapshot:
            return base
        rows: list[tuple] = []
        for entry in manifest.shards:
            shard_result = base.shard_results.get(entry.name)
            if shard_result is not None:
                rows.extend(shard_result.rows)
            frames = snapshot.get(entry.name)
            if frames:
                delta_result = self._delta_engine(entry.name, frames).query(query)
                rows.extend(delta_result.rows)
        return ShardedQueryResult(
            rows=rows,
            plan=base.plan,
            stats=base.stats,
            shard_results=base.shard_results,
            trace=base.trace,
        )

    def _delta_engine(self, shard_name: str, frames: list[Frame]) -> FileQueryEngine:
        """The cached delta-segment engine for one dirty shard, rebuilt
        whenever the shard's pending tail advances (keyed by last seq)."""
        cached = self._delta.get(shard_name)
        if cached is not None and cached[0] == frames[-1].seq:
            return cached[1]
        engine = FileQueryEngine(
            self.schema, "".join(frame.record for frame in frames)
        )
        self._delta[shard_name] = (frames[-1].seq, engine)
        return engine

    # -- compaction and the shard lifecycle -------------------------------------

    def compact(self) -> dict[str, Any]:
        """Fold every dirty shard's delta into its base index, then split
        the tail shard if it outgrew ``max_shard_bytes``.

        Commit points, in order, per shard: (1) the staging-sibling
        rename-swap that lands the folded index *and* its ``applied_seq``
        checkpoint atomically; (2) the root-manifest rewrite refreshing
        the shard's fingerprint; (3) the atomic journal trim.  A crash
        between any two is recovered by :meth:`open` — step 1 makes the
        remaining steps idempotent housekeeping.
        """
        with self._lock:
            if self._journal is not None:
                # Trims and splits replace journal files; never keep a
                # handle to a replaced inode.
                self._journal.close()
                self._journal = None
            folded: dict[str, int] = {}
            for entry in list(self._manifest.shards):
                frames = self._pending.get(entry.name)
                if not frames:
                    continue
                shard_dir = self.root / entry.directory
                base_text = (shard_dir / "corpus.txt").read_text(encoding="utf-8")
                new_text = base_text + "".join(frame.record for frame in frames)
                applied = frames[-1].seq
                FileQueryEngine(self.schema, new_text).save(
                    str(shard_dir), live={"applied_seq": applied}
                )
                self._crash("compact:shard-saved")
                self._replace_entry(
                    entry,
                    ShardEntry(
                        name=entry.name,
                        directory=entry.directory,
                        corpus_fingerprint=corpus_fingerprint(new_text),
                        source=entry.source,
                    ),
                )
                save_shard_manifest(self.root, self._manifest)
                self._crash("compact:manifest-updated")
                trim_journal(self._journal_path(entry), applied)
                self._pending.pop(entry.name, None)
                self._delta.pop(entry.name, None)
                folded[entry.name] = len(frames)
            split = self._maybe_split() if self.max_shard_bytes is not None else None
            self._engine = ShardedEngine.from_saved(
                self.schema, self.root, **self._options
            )
            return {"folded": folded, "split": split}

    def _replace_entry(self, old: ShardEntry, new: ShardEntry) -> None:
        entries = tuple(
            new if entry.name == old.name else entry
            for entry in self._manifest.shards
        )
        self._manifest = ShardManifest(
            shards=entries,
            schema_fingerprint=self._manifest.schema_fingerprint,
            format_version=self._manifest.format_version,
        )

    def _maybe_split(self) -> dict[str, Any] | None:
        """Split the (just-compacted) tail shard in two when it exceeds the
        byte budget.  New shard directories are always fresh slugs — the
        old directory is never reused — and the root manifest rewrite is
        the commit point; the old directory and journal are garbage
        afterwards."""
        tail = self._manifest.shards[-1]
        shard_dir = self.root / tail.directory
        text = (shard_dir / "corpus.txt").read_text(encoding="utf-8")
        if len(text.encode("utf-8")) <= self.max_shard_bytes:
            return None
        halves = split_corpus(self.schema, text, 2)
        if len(halves) < 2:
            return None  # a single record cannot be split
        applied = saved_applied_seq(shard_dir)
        position = len(self._manifest.shards) - 1
        new_entries: list[ShardEntry] = []
        for offset, half in enumerate(halves):
            name = f"{tail.name}/{offset}"
            index = position + offset
            relative = f"{SHARDS_SUBDIR}/{shard_slug(name, index)}"
            while (self.root / relative).exists():
                index += len(self._manifest.shards) + 1
                relative = f"{SHARDS_SUBDIR}/{shard_slug(name, index)}"
            FileQueryEngine(self.schema, half).save(
                str(self.root / relative), live={"applied_seq": applied}
            )
            new_entries.append(
                ShardEntry(
                    name=name,
                    directory=relative,
                    corpus_fingerprint=corpus_fingerprint(half),
                    source=None,
                )
            )
        self._crash("split:shards-saved")
        self._manifest = ShardManifest(
            shards=tuple(self._manifest.shards[:-1]) + tuple(new_entries),
            schema_fingerprint=self._manifest.schema_fingerprint,
            format_version=self._manifest.format_version,
        )
        save_shard_manifest(self.root, self._manifest)
        self._crash("split:manifest-updated")
        shutil.rmtree(shard_dir, ignore_errors=True)
        self._journal_path(tail).unlink(missing_ok=True)
        warning = QueryWarning(
            SHARD_SPLIT,
            f"shard {tail.name!r} exceeded {self.max_shard_bytes} bytes and "
            f"split into {new_entries[0].name!r} and {new_entries[1].name!r}",
            detail={
                "shard": tail.name,
                "bytes": len(text.encode("utf-8")),
                "max_shard_bytes": self.max_shard_bytes,
                "into": [entry.name for entry in new_entries],
            },
        )
        self._load_warnings.append(warning)
        return {
            "shard": tail.name,
            "into": [entry.name for entry in new_entries],
            "bytes": len(text.encode("utf-8")),
        }

    def _crash(self, point: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(point)

    # -- introspection ----------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """A structured snapshot of the live state: shard roster with
        journal checkpoints, pending delta sizes, and journal footprint."""
        with self._lock:
            shards = []
            journal_bytes = 0
            for entry in self._manifest.shards:
                wal = self._journal_path(entry)
                size = wal.stat().st_size if wal.exists() else 0
                journal_bytes += size
                shards.append(
                    {
                        "name": entry.name,
                        "directory": entry.directory,
                        "applied_seq": saved_applied_seq(self.root / entry.directory),
                        "pending": len(self._pending.get(entry.name, [])),
                        "journal_bytes": size,
                    }
                )
            return {
                "root": str(self.root),
                "shards": shards,
                "tail": self._manifest.shards[-1].name,
                "pending_records": sum(
                    len(frames) for frames in self._pending.values()
                ),
                "next_seq": self._next_seq,
                "max_shard_bytes": self.max_shard_bytes,
                "journal_bytes": journal_bytes,
            }

    def explain(self, query: Any) -> str | ExplainResponse:
        """The base engine's plan/roster explanation (the delta segment
        executes the same shared plan shape on a small in-memory engine)."""
        return self._engine.explain(query)

    def analyze(
        self, query: Any, budget: ResourceBudget | None = None
    ) -> Any | AnalyzeResponse:
        """EXPLAIN ANALYZE over the *base* index (instrumentation needs
        the persisted shard engines; pending deltas are excluded — compact
        first for exact row counts)."""
        return self._engine.analyze(query, budget=budget)

    def stats(self) -> StatsResponse:
        response = self._engine.stats()
        with self._lock:
            response.backend.update(
                {
                    "type": "live",
                    "base": "sharded",
                    "pending_records": sum(
                        len(frames) for frames in self._pending.values()
                    ),
                    "next_seq": self._next_seq,
                    "tail": self._manifest.shards[-1].name,
                }
            )
        return response

    def close(self) -> None:
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None
