"""The BibTeX workload — the paper's running example.

The grammar mirrors the structuring schema of Section 4.1: a file is a set
of ``Reference`` objects with a ``Key``, sets of author/editor ``Name``
tuples (each a ``First_Name``/``Last_Name`` pair), atomic ``Title`` /
``Booktitle`` / ``Year`` / ``Publisher`` / ``Pages`` fields, a set-valued
``Keywords`` field, a set-valued ``Referred`` field of cited keys, and an
``Abstract``.

The generator controls the knob the paper's partial-indexing discussion
turns on: how often a last name appears as an *editor* as well as an
*author* — that ambiguity is exactly what makes ``Reference ⊃d
σ"Chang"(Last_Name)`` a strict superset of the Chang-as-author query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    SeqRule,
    StarRule,
    TNumber,
    TUntil,
    TWord,
)
from repro.schema.structuring import StructuringSchema

#: Last names used by the generator; "Chang" and "Corliss" match the paper.
LAST_NAMES = [
    "Chang", "Corliss", "Griewank", "Milo", "Consens", "Abiteboul", "Cluet",
    "Tompa", "Gonnet", "Salminen", "Kifer", "Sagiv", "Mendelzon", "Lamport",
    "Burkowski", "Salton", "McGill", "Bertino", "Schwartz", "Paepcke",
]

FIRST_NAMES = [
    "G.", "Y.", "A.", "T.", "M.", "S.", "F.", "W.", "K.", "H.",
    "L.", "P.", "R.", "D.", "E.", "J.", "N.", "O.", "U.", "V.",
]

TITLE_WORDS = [
    "Solving", "Ordinary", "Differential", "Equations", "Using", "Taylor",
    "Series", "Automatic", "Differentiation", "Algorithms", "Optimizing",
    "Queries", "Files", "Region", "Algebra", "Text", "Indexing", "Databases",
    "Structured", "Documents", "Parsing", "Grammars", "Views",
]

KEYWORD_PHRASES = [
    "point algorithm", "Taylor series", "radius of convergence",
    "text indexing", "region algebra", "query optimization",
    "structuring schema", "partial indexing", "inclusion graph",
    "semi-structured data",
]

PUBLISHERS = ["SIAM", "ACM", "Springer", "Elsevier", "IEEE", "Kluwer"]
ADDRESSES = ["Philadelphia", "Minneapolis", "Toronto", "Waterloo", "Dublin"]


def bibtex_grammar() -> Grammar:
    """The annotated grammar of Section 4.1 (concrete-syntax variant)."""
    rules = [
        StarRule("Ref_Set", NonTerminal("Reference")),
        SeqRule(
            "Reference",
            [
                Literal("@INCOLLECTION{"),
                NonTerminal("Key"),
                Literal(","),
                Literal("AUTHOR"), Literal("="), Literal('"'),
                NonTerminal("Authors"),
                Literal('"'), Literal(","),
                Literal("TITLE"), Literal("="), Literal('"'),
                NonTerminal("Title"),
                Literal('"'), Literal(","),
                Literal("BOOKTITLE"), Literal("="), Literal('"'),
                NonTerminal("Booktitle"),
                Literal('"'), Literal(","),
                Literal("YEAR"), Literal("="), Literal('"'),
                NonTerminal("Year"),
                Literal('"'), Literal(","),
                Literal("EDITOR"), Literal("="), Literal('"'),
                NonTerminal("Editors"),
                Literal('"'), Literal(","),
                Literal("PUBLISHER"), Literal("="), Literal('"'),
                NonTerminal("Publisher"),
                Literal('"'), Literal(","),
                Literal("ADDRESS"), Literal("="), Literal('"'),
                NonTerminal("Address"),
                Literal('"'), Literal(","),
                Literal("PAGES"), Literal("="), Literal('"'),
                NonTerminal("Pages"),
                Literal('"'), Literal(","),
                Literal("REFERRED"), Literal("="), Literal('"'),
                NonTerminal("Referred"),
                Literal('"'), Literal(","),
                Literal("KEYWORDS"), Literal("="), Literal('"'),
                NonTerminal("Keywords"),
                Literal('"'), Literal(","),
                Literal("ABSTRACT"), Literal("="), Literal('"'),
                NonTerminal("Abstract"),
                Literal('"'),
                Literal("}"),
            ],
        ),
        SeqRule("Key", [TWord()]),
        StarRule("Authors", NonTerminal("Name"), separator=Literal("and")),
        StarRule("Editors", NonTerminal("Name"), separator=Literal("and")),
        SeqRule("Name", [NonTerminal("First_Name"), NonTerminal("Last_Name")]),
        SeqRule("First_Name", [TWord()]),
        SeqRule("Last_Name", [TWord()]),
        SeqRule("Title", [TUntil('"')]),
        SeqRule("Booktitle", [TUntil('"')]),
        SeqRule("Year", [TNumber()]),
        SeqRule("Publisher", [TUntil('"')]),
        SeqRule("Address", [TUntil('"')]),
        SeqRule("Pages", [TWord()]),
        StarRule("Referred", NonTerminal("RefKey"), separator=Literal(";")),
        SeqRule("RefKey", [TWord()]),
        StarRule("Keywords", NonTerminal("Keyword"), separator=Literal(";")),
        SeqRule("Keyword", [TUntil((";", '"'))]),
        SeqRule("Abstract", [TUntil('"')]),
    ]
    return Grammar(rules, start="Ref_Set")


def bibtex_schema() -> StructuringSchema:
    """The BibTeX structuring schema: ``Reference`` objects, all else values."""
    return StructuringSchema(bibtex_grammar(), classes={"Reference"}, name="BibTeX")


@dataclass
class BibtexGenerator:
    """Seeded synthetic bibliography generator.

    Parameters
    ----------
    entries:
        Number of references.
    seed:
        RNG seed (deterministic output).
    editor_overlap:
        Probability that an editor's last name is drawn from the same pool
        as author last names (1.0 reproduces the paper's Chang-as-editor
        ambiguity at full strength).
    authors_per_entry, editors_per_entry:
        Mean list lengths.
    abstract_words:
        Length of the unstructured text chunk.
    """

    entries: int = 100
    seed: int = 0
    editor_overlap: float = 1.0
    self_edited_rate: float = 0.1
    authors_per_entry: int = 2
    editors_per_entry: int = 2
    abstract_words: int = 20

    def generate(self) -> str:
        rng = random.Random(self.seed)
        blocks = [self._entry(rng, number) for number in range(self.entries)]
        return "\n".join(blocks) + "\n"

    # -- pieces -------------------------------------------------------------------

    def _name(self, rng: random.Random, editor: bool) -> str:
        first = rng.choice(FIRST_NAMES)
        if editor and rng.random() > self.editor_overlap:
            last = rng.choice(LAST_NAMES).upper()  # disjoint editor pool
        else:
            last = rng.choice(LAST_NAMES)
        return f"{first} {last}"

    def _names(self, rng: random.Random, mean: int, editor: bool) -> str:
        count = max(1, mean + rng.randint(-1, 1))
        return " and ".join(self._name(rng, editor) for _ in range(count))

    def _key(self, number: int) -> str:
        """Deterministic per entry number, so REFERRED citations resolve."""
        stem = LAST_NAMES[number % len(LAST_NAMES)][:4]
        return f"{stem}{80 + number % 20}{chr(97 + number % 26)}"

    def _entry(self, rng: random.Random, number: int) -> str:
        key = self._key(number)
        authors = self._names(rng, self.authors_per_entry, editor=False)
        editors = self._names(rng, self.editors_per_entry, editor=True)
        if rng.random() < self.self_edited_rate:
            # One of the authors also edited the volume (Section 5.2's join).
            shared = rng.choice(authors.split(" and "))
            editors = shared + " and " + editors
        title = " ".join(rng.sample(TITLE_WORDS, k=5))
        booktitle = " ".join(rng.sample(TITLE_WORDS, k=3))
        year = str(rng.randint(1975, 1994))
        publisher = rng.choice(PUBLISHERS)
        address = rng.choice(ADDRESSES)
        pages = f"{rng.randint(1, 400)}--{rng.randint(401, 900)}"
        referred = "; ".join(
            self._key(rng.randrange(max(1, self.entries)))
            for _ in range(rng.randint(1, 3))
        )
        keywords = "; ".join(rng.sample(KEYWORD_PHRASES, k=rng.randint(1, 3)))
        abstract = " ".join(rng.choice(TITLE_WORDS) for _ in range(self.abstract_words))
        return (
            f"@INCOLLECTION{{ {key},\n"
            f'  AUTHOR = "{authors}",\n'
            f'  TITLE = "{title}",\n'
            f'  BOOKTITLE = "{booktitle}",\n'
            f'  YEAR = "{year}",\n'
            f'  EDITOR = "{editors}",\n'
            f'  PUBLISHER = "{publisher}",\n'
            f'  ADDRESS = "{address}",\n'
            f'  PAGES = "{pages}",\n'
            f'  REFERRED = "{referred}",\n'
            f'  KEYWORDS = "{keywords}",\n'
            f'  ABSTRACT = "{abstract}"\n'
            f"}}"
        )


def generate_bibtex(entries: int = 100, seed: int = 0, **knobs: object) -> str:
    """Generate a synthetic bibliography file (see :class:`BibtexGenerator`)."""
    return BibtexGenerator(entries=entries, seed=seed, **knobs).generate()  # type: ignore[arg-type]


#: The paper's canonical query (Section 2).
CHANG_AUTHOR_QUERY = (
    'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'
)

#: The star-variable variant (Section 5.3): Chang as author *or* editor.
CHANG_ANY_QUERY = 'SELECT r FROM Reference r WHERE r.*X.Last_Name = "Chang"'

#: The join query of Section 5.2: edited by one of the authors.
SELF_EDITED_QUERY = (
    "SELECT r FROM Reference r WHERE r.Editors.Name = r.Authors.Name"
)
