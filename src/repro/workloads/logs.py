"""The structured-log workload.

Log files are one of the paper's motivating semi-structured sources
(Section 1).  The grammar models a service log whose entries have a
timestamp, a severity level, a component, a message, and an optional nested
request block with a method, a resource and a status:

    [1994-05-24 10:15:03] ERROR storage "disk quota exceeded"
        { GET /index/regions 503 }

Request blocks give the RIG real depth (``Entry -> Request -> Method``), so
partial-indexing and advisor experiments have something to drop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    SeqRule,
    StarRule,
    TNumber,
    TUntil,
    TWord,
)
from repro.schema.structuring import StructuringSchema

LEVELS = ["DEBUG", "INFO", "WARN", "ERROR", "FATAL"]
COMPONENTS = ["storage", "parser", "planner", "index", "network", "cache"]
MESSAGES = [
    "disk quota exceeded", "connection reset by peer", "slow query detected",
    "checkpoint complete", "region index rebuilt", "cache miss storm",
    "schema reloaded", "backpressure engaged", "lease renewed",
]
METHODS = ["GET", "PUT", "POST", "DELETE"]
RESOURCES = [
    "/index/regions", "/index/words", "/query/plan", "/corpus/docs",
    "/admin/stats", "/query/run",
]
STATUSES = [200, 201, 204, 400, 404, 500, 503]


def log_grammar() -> Grammar:
    rules = [
        StarRule("Log", NonTerminal("Entry")),
        SeqRule(
            "Entry",
            [
                Literal("["),
                NonTerminal("Timestamp"),
                Literal("]"),
                NonTerminal("Level"),
                NonTerminal("Component"),
                Literal('"'),
                NonTerminal("Message"),
                Literal('"'),
                NonTerminal("Requests"),
            ],
        ),
        SeqRule("Timestamp", [NonTerminal("Date"), NonTerminal("Time")]),
        SeqRule("Date", [TWord()]),
        SeqRule("Time", [TWord(extra=":")]),
        SeqRule("Level", [TWord()]),
        SeqRule("Component", [TWord()]),
        SeqRule("Message", [TUntil('"')]),
        StarRule("Requests", NonTerminal("Request")),
        SeqRule(
            "Request",
            [
                Literal("{"),
                NonTerminal("Method"),
                NonTerminal("Resource"),
                NonTerminal("Status"),
                Literal("}"),
            ],
        ),
        SeqRule("Method", [TWord()]),
        SeqRule("Resource", [TWord(extra="/._-")]),
        SeqRule("Status", [TNumber()]),
    ]
    return Grammar(rules, start="Log")


def log_schema() -> StructuringSchema:
    return StructuringSchema(log_grammar(), classes={"Entry"}, name="ServiceLog")


@dataclass
class LogGenerator:
    """Seeded synthetic log generator."""

    entries: int = 500
    seed: int = 0
    error_rate: float = 0.15
    requests_per_entry: int = 1

    def generate(self) -> str:
        rng = random.Random(self.seed)
        lines = [self._entry(rng, number) for number in range(self.entries)]
        return "\n".join(lines) + "\n"

    def _entry(self, rng: random.Random, number: int) -> str:
        level = "ERROR" if rng.random() < self.error_rate else rng.choice(
            [l for l in LEVELS if l != "ERROR"]
        )
        second = number % 60
        minute = (number // 60) % 60
        hour = 8 + (number // 3600) % 12
        timestamp = f"1994-05-24 {hour:02d}:{minute:02d}:{second:02d}"
        component = rng.choice(COMPONENTS)
        message = rng.choice(MESSAGES)
        request_count = max(0, self.requests_per_entry + rng.randint(-1, 1))
        requests = " ".join(
            f"{{ {rng.choice(METHODS)} {rng.choice(RESOURCES)} {rng.choice(STATUSES)} }}"
            for _ in range(request_count)
        )
        entry = f'[{timestamp}] {level} {component} "{message}"'
        if requests:
            entry += f" {requests}"
        return entry


def generate_log(entries: int = 500, seed: int = 0, **knobs: object) -> str:
    return LogGenerator(entries=entries, seed=seed, **knobs).generate()  # type: ignore[arg-type]


def tail_entries(entries: int = 100, seed: int = 0, start: int = 0, **knobs: object):
    """Yield single log entries shaped for live ingestion.

    Each yielded string is one complete, newline-terminated ``Entry`` —
    exactly the self-delimiting record
    :meth:`repro.live.LiveEngine.append` expects, so a tailing ingester
    is just::

        for record in tail_entries(entries=100, seed=7):
            live.append(record)      # journaled + fsynced before returning

    ``start`` offsets the entry numbering (and thus the timestamps), so
    successive batches continue the clock of an earlier
    :func:`generate_log` corpus instead of restarting it.  The stream is
    deterministic in ``(seed, start, knobs)``.
    """
    generator = LogGenerator(entries=entries, seed=seed, **knobs)  # type: ignore[arg-type]
    rng = random.Random(generator.seed)
    for number in range(start, start + entries):
        yield generator._entry(rng, number) + "\n"


ERROR_QUERY = 'SELECT e FROM Entry e WHERE e.Level = "ERROR"'
STORAGE_ERRORS_QUERY = (
    'SELECT e FROM Entry e WHERE e.Level = "ERROR" AND e.Component = "storage"'
)
FAILED_GETS_QUERY = (
    'SELECT e FROM Entry e '
    'WHERE e.Requests.Request.Method = "GET" AND e.Requests.Request.Status = "503"'
)
