"""The source-code workload.

"Programs" are on the paper's list of semi-structured files (Section 1),
and the Hy+ system the authors built used these techniques for "the
querying and visualization of software engineering data".  This workload
models a small imperative language:

    def read_block(buffer, offset) {
      size = buffer_len;
      call check_bounds(buffer, offset);
      if has_lock {
        call acquire(buffer);
        result = offset;
      }
      call release(buffer);
    }

Statements are a *disjunctive* non-terminal (``Stmt -> Call | Assign |
If``, footnote 5's disjunctive types), and ``If`` bodies nest statements —
so the RIG is cyclic and call-site queries at any depth are closure
queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    SeqRule,
    StarRule,
    TWord,
)
from repro.schema.structuring import StructuringSchema

FUNCTION_STEMS = [
    "read", "write", "flush", "parse", "plan", "scan", "merge", "split",
    "check", "acquire", "release", "alloc", "free", "hash", "walk",
]
NOUNS = ["block", "page", "index", "region", "buffer", "lock", "tree", "row"]
VARIABLES = ["size", "offset", "count", "cursor", "result", "state", "limit"]
CONDITIONS = ["has_lock", "is_dirty", "at_end", "needs_split", "in_cache"]


def source_grammar() -> Grammar:
    rules = [
        StarRule("Program", NonTerminal("Function")),
        SeqRule(
            "Function",
            [
                Literal("def"),
                NonTerminal("FuncName"),
                Literal("("),
                NonTerminal("Params"),
                Literal(")"),
                Literal("{"),
                NonTerminal("Body"),
                Literal("}"),
            ],
        ),
        SeqRule("FuncName", [TWord(extra="_")]),
        StarRule("Params", NonTerminal("Param"), separator=Literal(",")),
        SeqRule("Param", [TWord(extra="_")]),
        StarRule("Body", NonTerminal("Stmt")),
        # Footnote 5: a disjunctive non-terminal.  PEG order matters: the
        # keyword-led alternatives come before the bare-identifier one.
        SeqRule("Stmt", [NonTerminal("Call")]),
        SeqRule("Stmt", [NonTerminal("If")]),
        SeqRule("Stmt", [NonTerminal("Assign")]),
        SeqRule(
            "Call",
            [
                Literal("call"),
                NonTerminal("Callee"),
                Literal("("),
                NonTerminal("Args"),
                Literal(")"),
                Literal(";"),
            ],
        ),
        SeqRule("Callee", [TWord(extra="_")]),
        StarRule("Args", NonTerminal("Arg"), separator=Literal(",")),
        SeqRule("Arg", [TWord(extra="_")]),
        SeqRule(
            "If",
            [
                Literal("if"),
                NonTerminal("Cond"),
                Literal("{"),
                NonTerminal("Body"),
                Literal("}"),
            ],
        ),
        SeqRule("Cond", [TWord(extra="_")]),
        SeqRule(
            "Assign",
            [NonTerminal("Var"), Literal("="), NonTerminal("Expr"), Literal(";")],
        ),
        SeqRule("Var", [TWord(extra="_")]),
        SeqRule("Expr", [TWord(extra="_")]),
    ]
    return Grammar(rules, start="Program")


def source_schema() -> StructuringSchema:
    return StructuringSchema(
        source_grammar(), classes={"Function", "Call", "If", "Assign"}, name="Source"
    )


@dataclass
class SourceGenerator:
    """Seeded generator of synthetic programs.

    ``depth`` bounds ``if`` nesting; ``call_density`` controls how often a
    statement is a call (the query target).
    """

    functions: int = 40
    statements_per_body: int = 4
    depth: int = 2
    call_density: float = 0.5
    seed: int = 0

    def generate(self) -> str:
        rng = random.Random(self.seed)
        self._names = [
            f"{rng.choice(FUNCTION_STEMS)}_{rng.choice(NOUNS)}_{index}"
            for index in range(self.functions)
        ]
        return "\n".join(
            self._function(rng, name) for name in self._names
        ) + "\n"

    def _function(self, rng: random.Random, name: str) -> str:
        params = ", ".join(
            rng.sample(VARIABLES, k=rng.randint(0, 3))
        )
        body = self._body(rng, self.depth, indent="  ")
        return f"def {name}({params}) {{\n{body}\n}}"

    def _body(self, rng: random.Random, depth: int, indent: str) -> str:
        lines = []
        for _ in range(max(1, self.statements_per_body + rng.randint(-1, 1))):
            roll = rng.random()
            if roll < self.call_density:
                callee = rng.choice(self._names + FUNCTION_STEMS)
                args = ", ".join(rng.sample(VARIABLES, k=rng.randint(0, 2)))
                lines.append(f"{indent}call {callee}({args});")
            elif depth > 0 and roll < self.call_density + 0.2:
                condition = rng.choice(CONDITIONS)
                inner = self._body(rng, depth - 1, indent + "  ")
                lines.append(f"{indent}if {condition} {{\n{inner}\n{indent}}}")
            else:
                lines.append(
                    f"{indent}{rng.choice(VARIABLES)} = {rng.choice(VARIABLES)};"
                )
        return "\n".join(lines)


def generate_source(functions: int = 40, seed: int = 0, **knobs: object) -> str:
    return SourceGenerator(functions=functions, seed=seed, **knobs).generate()  # type: ignore[arg-type]


#: Functions that call ``alloc`` (at any nesting depth) — a star query.
CALLERS_OF_ALLOC = (
    'SELECT f FROM Function f WHERE f.*X.Callee = "alloc"'
)

#: Top-level calls only: through the concrete Body path.
TOP_LEVEL_CALLS = (
    'SELECT f.FuncName FROM Function f WHERE f.Body.Call.Callee = "alloc"'
)

#: Recursive-ish: functions whose name equals something they call.
SELF_CALLERS = "SELECT f FROM Function f WHERE f.FuncName = f.Body.Call.Callee"
