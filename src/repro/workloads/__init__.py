"""Workloads: grammars, structuring schemas, and synthetic generators.

Three file families exercise the system:

- :mod:`repro.workloads.bibtex` — the paper's running example: BibTeX
  bibliographies with authors/editors ambiguity (Figure 1, Sections 2–7);
- :mod:`repro.workloads.logs` — structured log files (one of the paper's
  motivating semi-structured sources);
- :mod:`repro.workloads.sgml` — SGML-like documents with *self-nested*
  sections, giving a cyclic RIG (closure queries, Section 5.3);
- :mod:`repro.workloads.source` — programs (the Hy+ software-engineering
  application): disjunctive statements, nested blocks, call-site queries.

All generators are seeded and deterministic so benchmarks are repeatable.
"""

from repro.workloads.bibtex import bibtex_schema, generate_bibtex, BibtexGenerator
from repro.workloads.logs import log_schema, generate_log, LogGenerator
from repro.workloads.sgml import sgml_schema, generate_sgml, SgmlGenerator
from repro.workloads.source import source_schema, generate_source, SourceGenerator

__all__ = [
    "bibtex_schema",
    "generate_bibtex",
    "BibtexGenerator",
    "log_schema",
    "generate_log",
    "LogGenerator",
    "sgml_schema",
    "generate_sgml",
    "SgmlGenerator",
    "source_schema",
    "generate_source",
    "SourceGenerator",
]
