"""The SGML-like document workload: self-nested sections.

Documents contain sections, sections contain paragraphs and *sub-sections*
— so the derived RIG is cyclic (``Section -> Subsections -> Section``).
This is the workload for Section 5.3's regular-path/closure discussion
("find every section, at any nesting depth, containing w" is one ``⊃``) and
for exercising the optimizer's cycle-safe preconditions.

Concrete syntax::

    <doc> <t>Storage engine</t>
      <sec> <t>Overview</t>
        <p>words ...</p>
        <sec> <t>Compaction</t> <p>words ...</p> </sec>
      </sec>
    </doc>
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    SeqRule,
    StarRule,
    TUntil,
)
from repro.schema.structuring import StructuringSchema

TITLE_WORDS = [
    "Storage", "Engine", "Overview", "Compaction", "Recovery", "Indexing",
    "Regions", "Queries", "Planning", "Schemas", "Parsing", "Evaluation",
]

BODY_WORDS = [
    "region", "index", "query", "grammar", "schema", "database", "file",
    "text", "word", "inclusion", "optimization", "candidate", "parse",
    "layer", "nesting", "algebra", "selection", "projection",
]


def sgml_grammar() -> Grammar:
    rules = [
        StarRule("Collection", NonTerminal("Document")),
        SeqRule(
            "Document",
            [
                Literal("<doc>"),
                NonTerminal("Title"),
                NonTerminal("Sections"),
                Literal("</doc>"),
            ],
        ),
        SeqRule("Title", [Literal("<t>"), NonTerminal("TitleText"), Literal("</t>")]),
        SeqRule("TitleText", [TUntil("</t>")]),
        StarRule("Sections", NonTerminal("Section")),
        SeqRule(
            "Section",
            [
                Literal("<sec>"),
                NonTerminal("Title"),
                NonTerminal("Paragraphs"),
                NonTerminal("Subsections"),
                Literal("</sec>"),
            ],
        ),
        StarRule("Paragraphs", NonTerminal("Paragraph")),
        SeqRule("Paragraph", [Literal("<p>"), NonTerminal("ParaText"), Literal("</p>")]),
        SeqRule("ParaText", [TUntil("</p>")]),
        StarRule("Subsections", NonTerminal("Section")),
    ]
    return Grammar(rules, start="Collection")


def sgml_schema() -> StructuringSchema:
    return StructuringSchema(sgml_grammar(), classes={"Document"}, name="SGML")


@dataclass
class SgmlGenerator:
    """Seeded generator of nested documents.

    ``depth`` controls maximum section nesting; ``branching`` the number of
    sections per level.  Deep nesting is what makes closure queries and the
    layered ``⊃d`` program interesting.
    """

    documents: int = 20
    depth: int = 3
    branching: int = 2
    paragraphs: int = 2
    paragraph_words: int = 12
    seed: int = 0

    def generate(self) -> str:
        rng = random.Random(self.seed)
        parts = [self._document(rng, number) for number in range(self.documents)]
        return "\n".join(parts) + "\n"

    def _document(self, rng: random.Random, number: int) -> str:
        title = " ".join(rng.sample(TITLE_WORDS, k=2))
        sections = "\n".join(
            self._section(rng, self.depth) for _ in range(self.branching)
        )
        return f"<doc> <t>{title}</t>\n{sections}\n</doc>"

    def _section(self, rng: random.Random, remaining_depth: int) -> str:
        title = " ".join(rng.sample(TITLE_WORDS, k=2))
        paragraphs = "\n".join(
            "<p>" + " ".join(rng.choice(BODY_WORDS) for _ in range(self.paragraph_words)) + "</p>"
            for _ in range(self.paragraphs)
        )
        inner = ""
        if remaining_depth > 1 and rng.random() < 0.8:
            inner = "\n".join(
                self._section(rng, remaining_depth - 1)
                for _ in range(rng.randint(1, self.branching))
            )
        body = f"<sec> <t>{title}</t>\n{paragraphs}"
        if inner:
            body += f"\n{inner}"
        return body + "\n</sec>"


def generate_sgml(documents: int = 20, seed: int = 0, **knobs: object) -> str:
    return SgmlGenerator(documents=documents, seed=seed, **knobs).generate()  # type: ignore[arg-type]


#: Any section (any depth) whose title mentions Compaction, via star path.
COMPACTION_QUERY = (
    'SELECT d FROM Document d WHERE d.*X.TitleText = "Compaction Recovery"'
)
