"""Translating database queries into region expressions.

Section 5.1: a path ``p`` in ``SELECT r FROM R r WHERE r.p = w`` matches a
path ``A1 -> A2 -> ... -> An`` in the RIG; the matching regions are selected
by ``A1 ⊃d A2 ⊃d ... ⊃d σw(An)``.  Under partial indexing (Section 6.1) the
same expression over the indexed non-terminals "retrieves a set of candidate
regions, that is a superset of the regions required by the query", and
Section 6.3 gives the condition under which the candidates are exact.

The translator works in three stages:

1. **Resolve** the query path over the *attribute RIG* — the full RIG with
   transparent (unit-rule) non-terminals contracted away, so its edges are
   exactly the attribute steps visible in the database image.  Star
   variables become *loose* joints; plain variables enumerate successor
   branches (consistently per variable name).
2. **Project** each resolved node path onto the indexed non-terminals,
   preferring a scoped index (``Name@Authors``) when its scope appears
   earlier in the path.  Tight gaps become ``⊃d``, gaps crossing a loose
   joint become ``⊃`` (Section 5.3: "simple inclusion may be applicable
   instead of direct inclusion").
3. **Assess exactness** per gap: the gap is exact iff every alternative
   full-RIG path between its endpoints (through unindexed interiors, and
   realisable under the scoped index in use) matches the queried attribute
   pattern, and no unindexed cycle makes further alternatives possible.

Conditions combine structurally: ``AND -> ∩``, ``OR -> ∪``, ``NOT`` of an
exact translation -> set difference from the source extent; ``NOT`` of an
approximate translation must widen to all source regions (subtracting a
superset would *under*-approximate).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.algebra.ast import (
    DIRECTLY_INCLUDED,
    DIRECTLY_INCLUDING,
    INCLUDED,
    INCLUDING,
    Inclusion,
    Name,
    RegionExpr,
    Select,
    SetOp,
)
from repro.db.query import (
    And,
    Attr,
    Comparison,
    Condition,
    Not,
    Or,
    PathComparison,
    PathExpr,
    Query,
    SeqVars,
    StarVar,
    TrueCondition,
)
from repro.errors import TranslationError
from repro.index.config import IndexConfig, ScopedRegionSpec
from repro.rig.derive import derive_full_rig, derive_partial_rig
from repro.rig.graph import RegionInclusionGraph
from repro.rig.paths import reach_plus
from repro.schema.pushdown import PathTrie
from repro.schema.structuring import StructuringSchema
from repro.schema.types import AtomicTypeDesc
from repro.text.tokenizer import tokenize_words


@dataclass(frozen=True)
class ResolvedPath:
    """One assignment of a query path to attribute-RIG nodes.

    ``nodes[0]`` is the source class; ``loose_after[i]`` marks a star gap
    between ``nodes[i]`` and ``nodes[i+1]``.  ``trailing_star`` marks a path
    ending in a star variable (``r.*X = "w"``)."""

    nodes: tuple[str, ...]
    loose_after: tuple[bool, ...]
    bindings: tuple[tuple[str, str], ...] = ()
    trailing_star: bool = False


@dataclass
class TranslatedCondition:
    """A condition's region-level translation.

    ``expression`` evaluates to a set of source-class regions that is a
    superset of (``exact=False``) or exactly (``exact=True``) the regions of
    qualifying objects.  ``expression=None`` means the index gives no
    narrowing at all (planner falls back to a full scan); ``never=True``
    means the condition is statically unsatisfiable.
    """

    expression: RegionExpr | None
    exact: bool
    never: bool = False
    variables: frozenset[str] = frozenset()
    notes: list[str] = field(default_factory=list)


class Translator:
    """Query -> region expression, for one schema + index configuration."""

    def __init__(
        self,
        schema: StructuringSchema,
        config: IndexConfig,
        has_word_index: bool | None = None,
    ) -> None:
        self._schema = schema
        self._config = config
        grammar = schema.grammar
        self._full_rig = derive_full_rig(grammar, include_root=True)
        transparent = schema.transparent_nonterminals()
        self._attr_rig = derive_partial_rig(
            grammar, set(grammar.nonterminals) - transparent
        )
        self._indexed = config.indexed_names(grammar.nonterminals, grammar.start)
        self._partial_rig = derive_partial_rig(grammar, self._indexed)
        self._scoped: tuple[ScopedRegionSpec, ...] = config.scoped
        self._has_word_index = (
            config.word_index if has_word_index is None else has_word_index
        )
        self._atomic = {
            nonterminal
            for nonterminal, description in schema.describe_types().items()
            if isinstance(description, AtomicTypeDesc)
        }

    # -- public API -------------------------------------------------------------

    @property
    def indexed_names(self) -> frozenset[str]:
        return self._indexed

    @property
    def attribute_rig(self) -> RegionInclusionGraph:
        return self._attr_rig

    @property
    def partial_rig(self) -> RegionInclusionGraph:
        return self._partial_rig

    def effective_rig(self) -> RegionInclusionGraph:
        """The partial RIG extended with scoped-index nodes (a scoped node
        copies its source's edges — a sound over-approximation, since scoped
        instances are subsets of their source's)."""
        graph = RegionInclusionGraph(
            nodes=self._partial_rig.nodes, edges=self._partial_rig.edges
        )
        for source, target in self._partial_rig.coincident_edges:
            graph.mark_coincident(source, target)
        for spec in self._scoped:
            graph.add_node(spec.name)
            if spec.source in self._partial_rig.nodes:
                for target in self._partial_rig.successors(spec.source):
                    graph.add_edge(spec.name, target)
                for origin in self._partial_rig.predecessors(spec.source):
                    graph.add_edge(origin, spec.name)
            else:
                # The underlying source is not itself indexed: connect the
                # scoped node by contraction through unindexed names.
                extended = derive_partial_rig(
                    self._schema.grammar, set(self._indexed) | {spec.source}
                )
                for target in extended.successors(spec.source):
                    graph.add_edge(spec.name, target)
                for origin in extended.predecessors(spec.source):
                    graph.add_edge(origin, spec.name)
        return graph

    def translate_query(self, query: Query) -> TranslatedCondition:
        """Translate a single-source query's WHERE clause, anchored at its
        source class."""
        if query.source_class not in self._indexed:
            return TranslatedCondition(
                expression=None,
                exact=False,
                notes=[f"source class {query.source_class!r} is not indexed"],
            )
        return self._translate_condition(query.where, query.source_class)

    def translate_condition_for(self, condition: Condition, class_name: str) -> TranslatedCondition:
        """Translate one condition anchored at a class (multi-variable
        planning translates each variable's conjuncts separately)."""
        if class_name not in self._indexed:
            return TranslatedCondition(
                expression=None,
                exact=False,
                notes=[f"class {class_name!r} is not indexed"],
            )
        return self._translate_condition(condition, class_name)

    def needed_paths(self, query: Query, var: str | None = None) -> PathTrie:
        """The push-down trie of attributes the query touches.

        ``var`` restricts to one range variable's paths (multi-variable
        execution builds one trie per variable).
        """
        paths: list[list[str | None]] = []
        for path in list(query.outputs) + _condition_paths(query.where):
            if var is not None and path.var != var:
                continue
            steps: list[str | None] = []
            for step in path.steps:
                if isinstance(step, Attr):
                    steps.append(step.name)
                else:
                    steps.append(None)
                    break
            paths.append(steps)
        return PathTrie.from_paths(paths)

    # -- condition translation -----------------------------------------------------

    def _translate_condition(self, condition: Condition, source: str) -> TranslatedCondition:
        anchor = Name(source)
        if isinstance(condition, TrueCondition):
            return TranslatedCondition(expression=anchor, exact=True)
        if isinstance(condition, Comparison):
            return self._translate_comparison(condition, source)
        if isinstance(condition, PathComparison):
            return self._translate_join_narrowing(condition, source)
        if isinstance(condition, And):
            left = self._translate_condition(condition.left, source)
            right = self._translate_condition(condition.right, source)
            return self._combine(left, right, "intersect", source)
        if isinstance(condition, Or):
            left = self._translate_condition(condition.left, source)
            right = self._translate_condition(condition.right, source)
            return self._combine(left, right, "union", source)
        if isinstance(condition, Not):
            inner = self._translate_condition(condition.child, source)
            if inner.never:
                return TranslatedCondition(expression=anchor, exact=True)
            if inner.exact and inner.expression is not None:
                return TranslatedCondition(
                    expression=SetOp("difference", anchor, inner.expression),
                    exact=True,
                    variables=inner.variables,
                )
            return TranslatedCondition(
                expression=anchor,
                exact=False,
                variables=inner.variables,
                notes=inner.notes + ["NOT over an approximate translation widens to all regions"],
            )
        raise TranslationError(f"cannot translate condition {condition!r}")

    def _combine(
        self,
        left: TranslatedCondition,
        right: TranslatedCondition,
        kind: str,
        source: str,
    ) -> TranslatedCondition:
        if kind == "intersect":
            if left.never or right.never:
                return TranslatedCondition(
                    expression=None, exact=True, never=True, notes=["statically empty"]
                )
        else:
            if left.never:
                return right
            if right.never:
                return left
        if left.expression is None or right.expression is None:
            if kind == "intersect":
                survivor = left if left.expression is not None else right
                if survivor.expression is not None:
                    return replace(survivor, exact=False)
            return TranslatedCondition(
                expression=None,
                exact=False,
                variables=left.variables | right.variables,
                notes=left.notes + right.notes,
            )
        shared = left.variables & right.variables
        exact = left.exact and right.exact and not shared
        notes = left.notes + right.notes
        if shared:
            notes.append(
                f"variables {sorted(shared)} shared across conditions: "
                "consistency is checked in the filtering phase"
            )
        return TranslatedCondition(
            expression=SetOp(kind, left.expression, right.expression),
            exact=exact,
            variables=left.variables | right.variables,
            notes=notes,
        )

    def _translate_comparison(self, condition: Comparison, source: str) -> TranslatedCondition:
        if condition.op == "<>":
            return TranslatedCondition(
                expression=Name(source),
                exact=False,
                variables=frozenset(condition.path.variable_names()),
                notes=["'<>' comparisons are checked in the filtering phase"],
            )
        if condition.op == "like":
            translated = self.translate_path(
                source, condition.path, word=condition.prefix, prefix=True
            )
            if translated.exact:
                # Lexical-prefix narrowing is always verified by filtering
                # (a multi-word value can start with the prefix without any
                # single token doing so exclusively).
                translated = replace(
                    translated,
                    exact=False,
                    notes=translated.notes
                    + ["LIKE narrows via word-prefix containment"],
                )
            return translated
        return self.translate_path(
            source, condition.path, word=condition.literal
        )

    def _translate_join_narrowing(
        self, condition: PathComparison, source: str
    ) -> TranslatedCondition:
        """Structural narrowing for a join: sources that contain endpoint
        regions of both paths (the value comparison happens later)."""
        left = self.translate_path(source, condition.left, word=None)
        right = self.translate_path(source, condition.right, word=None)
        variables = frozenset(condition.left.variable_names()) | frozenset(
            condition.right.variable_names()
        )
        if left.expression is None or right.expression is None:
            return TranslatedCondition(
                expression=None, exact=False, variables=variables,
                notes=left.notes + right.notes,
            )
        expression = SetOp("intersect", left.expression, right.expression)
        return TranslatedCondition(
            expression=expression,
            exact=False,
            variables=variables,
            notes=left.notes + right.notes + ["join comparison requires value filtering"],
        )

    # -- path translation --------------------------------------------------------------

    def translate_path(
        self, source: str, path: PathExpr, word: str | None, prefix: bool = False
    ) -> TranslatedCondition:
        """Translate one ``r.p [= w]`` into a source-region expression.

        ``prefix=True`` selects by word prefix (LIKE): always a containment
        narrowing, verified in the filtering phase.
        """
        variables = frozenset(path.variable_names())
        try:
            resolved_paths = self._resolve(source, path)
        except TranslationError as error:
            return TranslatedCondition(
                expression=Name(source), exact=False, variables=variables,
                notes=[str(error)],
            )
        if not resolved_paths:
            # The path matches no attribute structure: no object can satisfy
            # an equality on it.
            return TranslatedCondition(
                expression=None, exact=True, never=word is not None,
                variables=variables,
                notes=[f"path {path.render()!r} matches no attribute path"],
            )
        star_repeats = _repeated_star_variables(path)
        branches: list[TranslatedCondition] = []
        for resolved in resolved_paths:
            branches.append(self._translate_resolved(source, resolved, word, prefix))
        expression: RegionExpr | None = None
        exact = all(branch.exact for branch in branches) and not star_repeats
        notes: list[str] = [note for branch in branches for note in branch.notes]
        if star_repeats:
            notes.append(
                f"star variables {sorted(star_repeats)} occur more than once: "
                "consistency is checked in the filtering phase"
            )
        for branch in branches:
            if branch.expression is None:
                continue
            expression = (
                branch.expression
                if expression is None
                else SetOp("union", expression, branch.expression)
            )
        if expression is None:
            return TranslatedCondition(
                expression=None, exact=True, never=word is not None,
                variables=variables, notes=notes,
            )
        if word is not None:
            # Value comparisons on non-atomic endpoints are never true.
            satisfiable = any(
                resolved.trailing_star or resolved.nodes[-1] in self._atomic
                for resolved in resolved_paths
            )
            if not satisfiable:
                endpoint_types = {resolved.nodes[-1] for resolved in resolved_paths}
                return TranslatedCondition(
                    expression=None, exact=True, never=True, variables=variables,
                    notes=[f"endpoint(s) {sorted(endpoint_types)} are not atomic"],
                )
        return TranslatedCondition(
            expression=expression, exact=exact, variables=variables, notes=notes
        )

    def endpoint_chain(
        self, source: str, path: PathExpr
    ) -> tuple[RegionExpr, bool] | None:
        """The projection chain locating a path's *endpoint* regions
        (Section 5.2: ``Last_Name ⊂d Name ⊂d Authors ⊂d Reference``).

        Returns ``(expression, exact)``; ``exact`` means each located region
        is precisely one attribute value's span and the path context is
        unambiguous, so region text can stand in for the value in a join.
        ``None`` when the index cannot anchor the chain.
        """
        try:
            resolved_paths = self._resolve(source, path)
        except TranslationError:
            return None
        if not resolved_paths:
            return None
        expression: RegionExpr | None = None
        exact = True
        for resolved in resolved_paths:
            kept: list[tuple[int, str]] = []
            for position in range(len(resolved.nodes)):
                index_name = self._index_name_for(resolved, position)
                if index_name is not None:
                    kept.append((position, index_name))
            if not kept or kept[0][0] != 0:
                return None
            last_position = kept[-1][0]
            if last_position != len(resolved.nodes) - 1 or resolved.trailing_star:
                # The endpoint attribute itself is not indexed: the located
                # regions would hold the wrong text for a value join.
                return None
            if len(kept) < 2:
                return None  # no region below the source to locate
            if resolved.nodes[-1] not in self._atomic:
                exact = False
            branch: RegionExpr = Name(kept[0][1])
            for index in range(1, len(kept)):
                upper_position, _ = kept[index - 1]
                lower_position, lower_name = kept[index]
                loose = any(resolved.loose_after[upper_position:lower_position])
                op = INCLUDED if loose else DIRECTLY_INCLUDED
                if not self._gap_is_exact(resolved, upper_position, lower_position):
                    exact = False
                branch = Inclusion(op=op, left=Name(lower_name), right=branch)
            expression = (
                branch if expression is None else SetOp("union", expression, branch)
            )
        if expression is None:
            return None
        return expression, exact

    # -- stage 1: resolution over the attribute RIG ----------------------------------------

    def _resolve(self, source: str, path: PathExpr) -> list[ResolvedPath]:
        if source not in self._attr_rig.nodes:
            raise TranslationError(f"class {source!r} is not a grammar non-terminal")
        results: list[ResolvedPath] = []

        def walk(
            node: str,
            steps: tuple,
            nodes: tuple[str, ...],
            loose: tuple[bool, ...],
            bindings: dict[str, str],
            pending_loose: bool,
        ) -> None:
            if not steps:
                results.append(
                    ResolvedPath(
                        nodes=nodes,
                        loose_after=loose,
                        bindings=tuple(sorted(bindings.items())),
                        trailing_star=pending_loose,
                    )
                )
                return
            step, rest = steps[0], steps[1:]
            if isinstance(step, StarVar):
                walk(node, rest, nodes, loose, bindings, True)
                return
            if isinstance(step, Attr):
                if pending_loose:
                    if step.name in reach_plus(self._attr_rig, node):
                        walk(
                            step.name,
                            rest,
                            nodes + (step.name,),
                            loose + (True,),
                            bindings,
                            False,
                        )
                    return
                if self._attr_rig.has_edge(node, step.name):
                    walk(
                        step.name,
                        rest,
                        nodes + (step.name,),
                        loose + (False,),
                        bindings,
                        False,
                    )
                return
            if isinstance(step, SeqVars):
                if pending_loose:
                    raise TranslationError(
                        "a star variable directly followed by a plain variable "
                        "is not supported"
                    )
                bound = bindings.get(step.name)
                successors = (
                    [bound]
                    if bound is not None
                    else sorted(self._attr_rig.successors(node))
                )
                for successor in successors:
                    if not self._attr_rig.has_edge(node, successor):
                        continue
                    new_bindings = dict(bindings)
                    new_bindings[step.name] = successor
                    walk(
                        successor,
                        rest,
                        nodes + (successor,),
                        loose + (False,),
                        new_bindings,
                        False,
                    )
                return
            raise TranslationError(f"unknown path step {step!r}")

        walk(source, tuple(path.steps), (source,), (), {}, False)
        return results

    # -- stage 2+3: projection to indexed names with exactness --------------------------------

    def _translate_resolved(
        self, source: str, resolved: ResolvedPath, word: str | None, prefix: bool = False
    ) -> TranslatedCondition:
        kept: list[tuple[int, str]] = []  # (position in nodes, index name)
        for position, node in enumerate(resolved.nodes):
            index_name = self._index_name_for(resolved, position)
            if index_name is not None:
                kept.append((position, index_name))
        if not kept or kept[0][0] != 0:
            return TranslatedCondition(
                expression=Name(source), exact=False,
                notes=[f"source {source!r} not indexed"],
            )
        notes: list[str] = []
        exact = True

        # Build the chain bottom-up.
        last_position, last_name = kept[-1]
        endpoint_indexed = last_position == len(resolved.nodes) - 1
        select_word = word
        select_mode = "exact"
        if select_word is not None and not self._has_word_index:
            select_word = None
            exact = False
            notes.append("no word index: selection deferred to filtering phase")
        if select_word is not None and (not endpoint_indexed or resolved.trailing_star):
            select_mode = "contains"
            exact = False
            if resolved.trailing_star:
                notes.append("trailing star variable: containment selection")
            else:
                dropped = resolved.nodes[last_position + 1 :]
                notes.append(
                    f"endpoint attributes {list(dropped)} not indexed: "
                    "containment selection on the deepest indexed region"
                )
        tail: RegionExpr = Name(last_name)
        if select_word is not None and prefix:
            prefix_tokens = tokenize_words(select_word)
            if len(prefix_tokens) == 1 and prefix_tokens[0] == select_word:
                tail = Select(child=tail, word=select_word, mode="prefix_contains")
            else:
                exact = False
                notes.append(
                    f"LIKE prefix {select_word!r} is not a single word stem: "
                    "no index narrowing"
                )
        elif select_word is not None:
            literal_tokens = tokenize_words(select_word)
            if not literal_tokens:
                exact = False
                notes.append(
                    f"constant {select_word!r} contains no indexable word: "
                    "selection deferred to filtering phase"
                )
            elif len(literal_tokens) > 1 or literal_tokens[0] != select_word:
                # Multi-word or punctuated constants: conjunctive word
                # containment, verified in the filtering phase.
                for token in literal_tokens:
                    tail = Select(child=tail, word=token, mode="contains")
                if exact:
                    exact = False
                    notes.append(
                        f"constant {select_word!r} is not a single word: "
                        "containment selection"
                    )
            else:
                tail = Select(child=tail, word=select_word, mode=select_mode)
        elif word is not None:
            # No usable selection at all: structural narrowing only.
            exact = False

        expression = tail
        for pair_index in range(len(kept) - 2, -1, -1):
            upper_position, upper_name = kept[pair_index]
            lower_position, lower_name = kept[pair_index + 1]
            gap_loose = any(
                resolved.loose_after[upper_position:lower_position]
            )
            op = INCLUDING if gap_loose else DIRECTLY_INCLUDING
            gap_exact = self._gap_is_exact(resolved, upper_position, lower_position)
            if not gap_exact:
                exact = False
                notes.append(
                    f"gap {resolved.nodes[upper_position]!r} -> "
                    f"{resolved.nodes[lower_position]!r} is ambiguous under this index"
                )
            expression = Inclusion(op=op, left=Name(upper_name), right=expression)
        return TranslatedCondition(expression=expression, exact=exact, notes=notes)

    def _index_name_for(self, resolved: ResolvedPath, position: int) -> str | None:
        """The index name to use for a path node, or None if unindexed.

        Prefers a scoped index whose scope appears earlier in the path (an
        ancestor); otherwise the plain name when indexed."""
        node = resolved.nodes[position]
        ancestors = set(resolved.nodes[:position])
        for spec in self._scoped:
            if spec.source == node and spec.scope in ancestors:
                return spec.name
        if node in self._indexed:
            return node
        return None

    def _gap_is_exact(
        self, resolved: ResolvedPath, upper_position: int, lower_position: int
    ) -> bool:
        """Section 6.3, refined: the gap is exact iff every alternative
        attribute path between its endpoints (realisable under the index in
        use) matches the queried pattern."""
        upper = resolved.nodes[upper_position]
        lower = resolved.nodes[lower_position]
        tokens: list[str | None] = []
        for position in range(upper_position, lower_position):
            if resolved.loose_after[position]:
                tokens.append(None)  # wildcard joint
            if position + 1 < lower_position:
                tokens.append(resolved.nodes[position + 1])
        if tokens and all(token is None for token in tokens):
            return True  # "any path is acceptable" (Section 5.3)
        scoped_spec = self._scoped_spec_in_use(resolved, lower_position)
        alternatives = self._alternative_interiors(upper, lower, scoped_spec, resolved)
        if alternatives is None:
            return False  # unindexed cycle: unbounded alternative walks
        for interior in alternatives:
            if not _matches_pattern(interior, tokens):
                return False
        return True

    def _scoped_spec_in_use(
        self, resolved: ResolvedPath, position: int
    ) -> ScopedRegionSpec | None:
        node = resolved.nodes[position]
        ancestors = set(resolved.nodes[:position])
        for spec in self._scoped:
            if spec.source == node and spec.scope in ancestors:
                return spec
        return None

    def _alternative_interiors(
        self,
        upper: str,
        lower: str,
        scoped_spec: ScopedRegionSpec | None,
        resolved: ResolvedPath,
    ) -> list[tuple[str, ...]] | None:
        """All interior attribute sequences of paths ``upper -> lower``
        through unindexed interiors; ``None`` when a cycle makes them
        unbounded."""
        interiors: list[tuple[str, ...]] = []
        unbounded = False

        def walk(node: str, interior: tuple[str, ...], visited: frozenset[str]) -> None:
            nonlocal unbounded
            for successor in sorted(self._attr_rig.successors(node)):
                if successor == lower:
                    interiors.append(interior)
                    continue
                if self._is_plain_indexed(successor):
                    continue
                if successor in visited:
                    unbounded = True
                    continue
                walk(successor, interior + (successor,), visited | {successor})

        walk(upper, (), frozenset({upper}))
        if unbounded:
            return None
        if scoped_spec is not None:
            # Only alternatives realisable inside the scope survive: the
            # scope must be able to enclose the endpoint.  It encloses it
            # when it appears on the interior, equals/encloses `upper`
            # (an ancestor of upper reaches it), or when uncertain we keep
            # the alternative (conservative towards "inexact").
            scope = scoped_spec.scope
            upper_in_scope = upper == scope or upper in reach_plus(self._attr_rig, scope)
            if not upper_in_scope:
                interiors = [
                    interior for interior in interiors if scope in interior
                ]
        return interiors

    def _is_plain_indexed(self, node: str) -> bool:
        return node in self._indexed


def _matches_pattern(interior: tuple[str, ...], tokens: list[str | None]) -> bool:
    """Anchored glob match: ``None`` tokens match any (possibly empty)
    subsequence, names match one position."""
    memo: dict[tuple[int, int], bool] = {}

    def match(token_index: int, position: int) -> bool:
        key = (token_index, position)
        if key in memo:
            return memo[key]
        if token_index == len(tokens):
            result = position == len(interior)
        else:
            token = tokens[token_index]
            if token is None:
                result = any(
                    match(token_index + 1, next_position)
                    for next_position in range(position, len(interior) + 1)
                )
            else:
                result = (
                    position < len(interior)
                    and interior[position] == token
                    and match(token_index + 1, position + 1)
                )
        memo[key] = result
        return result

    return match(0, 0)


def _condition_paths(condition: Condition):
    from repro.db.query import iter_condition_paths

    return list(iter_condition_paths(condition))


def _repeated_star_variables(path: PathExpr) -> set[str]:
    seen: set[str] = set()
    repeated: set[str] = set()
    for step in path.steps:
        if isinstance(step, StarVar):
            if step.name in seen:
                repeated.add(step.name)
            seen.add(step.name)
    return repeated
