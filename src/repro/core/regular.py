"""Regular path expressions (Section 5.3, after GraphLog [Con89, CM90]).

"One could also go beyond first order queries, and use ... path regular
expressions.  These extend path expressions with the traditional regular
expression operators (in particular, the transitive closure operator).
Within the framework we describe here it is possible to evaluate paths with
a regular expression involving a transitive closure, with just an inclusion
expression."

Pattern syntax (anchored at a region name, XPath-flavoured)::

    Document.Sections.Section            concrete child steps
    Document.**.ParaText                 ** : any path (zero or more steps)
    Section.Section+.ParaText            +  : one or more nested Sections
    Document.Section*.Title              *  : zero or more nested Sections

Compilation (:func:`compile_regular_path`) produces a union of inclusion
chains: concrete adjacent steps become direct inclusion ``⊃d``, any step
after a closure becomes simple inclusion ``⊃`` — the paper's trick.  The
result can then be run through the Section 3.2 optimizer like any other
inclusion expression.

Semantics note: closures compile to *descendant* (containment) semantics.
``X+`` requires an ``X`` region on the way down but does not forbid other
region types interleaving below it; this is exact when the RIG confines the
intermediates (self-nesting grammars) and an over-approximation otherwise —
matching the containment-based evaluation the paper describes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.algebra.ast import (
    DIRECTLY_INCLUDING,
    INCLUDING,
    Inclusion,
    Name,
    RegionExpr,
    Select,
    SetOp,
)
from repro.algebra.region import RegionSet
from repro.core.optimizer import optimize
from repro.errors import QuerySyntaxError
from repro.index.engine import IndexEngine
from repro.rig.graph import RegionInclusionGraph


@dataclass(frozen=True)
class Step:
    """A concrete region-name step."""

    name: str


@dataclass(frozen=True)
class Plus:
    """``name+``: one or more nested occurrences."""

    name: str


@dataclass(frozen=True)
class Star:
    """``name*``: zero or more nested occurrences."""

    name: str


@dataclass(frozen=True)
class AnyPath:
    """``**``: any attribute path, possibly empty."""


Atom = Union[Step, Plus, Star, AnyPath]

_ATOM_RE = re.compile(r"^(?:(?P<any>\*\*)|(?P<name>[A-Za-z_][A-Za-z0-9_@]*)(?P<mod>[+*]?))$")


def parse_regular_path(pattern: str) -> tuple[str, tuple[Atom, ...]]:
    """Parse ``Anchor.atom.atom...`` into an anchor name plus atoms."""
    parts = [part.strip() for part in pattern.split(".")]
    if len(parts) < 2:
        raise QuerySyntaxError(
            f"regular path needs an anchor and at least one step: {pattern!r}"
        )
    anchor_match = _ATOM_RE.match(parts[0])
    if anchor_match is None or anchor_match.group("any") or anchor_match.group("mod"):
        raise QuerySyntaxError(f"anchor must be a plain name: {parts[0]!r}")
    atoms: list[Atom] = []
    for part in parts[1:]:
        match = _ATOM_RE.match(part)
        if match is None:
            raise QuerySyntaxError(f"bad regular-path atom {part!r} in {pattern!r}")
        if match.group("any"):
            atoms.append(AnyPath())
        elif match.group("mod") == "+":
            atoms.append(Plus(match.group("name")))
        elif match.group("mod") == "*":
            atoms.append(Star(match.group("name")))
        else:
            atoms.append(Step(match.group("name")))
    return parts[0], tuple(atoms)


def compile_regular_path(
    anchor: str,
    atoms: tuple[Atom, ...],
    word: str | None = None,
    mode: str = "exact",
) -> RegionExpr:
    """Compile to a union of inclusion chains returning *anchor* regions."""
    # Each branch is a list of (name, loose-gap-before) pairs.
    branches: list[list[tuple[str, bool]]] = [[]]
    loose_flags: list[bool] = [False]  # parallel to branches: pending looseness

    def advanced(atom: Atom) -> None:
        nonlocal branches, loose_flags
        new_branches: list[list[tuple[str, bool]]] = []
        new_flags: list[bool] = []
        for branch, loose in zip(branches, loose_flags):
            if isinstance(atom, Step):
                new_branches.append(branch + [(atom.name, loose)])
                new_flags.append(False)
            elif isinstance(atom, Plus):
                new_branches.append(branch + [(atom.name, loose)])
                new_flags.append(True)
            elif isinstance(atom, Star):
                # Zero occurrences: unchanged; one-or-more: like Plus.
                new_branches.append(list(branch))
                new_flags.append(loose)
                new_branches.append(branch + [(atom.name, loose)])
                new_flags.append(True)
            else:  # AnyPath
                new_branches.append(list(branch))
                new_flags.append(True)
        branches, loose_flags = new_branches, new_flags

    for atom in atoms:
        advanced(atom)

    expressions: list[RegionExpr] = []
    seen: set[str] = set()
    for branch in branches:
        if not branch:
            continue  # a pattern of closures only: no constraint beyond anchor
        tail_name, _ = branch[-1]
        tail: RegionExpr = Name(tail_name)
        if word is not None:
            tail = Select(child=tail, word=word, mode=mode)
        expression = tail
        for index in range(len(branch) - 1, 0, -1):
            _, loose = branch[index]
            op = INCLUDING if loose else DIRECTLY_INCLUDING
            expression = Inclusion(op=op, left=Name(branch[index - 1][0]), right=expression)
        first_loose = branch[0][1]
        op = INCLUDING if first_loose else DIRECTLY_INCLUDING
        expression = Inclusion(op=op, left=Name(anchor), right=expression)
        key = str(expression)
        if key not in seen:
            seen.add(key)
            expressions.append(expression)
    if not expressions:
        return Name(anchor)
    combined = expressions[0]
    for expression in expressions[1:]:
        combined = SetOp("union", combined, expression)
    return combined


def evaluate_regular_path(
    engine: IndexEngine,
    pattern: str,
    word: str | None = None,
    mode: str = "exact",
    rig: RegionInclusionGraph | None = None,
) -> RegionSet:
    """Parse, compile, optionally optimize, and evaluate a regular path.

    Returns the anchor regions matched.  With ``rig`` given, the compiled
    expression is first optimized (Section 3.2) against it.
    """
    anchor, atoms = parse_regular_path(pattern)
    expression = compile_regular_path(anchor, atoms, word=word, mode=mode)
    if rig is not None:
        expression = optimize(expression, rig)
    return engine.evaluate(expression)
