"""Inclusion-chain view of region expressions.

The optimization algorithm of Section 3.2 operates on *inclusion
expressions*: right-grouped chains ``R1 o1 (R2 o2 (... on-1 Rn))`` whose
operators all come from one family (``⊃``/``⊃d`` for selections,
``⊂``/``⊂d`` for projections), where any link may carry a word selection.
:func:`extract_chain` recognises that shape inside a general expression;
:func:`chain_to_expression` rebuilds the AST.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.algebra.ast import (
    BACKWARD_OPS,
    FORWARD_OPS,
    Inclusion,
    Name,
    RegionExpr,
    Select,
)


@dataclass(frozen=True)
class Link:
    """One chain element: a region name plus an optional selection."""

    region: str
    word: str | None = None
    mode: str = "exact"

    @property
    def has_select(self) -> bool:
        return self.word is not None

    def to_expression(self) -> RegionExpr:
        node: RegionExpr = Name(self.region)
        if self.word is not None:
            node = Select(child=node, word=self.word, mode=self.mode)
        return node


@dataclass(frozen=True)
class ChainView:
    """A right-grouped inclusion chain: ``links[0] ops[0] (links[1] ...)``.

    ``forward`` chains use ``>``/``>d`` (the output is the outermost,
    leftmost region set); backward chains use ``<``/``<d`` (the output is
    the innermost, leftmost region set).
    """

    links: tuple[Link, ...]
    ops: tuple[str, ...]

    def __post_init__(self) -> None:
        assert len(self.ops) == len(self.links) - 1

    @property
    def forward(self) -> bool:
        return not self.ops or self.ops[0] in FORWARD_OPS

    def with_op(self, index: int, op: str) -> "ChainView":
        ops = list(self.ops)
        ops[index] = op
        return replace(self, ops=tuple(ops))

    def without_link(self, index: int) -> "ChainView":
        """Drop an interior link, keeping the outer operator pair's left op.

        Shortening ``Ri > Rj > Rk`` to ``Ri > Rk`` keeps the left ``>``.
        """
        assert 0 < index < len(self.links) - 1
        links = self.links[:index] + self.links[index + 1 :]
        ops = self.ops[:index] + self.ops[index + 1 :]
        return ChainView(links=links, ops=ops)

    def region_names(self) -> list[str]:
        return [link.region for link in self.links]


def _link_of(node: RegionExpr) -> Link | None:
    """A leaf link: a name, optionally wrapped in one selection."""
    if isinstance(node, Name):
        return Link(region=node.region_name)
    if isinstance(node, Select) and isinstance(node.child, Name):
        return Link(region=node.child.region_name, word=node.word, mode=node.mode)
    return None


def extract_chain(expression: RegionExpr) -> ChainView | None:
    """Recognise a right-grouped single-family inclusion chain.

    Returns ``None`` for anything else (set operations, mixed families,
    non-leaf left operands, left-grouped chains) — the optimizer then simply
    recurses into subexpressions.
    """
    links: list[Link] = []
    ops: list[str] = []
    node = expression
    family: tuple[str, ...] | None = None
    while isinstance(node, Inclusion):
        if family is None:
            family = FORWARD_OPS if node.op in FORWARD_OPS else BACKWARD_OPS
        if node.op not in family:
            return None
        left_link = _link_of(node.left)
        if left_link is None:
            return None
        links.append(left_link)
        ops.append(node.op)
        node = node.right
    last_link = _link_of(node)
    if last_link is None:
        return None
    links.append(last_link)
    if len(links) < 2:
        return None
    return ChainView(links=tuple(links), ops=tuple(ops))


def chain_to_expression(chain: ChainView) -> RegionExpr:
    """Rebuild the right-grouped AST for a chain."""
    node = chain.links[-1].to_expression()
    for link, op in zip(reversed(chain.links[:-1]), reversed(chain.ops)):
        node = Inclusion(op=op, left=link.to_expression(), right=node)
    return node
