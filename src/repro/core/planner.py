"""Query planning: choosing an execution strategy.

Strategies, in order of preference:

- ``empty``            — the translated expression is trivially empty
                         (Proposition 3.3) or statically unsatisfiable;
- ``index-exact``      — the optimized expression computes exactly the
                         qualifying source regions (full indexing, or partial
                         indexing meeting Section 6.3's condition); only the
                         answer regions are parsed;
- ``index-join``       — a path-to-path comparison evaluated by locating
                         both attribute-region sets through the index and
                         joining their *contents* (Section 5.2);
- ``index-candidates`` — the expression computes a candidate superset; the
                         candidates are parsed with the query pushed into
                         instantiation, then filtered (Section 6.2);
- ``full-scan``        — the baseline: parse the whole corpus and evaluate
                         in the database.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.algebra.ast import RegionExpr
from repro.cache import CacheStats
from repro.core.optimizer import OptimizationTrace, optimize
from repro.core.translate import TranslatedCondition, Translator
from repro.core.triviality import is_trivially_empty
from repro.db.parser import parse_query
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.db.query import (
    PathComparison,
    Query,
    condition_range_variables,
    conjoin,
    split_conjuncts,
)
from repro.rig.graph import RegionInclusionGraph

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.feedback.calibrate import CalibratedCostModel


@dataclass
class Plan:
    """An executable plan for one query."""

    strategy: str
    query: Query
    translated: TranslatedCondition | None = None
    raw_expression: RegionExpr | None = None
    optimized_expression: RegionExpr | None = None
    trace: OptimizationTrace = field(default_factory=OptimizationTrace)
    exact: bool = False
    join_condition: PathComparison | None = None
    #: Multi-variable plans: one structural narrowing expression per range
    #: variable (``None`` entry = no narrowing, take the whole extent).
    per_variable: dict[str, RegionExpr | None] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Calibrated estimated output cardinality of ``optimized_expression``
    #: (``None`` when planned without a cost model).
    estimated_rows: float | None = None
    #: Multi-variable plans: estimated candidate cardinality per variable.
    variable_estimates: dict[str, float] = field(default_factory=dict)
    #: Multi-variable plans under calibration: the variables ordered by
    #: ascending estimated cardinality.  The executor *schedules* narrowing
    #: and parsing in this order (cheap extents first, so an empty one
    #: short-circuits the join); row output order is unaffected — the
    #: database join always iterates in ``query.sources`` order.
    join_order: list[str] = field(default_factory=list)


class Planner:
    """Turns queries into plans for one translator + RIG.

    ``optimize_expressions=False`` disables the Section 3.2 rewriting —
    translated expressions run as-is.  This exists purely for ablation
    measurements (benchmark E10); answers are unaffected (Theorem 3.6's
    equivalence), only costs change.
    """

    def __init__(
        self,
        translator: Translator,
        optimize_expressions: bool = True,
        plan_cache_size: int = 0,
        cache_stats: CacheStats | None = None,
        cost_model: "CalibratedCostModel | None" = None,
    ) -> None:
        self._translator = translator
        self._rig = translator.effective_rig()
        self._optimize = optimize_expressions
        #: LRU of plans for *textual* queries (keyed by the raw query text).
        #: Plans are read-only to the executor, so one plan object can serve
        #: every repetition of the same query.  Size 0 disables the cache.
        #: Guarded by a lock: concurrent queries on one engine share it.
        self._plan_cache_size = plan_cache_size
        self._plan_cache: OrderedDict[str, Plan] = OrderedDict()
        self._plan_cache_lock = threading.Lock()
        self._cache_stats = cache_stats if cache_stats is not None else CacheStats()
        #: Optional feedback-calibrated cost model.  With no history for the
        #: corpus it is inert (:attr:`CalibratedCostModel.calibrated` is
        #: false), so cold planning matches the static rewrite ordering.
        self._cost_model = cost_model
        #: The calibration version the cached plans were chosen under; a
        #: material history change invalidates them (never serve a plan
        #: chosen under stale costs).
        self._calibration_version = (
            cost_model.history.version if cost_model is not None else 0
        )

    @property
    def translator(self) -> Translator:
        return self._translator

    @property
    def rig(self) -> RegionInclusionGraph:
        return self._rig

    def plan(
        self, query: Query | str, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> Plan:
        with tracer.span("plan") as plan_span:
            plan = self._plan_traced(query, tracer, plan_span)
            plan_span.annotate(strategy=plan.strategy)
        return plan

    def invalidate_plan_cache(self) -> int:
        """Drop every cached plan; returns how many were dropped."""
        with self._plan_cache_lock:
            dropped = len(self._plan_cache)
            self._plan_cache.clear()
        return dropped

    def _check_calibration_version(self) -> None:
        """Invalidate cached plans when the feedback history has moved
        materially since they were chosen (stale-cost protection)."""
        if self._cost_model is None:
            return
        current = self._cost_model.history.version
        with self._plan_cache_lock:
            if current != self._calibration_version:
                self._calibration_version = current
                self._plan_cache.clear()

    def _plan_traced(self, query: Query | str, tracer, plan_span) -> Plan:
        cache_key: str | None = None
        if isinstance(query, str):
            self._check_calibration_version()
            if self._plan_cache_size > 0:
                with self._plan_cache_lock:
                    cached = self._plan_cache.get(query)
                    if cached is not None:
                        self._plan_cache.move_to_end(query)
                        self._cache_stats.plan_hits += 1
                    else:
                        self._cache_stats.plan_misses += 1
                        cache_key = query
                if cached is not None:
                    plan_span.annotate(plan_cache="hit")
                    return cached
                plan_span.annotate(plan_cache="miss")
            with tracer.span("parse-query"):
                query = parse_query(query)
        plan = self._plan_parsed(query, tracer)
        if cache_key is not None:
            with self._plan_cache_lock:
                self._plan_cache[cache_key] = plan
                while len(self._plan_cache) > self._plan_cache_size:
                    self._plan_cache.popitem(last=False)
        return plan

    def _plan_parsed(
        self, query: Query, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> Plan:
        if not query.is_single_source():
            return self._plan_multi(query, tracer)
        with tracer.span("translate") as span:
            translated = self._translator.translate_query(query)
            span.annotate(exact=translated.exact, never=translated.never)
        if translated.never:
            return Plan(
                strategy="empty",
                query=query,
                translated=translated,
                exact=True,
                notes=translated.notes + ["statically unsatisfiable"],
            )
        if translated.expression is None:
            return Plan(
                strategy="full-scan",
                query=query,
                translated=translated,
                notes=translated.notes + ["no index support: scanning the corpus"],
            )
        trace = OptimizationTrace()
        if self._optimize:
            with tracer.span("optimize") as span:
                optimized = optimize(translated.expression, self._rig, trace, tracer)
                span.annotate(rewrites=trace.rewrite_count)
        else:
            optimized = translated.expression
        optimized, calibration_notes = self._calibrated_expression_choice(
            translated.expression, optimized
        )
        if is_trivially_empty(optimized, self._rig):
            return Plan(
                strategy="empty",
                query=query,
                translated=translated,
                raw_expression=translated.expression,
                optimized_expression=optimized,
                trace=trace,
                exact=True,
                notes=translated.notes
                + ["expression is trivially empty on every instance (Prop. 3.3)"],
            )
        estimated_rows = self._estimate(optimized)
        join = self._join_condition(query)
        if join is not None:
            return Plan(
                strategy="index-join",
                query=query,
                translated=translated,
                raw_expression=translated.expression,
                optimized_expression=optimized,
                trace=trace,
                exact=False,  # the executor refines this
                join_condition=join,
                notes=translated.notes + calibration_notes,
                estimated_rows=estimated_rows,
            )
        strategy = "index-exact" if translated.exact else "index-candidates"
        if strategy == "index-candidates":
            scan_note = self._calibrated_scan_choice(optimized, query.source_class)
            if scan_note is not None:
                return Plan(
                    strategy="full-scan",
                    query=query,
                    translated=translated,
                    raw_expression=translated.expression,
                    optimized_expression=optimized,
                    trace=trace,
                    notes=translated.notes + calibration_notes + [scan_note],
                    estimated_rows=estimated_rows,
                )
        return Plan(
            strategy=strategy,
            query=query,
            translated=translated,
            raw_expression=translated.expression,
            optimized_expression=optimized,
            trace=trace,
            exact=translated.exact,
            notes=list(translated.notes) + calibration_notes,
            estimated_rows=estimated_rows,
        )

    # -- calibrated decisions (inert until history exists) --------------------

    def _estimate(self, expression: RegionExpr | None) -> float | None:
        if self._cost_model is None or expression is None:
            return None
        return self._cost_model.estimate_rows(expression)

    def _calibrated_expression_choice(
        self, raw: RegionExpr | None, optimized: RegionExpr
    ) -> tuple[RegionExpr, list[str]]:
        """Keep whichever of the translated and the rewrite-optimized form
        is cheaper under calibrated costs.  Cold (no history) this is a
        no-op: the rewrite ordering already minimizes calibrated cost on an
        empty history (property-tested), so the optimized form wins."""
        model = self._cost_model
        if model is None or not model.calibrated or raw is None or raw == optimized:
            return optimized, []
        winner, winner_cost, loser_cost = model.choose(raw, optimized)
        if winner == optimized or loser_cost is None:
            return optimized, []
        return winner, [
            "calibrated: kept translated expression "
            f"(cost {winner_cost:.0f} < rewritten {loser_cost:.0f})"
        ]

    def _calibrated_scan_choice(
        self, optimized: RegionExpr, source_class: str
    ) -> str | None:
        """Flip index-candidates to full-scan when history says parsing the
        estimated candidates costs more bytes than parsing the corpus once
        (answers are identical either way — only cost changes)."""
        model = self._cost_model
        if model is None or not model.calibrated or not model.corpus_bytes:
            return None
        estimated_bytes = model.estimated_parse_bytes(optimized, source_class)
        if estimated_bytes > model.corpus_bytes:
            return (
                "calibrated: full scan cheaper than candidates "
                f"(est. {estimated_bytes:.0f} candidate bytes > "
                f"{model.corpus_bytes} corpus bytes)"
            )
        return None

    def _plan_multi(
        self, query: Query, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> Plan:
        """Plan a multi-variable query (Section 5.2's join discussion).

        Each variable's single-variable conjuncts translate to a structural
        narrowing over its class; cross-variable conjuncts are evaluated in
        the database over the narrowed extents.  If any class is unindexed,
        the whole query falls back to the scan pipeline.
        """
        conjuncts = split_conjuncts(query.where)
        per_variable: dict[str, RegionExpr | None] = {}
        notes: list[str] = []
        for source in query.sources:
            if source.class_name not in self._translator.indexed_names:
                return Plan(
                    strategy="full-scan",
                    query=query,
                    notes=[f"class {source.class_name!r} is not indexed"],
                )
            own = [
                conjunct
                for conjunct in conjuncts
                if condition_range_variables(conjunct) == {source.var}
            ]
            if not own:
                per_variable[source.var] = None
                continue
            with tracer.span("translate", variable=source.var):
                translated = self._translator.translate_condition_for(
                    conjoin(own), source.class_name
                )
            if translated.never:
                return Plan(
                    strategy="empty",
                    query=query,
                    exact=True,
                    notes=translated.notes + [f"{source.var}: statically unsatisfiable"],
                )
            if translated.expression is None:
                per_variable[source.var] = None
                notes.extend(translated.notes)
                continue
            trace = OptimizationTrace()
            if self._optimize:
                with tracer.span("optimize", variable=source.var) as span:
                    optimized = optimize(
                        translated.expression, self._rig, trace, tracer
                    )
                    span.annotate(rewrites=trace.rewrite_count)
            else:
                optimized = translated.expression
            optimized, calibration_notes = self._calibrated_expression_choice(
                translated.expression, optimized
            )
            if is_trivially_empty(optimized, self._rig):
                return Plan(
                    strategy="empty",
                    query=query,
                    exact=True,
                    notes=[f"{source.var}: trivially empty narrowing (Prop. 3.3)"],
                )
            per_variable[source.var] = optimized
            notes.extend(translated.notes)
            notes.extend(f"{source.var}: {note}" for note in calibration_notes)
        variable_estimates, join_order = self._calibrated_join_order(
            query, per_variable, notes
        )
        return Plan(
            strategy="index-multi",
            query=query,
            per_variable=per_variable,
            exact=False,
            notes=notes,
            variable_estimates=variable_estimates,
            join_order=join_order,
        )

    def _calibrated_join_order(
        self,
        query: Query,
        per_variable: dict[str, RegionExpr | None],
        notes: list[str],
    ) -> tuple[dict[str, float], list[str]]:
        """Estimate each variable's candidate cardinality and, under
        calibration, order narrowing work by ascending estimate (cheapest
        extent first — an empty one short-circuits the whole join)."""
        model = self._cost_model
        if model is None:
            return {}, []
        estimates: dict[str, float] = {}
        for source in query.sources:
            expression = per_variable.get(source.var)
            if expression is not None:
                estimates[source.var] = model.estimate_rows(expression)
            else:
                estimates[source.var] = float(model.region_count(source.class_name))
        if not model.calibrated:
            return estimates, []
        natural = [source.var for source in query.sources]
        join_order = sorted(natural, key=lambda var: (estimates[var], natural.index(var)))
        if join_order != natural:
            notes.append(
                "calibrated: narrowing order "
                + " → ".join(
                    f"{var}~{estimates[var]:.0f}" for var in join_order
                )
            )
        return estimates, join_order

    def _join_condition(self, query: Query) -> PathComparison | None:
        """Use the join strategy only for a lone equality path comparison."""
        where = query.where
        if isinstance(where, PathComparison) and where.op == "=":
            if not where.left.has_variables() and not where.right.has_variables():
                return where
        return None
