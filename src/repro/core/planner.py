"""Query planning: choosing an execution strategy.

Strategies, in order of preference:

- ``empty``            — the translated expression is trivially empty
                         (Proposition 3.3) or statically unsatisfiable;
- ``index-exact``      — the optimized expression computes exactly the
                         qualifying source regions (full indexing, or partial
                         indexing meeting Section 6.3's condition); only the
                         answer regions are parsed;
- ``index-join``       — a path-to-path comparison evaluated by locating
                         both attribute-region sets through the index and
                         joining their *contents* (Section 5.2);
- ``index-candidates`` — the expression computes a candidate superset; the
                         candidates are parsed with the query pushed into
                         instantiation, then filtered (Section 6.2);
- ``full-scan``        — the baseline: parse the whole corpus and evaluate
                         in the database.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.algebra.ast import RegionExpr
from repro.cache import CacheStats
from repro.core.optimizer import OptimizationTrace, optimize
from repro.core.translate import TranslatedCondition, Translator
from repro.core.triviality import is_trivially_empty
from repro.db.parser import parse_query
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.db.query import (
    PathComparison,
    Query,
    condition_range_variables,
    conjoin,
    split_conjuncts,
)
from repro.rig.graph import RegionInclusionGraph


@dataclass
class Plan:
    """An executable plan for one query."""

    strategy: str
    query: Query
    translated: TranslatedCondition | None = None
    raw_expression: RegionExpr | None = None
    optimized_expression: RegionExpr | None = None
    trace: OptimizationTrace = field(default_factory=OptimizationTrace)
    exact: bool = False
    join_condition: PathComparison | None = None
    #: Multi-variable plans: one structural narrowing expression per range
    #: variable (``None`` entry = no narrowing, take the whole extent).
    per_variable: dict[str, RegionExpr | None] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


class Planner:
    """Turns queries into plans for one translator + RIG.

    ``optimize_expressions=False`` disables the Section 3.2 rewriting —
    translated expressions run as-is.  This exists purely for ablation
    measurements (benchmark E10); answers are unaffected (Theorem 3.6's
    equivalence), only costs change.
    """

    def __init__(
        self,
        translator: Translator,
        optimize_expressions: bool = True,
        plan_cache_size: int = 0,
        cache_stats: CacheStats | None = None,
    ) -> None:
        self._translator = translator
        self._rig = translator.effective_rig()
        self._optimize = optimize_expressions
        #: LRU of plans for *textual* queries (keyed by the raw query text).
        #: Plans are read-only to the executor, so one plan object can serve
        #: every repetition of the same query.  Size 0 disables the cache.
        #: Guarded by a lock: concurrent queries on one engine share it.
        self._plan_cache_size = plan_cache_size
        self._plan_cache: OrderedDict[str, Plan] = OrderedDict()
        self._plan_cache_lock = threading.Lock()
        self._cache_stats = cache_stats if cache_stats is not None else CacheStats()

    @property
    def translator(self) -> Translator:
        return self._translator

    @property
    def rig(self) -> RegionInclusionGraph:
        return self._rig

    def plan(
        self, query: Query | str, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> Plan:
        with tracer.span("plan") as plan_span:
            plan = self._plan_traced(query, tracer, plan_span)
            plan_span.annotate(strategy=plan.strategy)
        return plan

    def _plan_traced(self, query: Query | str, tracer, plan_span) -> Plan:
        cache_key: str | None = None
        if isinstance(query, str):
            if self._plan_cache_size > 0:
                with self._plan_cache_lock:
                    cached = self._plan_cache.get(query)
                    if cached is not None:
                        self._plan_cache.move_to_end(query)
                        self._cache_stats.plan_hits += 1
                    else:
                        self._cache_stats.plan_misses += 1
                        cache_key = query
                if cached is not None:
                    plan_span.annotate(plan_cache="hit")
                    return cached
                plan_span.annotate(plan_cache="miss")
            with tracer.span("parse-query"):
                query = parse_query(query)
        plan = self._plan_parsed(query, tracer)
        if cache_key is not None:
            with self._plan_cache_lock:
                self._plan_cache[cache_key] = plan
                while len(self._plan_cache) > self._plan_cache_size:
                    self._plan_cache.popitem(last=False)
        return plan

    def _plan_parsed(
        self, query: Query, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> Plan:
        if not query.is_single_source():
            return self._plan_multi(query, tracer)
        with tracer.span("translate") as span:
            translated = self._translator.translate_query(query)
            span.annotate(exact=translated.exact, never=translated.never)
        if translated.never:
            return Plan(
                strategy="empty",
                query=query,
                translated=translated,
                exact=True,
                notes=translated.notes + ["statically unsatisfiable"],
            )
        if translated.expression is None:
            return Plan(
                strategy="full-scan",
                query=query,
                translated=translated,
                notes=translated.notes + ["no index support: scanning the corpus"],
            )
        trace = OptimizationTrace()
        if self._optimize:
            with tracer.span("optimize") as span:
                optimized = optimize(translated.expression, self._rig, trace, tracer)
                span.annotate(rewrites=trace.rewrite_count)
        else:
            optimized = translated.expression
        if is_trivially_empty(optimized, self._rig):
            return Plan(
                strategy="empty",
                query=query,
                translated=translated,
                raw_expression=translated.expression,
                optimized_expression=optimized,
                trace=trace,
                exact=True,
                notes=translated.notes
                + ["expression is trivially empty on every instance (Prop. 3.3)"],
            )
        join = self._join_condition(query)
        if join is not None:
            return Plan(
                strategy="index-join",
                query=query,
                translated=translated,
                raw_expression=translated.expression,
                optimized_expression=optimized,
                trace=trace,
                exact=False,  # the executor refines this
                join_condition=join,
                notes=translated.notes,
            )
        strategy = "index-exact" if translated.exact else "index-candidates"
        return Plan(
            strategy=strategy,
            query=query,
            translated=translated,
            raw_expression=translated.expression,
            optimized_expression=optimized,
            trace=trace,
            exact=translated.exact,
            notes=list(translated.notes),
        )

    def _plan_multi(
        self, query: Query, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> Plan:
        """Plan a multi-variable query (Section 5.2's join discussion).

        Each variable's single-variable conjuncts translate to a structural
        narrowing over its class; cross-variable conjuncts are evaluated in
        the database over the narrowed extents.  If any class is unindexed,
        the whole query falls back to the scan pipeline.
        """
        conjuncts = split_conjuncts(query.where)
        per_variable: dict[str, RegionExpr | None] = {}
        notes: list[str] = []
        for source in query.sources:
            if source.class_name not in self._translator.indexed_names:
                return Plan(
                    strategy="full-scan",
                    query=query,
                    notes=[f"class {source.class_name!r} is not indexed"],
                )
            own = [
                conjunct
                for conjunct in conjuncts
                if condition_range_variables(conjunct) == {source.var}
            ]
            if not own:
                per_variable[source.var] = None
                continue
            with tracer.span("translate", variable=source.var):
                translated = self._translator.translate_condition_for(
                    conjoin(own), source.class_name
                )
            if translated.never:
                return Plan(
                    strategy="empty",
                    query=query,
                    exact=True,
                    notes=translated.notes + [f"{source.var}: statically unsatisfiable"],
                )
            if translated.expression is None:
                per_variable[source.var] = None
                notes.extend(translated.notes)
                continue
            trace = OptimizationTrace()
            if self._optimize:
                with tracer.span("optimize", variable=source.var) as span:
                    optimized = optimize(
                        translated.expression, self._rig, trace, tracer
                    )
                    span.annotate(rewrites=trace.rewrite_count)
            else:
                optimized = translated.expression
            if is_trivially_empty(optimized, self._rig):
                return Plan(
                    strategy="empty",
                    query=query,
                    exact=True,
                    notes=[f"{source.var}: trivially empty narrowing (Prop. 3.3)"],
                )
            per_variable[source.var] = optimized
            notes.extend(translated.notes)
        return Plan(
            strategy="index-multi",
            query=query,
            per_variable=per_variable,
            exact=False,
            notes=notes,
        )

    def _join_condition(self, query: Query) -> PathComparison | None:
        """Use the join strategy only for a lone equality path comparison."""
        where = query.where
        if isinstance(where, PathComparison) and where.op == "=":
            if not where.left.has_variables() and not where.right.has_variables():
                return where
        return None
