"""Index selection (Section 7).

"To fully compute Q, it is sufficient to (i) index the nonterminals
mentioned in e, and (ii) for every subexpression Ai ⊃d Ai+1 in e, index one
non-terminal (other than Ai, Ai+1) on each path from Ai to Ai+1 in the RIG
of the grammar G."

The advisor translates each workload query under *full* indexing, optimizes
it, collects the names the optimized expression mentions, and — for every
surviving direct inclusion — covers all interior paths with a greedy hitting
set of *blocker* non-terminals.  It can also recommend *scoped* indexes:
when a name is only ever queried inside one ancestor ("users often query
names of authors, but never names of editors"), a scoped index replaces the
global one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.ast import (
    DIRECTLY_INCLUDED,
    DIRECTLY_INCLUDING,
    Inclusion,
    Name,
    RegionExpr,
)
from repro.core.optimizer import optimize
from repro.core.planner import Planner
from repro.core.translate import Translator
from repro.db.parser import parse_query
from repro.db.query import Query
from repro.index.config import IndexConfig
from repro.rig.derive import derive_full_rig
from repro.rig.paths import simple_paths
from repro.schema.structuring import StructuringSchema


@dataclass
class AdvisorReport:
    """The recommendation plus its rationale."""

    config: IndexConfig
    mentioned: set[str] = field(default_factory=set)
    blockers: set[str] = field(default_factory=set)
    per_query: list[tuple[str, list[str]]] = field(default_factory=list)

    def describe(self) -> str:
        lines = ["index recommendation (Section 7):"]
        names = self.config.region_names or frozenset()
        lines.append(f"  region indexes: {sorted(names)}")
        if self.config.scoped:
            lines.append(
                "  scoped indexes: "
                + ", ".join(f"{s.source} inside {s.scope}" for s in self.config.scoped)
            )
        lines.append(f"  mentioned by expressions: {sorted(self.mentioned)}")
        lines.append(f"  blockers for direct inclusion: {sorted(self.blockers)}")
        for query_text, notes in self.per_query:
            lines.append(f"  - {query_text}")
            for note in notes:
                lines.append(f"      {note}")
        return "\n".join(lines)


class IndexAdvisor:
    """Recommends a minimal region-index set for a query workload."""

    def __init__(self, schema: StructuringSchema) -> None:
        self._schema = schema
        self._full_config = IndexConfig.full()
        self._full_translator = Translator(schema, self._full_config)
        self._full_planner = Planner(self._full_translator)
        self._full_rig = derive_full_rig(schema.grammar, include_root=True)

    def recommend(self, queries: list[Query | str]) -> AdvisorReport:
        """The Section-7 recommendation for a workload."""
        mentioned: set[str] = set()
        interior_paths: list[frozenset[str]] = []
        per_query: list[tuple[str, list[str]]] = []
        for raw_query in queries:
            query = parse_query(raw_query) if isinstance(raw_query, str) else raw_query
            notes: list[str] = []
            plan = self._full_planner.plan(query)
            mentioned.add(query.source_class)
            expression = plan.optimized_expression
            if expression is None:
                translated = self._full_translator.translate_query(query)
                if translated.expression is None:
                    notes.append("no index support under full indexing; skipped")
                    per_query.append((query.render(), notes))
                    continue
                expression = optimize(translated.expression, self._full_planner.rig)
            names = expression.region_names()
            mentioned.update(names)
            notes.append(f"optimized expression: {expression}")
            for container, containee in _direct_pairs(expression):
                for path in simple_paths(self._full_rig, container, containee):
                    interior = frozenset(path[1:-1])
                    if interior:
                        interior_paths.append(interior)
                        notes.append(
                            f"direct inclusion {container} ⊃d {containee}: "
                            f"interior path {list(path[1:-1])} needs a blocker"
                        )
            per_query.append((query.render(), notes))
        blockers = _greedy_hitting_set(interior_paths, prefer=mentioned)
        config = IndexConfig.partial(sorted(mentioned | blockers))
        return AdvisorReport(
            config=config,
            mentioned=mentioned,
            blockers=blockers - mentioned,
            per_query=per_query,
        )


def _direct_pairs(expression: RegionExpr) -> list[tuple[str, str]]:
    """(container, containee) pairs joined by a direct inclusion."""
    pairs: list[tuple[str, str]] = []
    for node in expression.walk():
        if not isinstance(node, Inclusion):
            continue
        left = _leaf_name(node.left)
        right = _leaf_name(node.right)
        if left is None or right is None:
            continue
        if node.op == DIRECTLY_INCLUDING:
            pairs.append((left, right))
        elif node.op == DIRECTLY_INCLUDED:
            pairs.append((right, left))
    return pairs


def _leaf_name(node: RegionExpr) -> str | None:
    from repro.algebra.ast import Select

    if isinstance(node, Name):
        return node.region_name
    if isinstance(node, Select):
        return _leaf_name(node.child)
    if isinstance(node, Inclusion):
        return _leaf_name(node.left)
    return None


def _greedy_hitting_set(
    paths: list[frozenset[str]], prefer: set[str]
) -> set[str]:
    """Pick nodes covering every interior path, preferring already-needed
    names, then highest coverage."""
    chosen: set[str] = set()
    remaining = [path for path in paths if path]
    # Paths already hit by preferred names cost nothing extra.
    chosen.update(
        name for name in prefer if any(name in path for path in remaining)
    )
    remaining = [path for path in remaining if not path & chosen]
    while remaining:
        counts: dict[str, int] = {}
        for path in remaining:
            for name in path:
                counts[name] = counts.get(name, 0) + 1
        best = max(sorted(counts), key=lambda name: counts[name])
        chosen.add(best)
        remaining = [path for path in remaining if best not in path]
    return chosen
