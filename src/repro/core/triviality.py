"""Proposition 3.3: statically-empty inclusion expressions.

"e(I) = ∅ for every I ∈ Z_G iff at least one of the following holds:
 (i)  e has a subexpression Ri ⊃d Rj, and (Ri, Rj) ∉ E;
 (ii) e has a subexpression Ri ⊃ Rj, and G does not contain a path from Ri
      to Rj."

With bare-extent regions, two names can share an extent, in which case
``Ri ⊃ Rj`` holds without any strict nesting; the conditions therefore also
require the pair not to be *coincidence-related* (see
:mod:`repro.rig.graph`).  On RIGs with an empty coincidence relation — all
of the paper's examples — this is exactly Proposition 3.3.

The test is *sound* for general expressions (a trivial subexpression only
forces emptiness where the algebra is monotone), so it is applied to
chains; set operations are handled conservatively (``∩``/chain positions
propagate, ``∪`` requires both sides, difference only its left side).
"""

from __future__ import annotations

from repro.algebra.ast import (
    BACKWARD_OPS,
    DIRECTLY_INCLUDED,
    DIRECTLY_INCLUDING,
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
)
from repro.core.chains import extract_chain
from repro.rig.graph import RegionInclusionGraph
from repro.rig.paths import reach_plus


def _coincidence_cluster(graph: RegionInclusionGraph, name: str) -> frozenset[str]:
    """Names that can share an extent with ``name``: the weakly-connected
    component of ``name`` in the coincident-edge subgraph."""
    adjacency: dict[str, set[str]] = {}
    for parent, child in graph.coincident_edges:
        adjacency.setdefault(parent, set()).add(child)
        adjacency.setdefault(child, set()).add(parent)
    component = {name}
    frontier = [name]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency.get(node, ()):
            if neighbour not in component:
                component.add(neighbour)
                frontier.append(neighbour)
    return frozenset(component)


def _pair_is_trivial(
    graph: RegionInclusionGraph, op: str, left: str, right: str
) -> bool:
    """Is ``left op right`` empty on every satisfying instance?

    Checked on coincidence *clusters*: a region of name ``N`` can share its
    extent with any name in ``N``'s cluster, so inclusion between the pair
    is realisable whenever an edge (for ``⊃d``) or a walk (for ``⊃``)
    connects the two clusters — or the clusters intersect (equal extents).
    On coincidence-free RIGs this is exactly Proposition 3.3.
    """
    if op in BACKWARD_OPS:
        # left ⊂ right: the container is the right name.
        container, containee = right, left
    else:
        container, containee = left, right
    container_cluster = _coincidence_cluster(graph, container)
    containee_cluster = _coincidence_cluster(graph, containee)
    if container_cluster & containee_cluster:
        return False
    if op in (DIRECTLY_INCLUDING, DIRECTLY_INCLUDED):
        return not any(
            graph.has_edge(outer, inner)
            for outer in container_cluster
            for inner in containee_cluster
        )
    return not any(
        inner in reach_plus(graph, outer)
        for outer in container_cluster
        for inner in containee_cluster
    )


def trivial_subexpressions(
    expression: RegionExpr, graph: RegionInclusionGraph
) -> list[tuple[str, str, str]]:
    """All ``(op, container, containee)`` witnesses of Proposition 3.3 inside
    chains of ``expression``."""
    witnesses: list[tuple[str, str, str]] = []
    for node in expression.walk():
        if not isinstance(node, Inclusion):
            continue
        chain = extract_chain(node)
        if chain is None:
            continue
        for index, op in enumerate(chain.ops):
            left = chain.links[index].region
            right = chain.links[index + 1].region
            if _pair_is_trivial(graph, op, left, right):
                if op in BACKWARD_OPS:
                    witnesses.append((op, right, left))
                else:
                    witnesses.append((op, left, right))
    # walk() re-visits every chain suffix as its own Inclusion node, so the
    # same pair is found repeatedly; deduplicate.
    return _dedupe(witnesses)


def _dedupe(witnesses: list[tuple[str, str, str]]) -> list[tuple[str, str, str]]:
    seen: set[tuple[str, str, str]] = set()
    unique = []
    for witness in witnesses:
        if witness not in seen:
            seen.add(witness)
            unique.append(witness)
    return unique


def is_trivially_empty(expression: RegionExpr, graph: RegionInclusionGraph) -> bool:
    """Is ``expression`` empty on every instance satisfying ``graph``?

    Sound (never claims emptiness wrongly); complete for inclusion chains
    per Proposition 3.3, conservative for set operations.
    """
    if isinstance(expression, Name):
        return False
    if isinstance(expression, (Select, Innermost, Outermost)):
        return is_trivially_empty(expression.child, graph)
    if isinstance(expression, SetOp):
        if expression.kind == "union":
            return is_trivially_empty(expression.left, graph) and is_trivially_empty(
                expression.right, graph
            )
        if expression.kind == "intersect":
            return is_trivially_empty(expression.left, graph) or is_trivially_empty(
                expression.right, graph
            )
        return is_trivially_empty(expression.left, graph)  # difference
    if isinstance(expression, Inclusion):
        chain = extract_chain(expression)
        if chain is not None:
            for index, op in enumerate(chain.ops):
                if _pair_is_trivial(
                    graph, op, chain.links[index].region, chain.links[index + 1].region
                ):
                    return True
            return False
        # Not a recognisable chain: an inclusion is empty whenever either
        # operand is.
        return is_trivially_empty(expression.left, graph) or is_trivially_empty(
            expression.right, graph
        )
    return False
