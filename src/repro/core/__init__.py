"""The paper's primary contribution: RIG-based optimization of region
expressions and the file query engine built on it.

- :mod:`repro.core.chains` — inclusion-chain view of region expressions;
- :mod:`repro.core.triviality` — Proposition 3.3 (statically-empty tests);
- :mod:`repro.core.optimizer` — Proposition 3.5 rewrites + the Theorem 3.6
  fixpoint algorithm computing the unique most efficient version;
- :mod:`repro.core.cost` — static cost model used for explain output;
- :mod:`repro.core.translate` — database query -> inclusion expression
  (Sections 5.1/5.2/6.1), with exactness tracking (Section 6.3);
- :mod:`repro.core.planner` / :mod:`repro.core.partial` — execution
  strategies: pure-index, two-phase candidate filtering, index-assisted
  join, full-scan baseline;
- :mod:`repro.core.engine` — :class:`FileQueryEngine`, the public facade;
- :mod:`repro.core.advisor` — Section 7 index selection;
- :mod:`repro.core.pathexpr` — extended path expressions (star variables,
  fixed-arity variables, regular-path closure helpers, Section 5.3).
"""

from repro.core.chains import ChainView, Link, extract_chain, chain_to_expression
from repro.core.triviality import is_trivially_empty, trivial_subexpressions
from repro.core.optimizer import optimize, OptimizationTrace
from repro.core.cost import node_weight, static_cost
from repro.core.translate import Translator, TranslatedCondition
from repro.core.planner import Plan, Planner
from repro.core.partial import ExecutionStats
from repro.core.engine import FileQueryEngine, QueryResult
from repro.core.advisor import IndexAdvisor, AdvisorReport
from repro.core.explain import explain_plan

__all__ = [
    "ChainView",
    "Link",
    "extract_chain",
    "chain_to_expression",
    "is_trivially_empty",
    "trivial_subexpressions",
    "optimize",
    "OptimizationTrace",
    "node_weight",
    "static_cost",
    "Translator",
    "TranslatedCondition",
    "Plan",
    "Planner",
    "ExecutionStats",
    "FileQueryEngine",
    "QueryResult",
    "IndexAdvisor",
    "AdvisorReport",
    "explain_plan",
]
