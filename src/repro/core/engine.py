"""The public facade: :class:`FileQueryEngine`.

Ties everything together the way the paper's system does:

1. a structuring schema maps the file(s) to a database view (Section 4);
2. an index configuration decides which regions/words get indexed
   (Sections 5–7);
3. queries in the XSQL subset are translated to region expressions,
   optimized against the derived RIG, evaluated on the index engine, and —
   when the indexes are not sufficient for full computation — completed by
   parsing just the candidate regions (Section 6).

Example
-------
>>> from repro.workloads.bibtex import bibtex_schema, generate_bibtex
>>> schema = bibtex_schema()
>>> engine = FileQueryEngine(schema, generate_bibtex(entries=50, seed=1))
>>> result = engine.query(
...     'SELECT r FROM Reference r '
...     'WHERE r.Authors.Name.Last_Name = "Chang"')
>>> result.stats.strategy
'index-exact'
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.algebra.counters import OperationCounters
from repro.algebra.region import Instance, RegionSet
from repro.api import (
    AnalyzeResponse,
    ExplainResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    query_response,
)
from repro.cache import CacheConfig, CacheStats
from repro.core.partial import Execution, ExecutionStats, PlanExecutor
from repro.core.planner import Plan, Planner
from repro.core.translate import Translator
from repro.db.model import Database
from repro.db.parser import parse_query
from repro.db.query import Query
from repro.db.values import Value, canonical
from repro.errors import (
    BudgetExceededError,
    IndexCorruptError,
    IndexNotFoundError,
    IndexStaleError,
    RegionIndexError,
)
from repro.index.builder import build_engine
from repro.index.config import IndexConfig
from repro.index.engine import IndexEngine
from repro.index.stats import IndexStatistics
from repro.obs.analyze import Analysis, build_node_table
from repro.obs.hooks import HookRegistry
from repro.obs.stats import QueryStats
from repro.obs.trace import SpanHook, Trace, Tracer
from repro.resilience.budget import ResourceBudget
from repro.resilience.policy import FULL_SCAN, RAISE, REBUILD, DegradationPolicy
from repro.resilience.warnings import (
    BUDGET_DEGRADED,
    DEGRADED_FULL_SCAN,
    INDEX_CORRUPT,
    INDEX_MISSING,
    INDEX_REBUILT,
    INDEX_STALE,
    STALE_STAGING_REMOVED,
    UNVERIFIED_LEGACY_INDEX,
    QueryWarning,
)
from repro.schema.structuring import StructuringSchema
from repro.text.document import Corpus

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.feedback import FeedbackConfig, FeedbackHistory


@dataclass
class QueryResult:
    """Rows, their source regions, the plan, the consolidated statistics
    facade (:class:`~repro.obs.stats.QueryStats`), and the pipeline trace."""

    rows: list[tuple[Value, ...]]
    regions: RegionSet
    plan: Plan
    stats: QueryStats
    trace: Trace | None = None

    @property
    def warnings(self) -> list[QueryWarning]:
        """Structured non-fatal incidents: degradation decisions taken while
        loading the engine or executing this query, malformed regions
        skipped under a tolerant policy."""
        return self.stats.execution.warnings

    @property
    def values(self) -> list[Value]:
        """First column of every row (convenience for single-output queries)."""
        return [row[0] for row in self.rows]

    def canonical_rows(self) -> set[tuple]:
        """Identity-free row representations, for comparing strategies."""
        return {tuple(canonical(value) for value in row) for row in self.rows}

    def __len__(self) -> int:
        return len(self.rows)


class FileQueryEngine:
    """Query files through their database view, via text indexes."""

    def __init__(
        self,
        schema: StructuringSchema,
        corpus: Corpus | str,
        config: IndexConfig | None = None,
        optimize_expressions: bool = True,
        cache_config: CacheConfig | None = None,
        tracing: bool = True,
        policy: DegradationPolicy | None = None,
        budget: ResourceBudget | None = None,
        feedback: "FeedbackConfig | bool | None" = None,
        feedback_history: "FeedbackHistory | None" = None,
    ) -> None:
        self.schema = schema
        self.corpus: Corpus | None = corpus if isinstance(corpus, Corpus) else None
        self.text = corpus.text if isinstance(corpus, Corpus) else corpus
        self.config = config if config is not None else IndexConfig.full()
        self.cache_config = cache_config if cache_config is not None else CacheConfig()
        self.cache_stats = CacheStats()
        self.tracing = tracing
        self.policy = policy if policy is not None else DegradationPolicy()
        self.budget = budget
        self._span_hooks = HookRegistry()
        self._load_warnings: list[QueryWarning] = []
        self._load_degradation: dict | None = None
        build_counters = OperationCounters()
        tree = schema.parse(self.text, counters=build_counters)
        self.index_build_bytes = build_counters.bytes_scanned
        self.index: IndexEngine = build_engine(
            self.text,
            tree,
            self.config,
            root=schema.grammar.start,
            known_names=schema.grammar.nonterminals,
        )
        self._wire_feedback(feedback, feedback_history)
        self._wire_caches_and_pipeline(optimize_expressions)

    def _wire_feedback(
        self,
        feedback: "FeedbackConfig | bool | None",
        feedback_history: "FeedbackHistory | None",
    ) -> None:
        """Build the feedback-calibration state (must run after the index is
        built — the cost model seeds cardinalities from its instance — and
        before :meth:`_wire_caches_and_pipeline`, which hands the model to
        the planner and executor).

        Feedback is opt-in (``feedback=None`` leaves it disabled).  The cost
        model itself is *always* constructed — a cold model is a pure
        function of the index and powers the rows-vs-rows estimates in
        :meth:`analyze` — but only an *enabled* engine feeds history, plans
        under calibrated costs, or replans mid-query.
        """
        from repro.feedback import CalibratedCostModel, FeedbackConfig, FeedbackHistory
        from repro.feedback.history import HISTORY_FILENAME
        from repro.index.persist import corpus_fingerprint

        self.feedback_config = FeedbackConfig.coerce(feedback)
        self.corpus_fingerprint = corpus_fingerprint(self.text)
        if feedback_history is not None:
            self.feedback_history = feedback_history
        elif self.feedback_config.enabled and self.feedback_config.directory:
            self.feedback_history = FeedbackHistory.load_or_fresh(
                Path(self.feedback_config.directory) / HISTORY_FILENAME
            )
        else:
            self.feedback_history = FeedbackHistory()
        self.cost_model = CalibratedCostModel(
            self.index.instance,
            self.corpus_fingerprint,
            self.feedback_history,
            config=self.feedback_config,
            corpus_bytes=len(self.text),
        )

    def _wire_caches_and_pipeline(self, optimize_expressions: bool) -> None:
        """Attach the per-engine caches and build translator/planner/executor.

        The corpus is immutable once indexed, so every cache layer (region
        expressions, candidate parses, plans) is sound for the engine's
        lifetime; ``CacheConfig.disabled()`` turns them all off.
        """
        self.index.configure_cache(self.cache_config, stats=self.cache_stats)
        self.translator = Translator(
            self.schema, self.config, has_word_index=self.index.word_index is not None
        )
        active_model = self.cost_model if self.feedback_config.enabled else None
        self.planner = Planner(
            self.translator,
            optimize_expressions=optimize_expressions,
            plan_cache_size=(
                self.cache_config.plan_cache_size
                if self.cache_config.caches_plans
                else 0
            ),
            cache_stats=self.cache_stats,
            cost_model=active_model,
        )
        self._executor = PlanExecutor(
            self.schema,
            self.index,
            self.translator,
            cache_config=self.cache_config,
            cache_stats=self.cache_stats,
            cost_model=active_model,
        )

    # -- persistence ------------------------------------------------------------------

    def save(
        self,
        directory: str,
        source_path: str | os.PathLike[str] | None = None,
        live: dict | None = None,
        replicas: int | None = None,
    ) -> None:
        """Persist the built indexes (see :mod:`repro.index.persist`).

        The structuring schema's fingerprint is stored alongside, so a later
        ``from_saved`` under a different schema fails loudly instead of
        silently answering wrongly.  ``source_path`` (optional) records the
        original file's identity next to the corpus content hash, enabling
        staleness detection at load time.  ``live`` (optional) attaches
        live-ingestion manifest state; ``replicas`` (optional) writes N
        sibling copies in the replicated layout (see
        :func:`~repro.index.persist.save_index`).
        """
        from repro.index.persist import save_index, schema_fingerprint

        save_index(
            self.index,
            directory,
            schema_fingerprint=schema_fingerprint(self.schema),
            source_path=source_path,
            live=live,
            replicas=replicas,
        )

    @classmethod
    def from_saved(
        cls,
        schema: StructuringSchema,
        directory: str,
        optimize_expressions: bool = True,
        cache_config: CacheConfig | None = None,
        tracing: bool = True,
        policy: DegradationPolicy | None = None,
        budget: ResourceBudget | None = None,
        source_text: str | None = None,
        source_path: str | os.PathLike[str] | None = None,
        feedback: "FeedbackConfig | bool | None" = None,
        feedback_history: "FeedbackHistory | None" = None,
    ) -> "FileQueryEngine":
        """Load a persisted engine, skipping the corpus re-parse.

        Integrity and staleness failures are typed
        (:class:`~repro.errors.IndexNotFoundError` /
        :class:`~repro.errors.IndexCorruptError` /
        :class:`~repro.errors.IndexStaleError`) and handled per the
        :class:`~repro.resilience.DegradationPolicy`: raise, serve every
        query through the cached full-scan pipeline, or rebuild the index
        from the best surviving text.  ``source_text``/``source_path``
        provide the *current* source for staleness checks and recovery.

        Always raises :class:`~repro.errors.RegionIndexError` when the saved
        index was built with a different structuring schema (region names
        would bind to the wrong grammar and yield wrong answers) — no
        policy degrades past that.  Indexes saved before fingerprints
        existed load without the check.
        """
        from repro.index.persist import (
            is_replicated_index,
            load_index,
            load_manifest,
            load_schema_fingerprint,
            schema_fingerprint,
            stale_reason,
            sweep_stale_staging,
        )

        policy = policy if policy is not None else DegradationPolicy()

        if is_replicated_index(directory):
            # A replicated root (``repro index --replicas N``): route to the
            # first healthy copy, breaker-aware, exactly like a replicated
            # shard.  Strict per-replica loads first — a damaged copy must
            # fail over to its sibling, not degrade to a full scan; the
            # caller's real policy is the last resort.
            from dataclasses import replace as _replace

            from repro.shard.replica import ReplicaSet

            replica_set = ReplicaSet.open(directory)
            if replica_set is not None:
                strict = _replace(
                    policy, on_corrupt=RAISE, on_stale=RAISE, on_missing=RAISE
                )
                common = dict(
                    optimize_expressions=optimize_expressions,
                    cache_config=cache_config,
                    tracing=tracing,
                    budget=budget,
                    source_text=source_text,
                    source_path=source_path,
                    feedback=feedback,
                    feedback_history=feedback_history,
                )
                load = replica_set.load(
                    lambda path: cls.from_saved(
                        schema, path, policy=strict, **common
                    ),
                    fallback=lambda path: cls.from_saved(
                        schema, path, policy=policy, **common
                    ),
                )
                engine: "FileQueryEngine" = load.value
                engine.policy = policy
                if load.warnings:
                    engine._load_warnings.extend(load.warnings)
                return engine

        load_warnings: list[QueryWarning] = []
        for orphan in sweep_stale_staging(directory):
            load_warnings.append(
                QueryWarning(
                    STALE_STAGING_REMOVED,
                    f"removed orphaned staging directory {orphan}",
                    detail={"path": orphan, "index": str(directory)},
                )
            )

        def recover(error: RegionIndexError, action: str, code: str) -> "FileQueryEngine":
            if action == RAISE:
                raise error
            fresh_only = code == INDEX_STALE  # a stale index's saved corpus is wrong
            text = cls._recover_text(
                directory, error, source_text, source_path, fresh_only=fresh_only
            )
            if text is None:
                raise error
            if action == REBUILD:
                engine = cls(
                    schema,
                    text,
                    optimize_expressions=optimize_expressions,
                    cache_config=cache_config,
                    tracing=tracing,
                    policy=policy,
                    budget=budget,
                    feedback=feedback,
                    feedback_history=feedback_history,
                )
                engine._load_warnings.extend(load_warnings)
                engine._load_warnings.append(QueryWarning(code, str(error)))
                engine._load_warnings.append(
                    QueryWarning(
                        INDEX_REBUILT,
                        f"index rebuilt from source text after {code}",
                        detail={"path": str(directory)},
                    )
                )
                return engine
            engine = cls._degraded_engine(
                schema,
                text,
                optimize_expressions=optimize_expressions,
                cache_config=cache_config,
                tracing=tracing,
                policy=policy,
                budget=budget,
                feedback=feedback,
                feedback_history=feedback_history,
            )
            engine._load_warnings.extend(load_warnings)
            engine._load_warnings.append(QueryWarning(code, str(error)))
            engine._load_warnings.append(
                QueryWarning(
                    DEGRADED_FULL_SCAN,
                    "index unusable: serving queries via the cached "
                    "full-scan pipeline",
                    detail={"path": str(directory), "cause": code},
                )
            )
            engine._load_degradation = {"reason": str(error), "code": code}
            return engine

        try:
            saved_fingerprint = load_schema_fingerprint(directory)
            expected_fingerprint = schema_fingerprint(schema)
            if (
                saved_fingerprint is not None
                and saved_fingerprint != expected_fingerprint
            ):
                raise RegionIndexError(
                    f"saved index at {directory!r} was built with a different "
                    f"structuring schema (saved {saved_fingerprint}, "
                    f"loading under {expected_fingerprint}); rebuild the index "
                    "with this schema instead"
                )
            reason = stale_reason(
                directory, source_text=source_text, source_path=source_path
            )
            if reason is not None:
                raise IndexStaleError(str(directory), reason)
            index = load_index(directory)
            if load_manifest(directory) is None:
                load_warnings.append(
                    QueryWarning(
                        UNVERIFIED_LEGACY_INDEX,
                        f"index at {directory} predates manifests (v1): "
                        "loaded without checksum verification",
                        detail={"path": str(directory)},
                    )
                )
        except IndexNotFoundError as error:
            return recover(error, policy.on_missing, INDEX_MISSING)
        except IndexStaleError as error:
            return recover(error, policy.on_stale, INDEX_STALE)
        except IndexCorruptError as error:
            return recover(error, policy.on_corrupt, INDEX_CORRUPT)
        engine = cls.__new__(cls)
        engine.schema = schema
        engine.corpus = None
        engine.text = index.text
        engine.config = index.config
        engine.cache_config = cache_config if cache_config is not None else CacheConfig()
        engine.cache_stats = CacheStats()
        engine.tracing = tracing
        engine.policy = policy
        engine.budget = budget
        engine._span_hooks = HookRegistry()
        engine._load_warnings = list(load_warnings)
        engine._load_degradation = None
        engine.index_build_bytes = 0
        engine.index = index
        engine._wire_feedback(feedback, feedback_history)
        engine._wire_caches_and_pipeline(optimize_expressions)
        return engine

    @staticmethod
    def _recover_text(
        directory: str,
        error: RegionIndexError,
        source_text: str | None,
        source_path: str | os.PathLike[str] | None,
        fresh_only: bool = False,
    ) -> str | None:
        """The best surviving corpus text for degradation/rebuild, or
        ``None`` when nothing trustworthy remains.  Prefers the *current*
        source; falls back to the saved ``corpus.txt`` unless the failure
        implicates it (or the index is stale, in which case the saved text
        is exactly what must not be served)."""
        if source_text is not None:
            return source_text
        if source_path is not None:
            try:
                return Path(source_path).read_text(encoding="utf-8")
            except OSError:
                pass
        if fresh_only or getattr(error, "part", None) == "corpus.txt":
            return None
        try:
            return (Path(directory) / "corpus.txt").read_text(encoding="utf-8")
        except OSError:
            return None

    @classmethod
    def _degraded_engine(
        cls,
        schema: StructuringSchema,
        text: str,
        optimize_expressions: bool,
        cache_config: CacheConfig | None,
        tracing: bool,
        policy: DegradationPolicy,
        budget: ResourceBudget | None,
        feedback: "FeedbackConfig | bool | None" = None,
        feedback_history: "FeedbackHistory | None" = None,
    ) -> "FileQueryEngine":
        """An engine with *no* index support: the translator finds no
        indexed names, so the planner routes every query to the full-scan
        strategy — whose parse tree is cached after the first query (the
        "cached full-scan pipeline").  Answers are identical to an indexed
        engine's; only costs differ."""
        engine = cls.__new__(cls)
        engine.schema = schema
        engine.corpus = None
        engine.text = text
        engine.config = IndexConfig.partial((), word_index=False)
        engine.cache_config = cache_config if cache_config is not None else CacheConfig()
        engine.cache_stats = CacheStats()
        engine.tracing = tracing
        engine.policy = policy
        engine.budget = budget
        engine._span_hooks = HookRegistry()
        engine._load_warnings = []
        engine._load_degradation = None
        engine.index_build_bytes = 0
        engine.index = IndexEngine(
            text=text,
            instance=Instance({}),
            word_index=None,
            suffix_array=None,
            config=engine.config,
        )
        engine._wire_feedback(feedback, feedback_history)
        engine._wire_caches_and_pipeline(optimize_expressions)
        return engine

    @property
    def degraded(self) -> bool:
        """True when load-time degradation left this engine serving every
        query through the no-index full-scan fallback (its planner must
        plan locally — plans from an indexed engine do not apply)."""
        return self._load_degradation is not None

    # -- observability ------------------------------------------------------------

    def on_span(self, hook: SpanHook):
        """Register an opt-in span hook, fired whenever a pipeline span
        closes during this engine's traced queries.  Returns a
        zero-argument callable that unregisters the hook.

        Hooks let harnesses assert *stage-level* budgets (e.g. "index-eval
        under 2 ms") instead of only end-to-end times; with no hooks
        registered, tracing cost is unchanged.
        """
        return self._span_hooks.register(hook)

    def _tracer(self) -> Tracer | None:
        return Tracer("query", hooks=self._span_hooks) if self.tracing else None

    def _package_result(
        self, plan: Plan, execution: Execution, tracer: Tracer | None
    ) -> QueryResult:
        if self._load_warnings:
            # Load-time degradation decisions surface on every query result.
            execution.stats.warnings = (
                list(self._load_warnings) + execution.stats.warnings
            )
        trace = tracer.finish() if tracer is not None else None
        if trace is not None:
            trace.root.annotate(
                strategy=execution.stats.strategy, rows=execution.stats.rows
            )
            if self._load_degradation is not None:
                trace.root.add_child("degraded", **self._load_degradation)
        return QueryResult(
            rows=execution.rows,
            regions=execution.regions,
            plan=plan,
            stats=QueryStats(execution.stats, trace=trace),
            trace=trace,
        )

    # -- querying -----------------------------------------------------------------

    def plan(self, query: Query | str) -> Plan:
        """Plan a query without executing it."""
        return self.planner.plan(query)

    def query(
        self,
        query: QueryRequest | Query | str,
        budget: ResourceBudget | None = None,
    ) -> QueryResult | QueryResponse:
        """Plan and execute a query.

        Passing a :class:`~repro.api.QueryRequest` selects the unified
        :class:`~repro.api.QueryBackend` surface: the request's budget and
        cursor pagination apply, and the wire-ready
        :class:`~repro.api.QueryResponse` comes back.  Query text (or a
        parsed :class:`~repro.db.query.Query`) keeps the historical rich
        :class:`QueryResult`.

        When tracing is enabled (the default) the result carries a
        hierarchical :class:`~repro.obs.trace.Trace` of the pipeline —
        parse → translate → optimize → plan → index evaluation → candidate
        parsing → database instantiation — as ``result.trace`` (also
        reachable as ``result.stats.trace``).

        ``budget`` (or the engine-wide default) guards the execution; on a
        breach the engine either raises
        :class:`~repro.errors.BudgetExceededError` — carrying the partial
        statistics and trace — or, under an ``on_budget="full-scan"``
        policy, retries once through the unguarded full-scan pipeline under
        a ``degraded`` span.
        """
        if isinstance(query, QueryRequest):
            result = self.query(query.query, budget=query.budget)
            return query_response(result, query)
        tracer = self._tracer()
        if tracer is None:
            plan = self.planner.plan(query)
        else:
            plan = self.planner.plan(query, tracer=tracer)
        return self._run_plan(plan, budget, tracer)

    def execute_plan(
        self, plan: Plan, budget: ResourceBudget | None = None
    ) -> QueryResult:
        """Execute an already-built plan against this engine's corpus.

        Sharded execution plans a query once and reuses the plan on every
        shard (:class:`~repro.shard.ShardedEngine`): translation and
        optimization depend only on the structuring schema and index
        configuration, which all shards share, so re-planning per shard
        would be pure waste.  The plan must come from an engine with the
        same schema and index configuration — region names in its
        expressions bind against this engine's instance.
        """
        return self._run_plan(plan, budget, self._tracer())

    def _run_plan(
        self, plan: Plan, budget: ResourceBudget | None, tracer: Tracer | None
    ) -> QueryResult:
        budget = budget if budget is not None else self.budget
        meter = (
            budget.meter() if budget is not None and not budget.unlimited else None
        )
        skip_malformed = self.policy.skip_malformed
        try:
            if tracer is None:
                execution: Execution = self._executor.execute(
                    plan, meter=meter, skip_malformed=skip_malformed
                )
            else:
                execution = self._executor.execute(
                    plan, tracer=tracer, meter=meter, skip_malformed=skip_malformed
                )
        except BudgetExceededError as error:
            if self.policy.on_budget != FULL_SCAN:
                error.trace = tracer.finish() if tracer is not None else None
                raise
            plan, execution = self._budget_fallback(
                plan, error, tracer, skip_malformed
            )
        return self._package_result(plan, execution, tracer)

    def _budget_fallback(
        self,
        plan: Plan,
        error: BudgetExceededError,
        tracer: Tracer | None,
        skip_malformed: bool,
    ) -> tuple[Plan, Execution]:
        """Retry a budget-blown query once through the full-scan pipeline —
        predictable cost (one corpus parse, cached across queries), no
        meter — and record the decision as a warning + ``degraded`` span."""
        fallback = Plan(
            strategy="full-scan",
            query=plan.query,
            notes=list(plan.notes) + [f"budget degraded: {error}"],
        )
        if tracer is None:
            execution = self._executor.execute(
                fallback, skip_malformed=skip_malformed
            )
        else:
            with tracer.span(
                "degraded", reason=str(error), code=BUDGET_DEGRADED
            ):
                execution = self._executor.execute(
                    fallback, tracer=tracer, skip_malformed=skip_malformed
                )
        execution.stats.warnings.insert(
            0,
            QueryWarning(
                BUDGET_DEGRADED,
                f"budget exceeded ({error.resource}); retried via full scan",
                detail={
                    "resource": error.resource,
                    "limit": error.limit,
                    "spent": error.spent,
                    "partial": dict(error.partial),
                },
            ),
        )
        return fallback, execution

    def explain(
        self, query: QueryRequest | QueryResult | Query | str
    ) -> str | ExplainResponse:
        """A human-readable account of the plan for a query, including the
        engine's cache state.

        Accepts a :class:`QueryResult` directly (its plan is reused — no
        ``engine.explain(result.plan.query)`` round-trip) as well as query
        text or a parsed :class:`Query`.  A :class:`~repro.api.QueryRequest`
        returns the wire-ready :class:`~repro.api.ExplainResponse` instead
        of bare text.
        """
        from repro.core.explain import explain_plan

        if isinstance(query, QueryRequest):
            return ExplainResponse(text=self.explain(query.query))
        plan = query.plan if isinstance(query, QueryResult) else self.plan(query)
        return explain_plan(plan, cache=self.cache_description())

    def analyze(
        self, query: QueryRequest | QueryResult | Query | str
    ) -> Analysis | AnalyzeResponse:
        """EXPLAIN ANALYZE: execute the query (or reuse an already-executed
        :class:`QueryResult`) and return an :class:`~repro.obs.analyze.Analysis`
        pairing the static cost-model estimates with measured actuals —
        per-stage wall-time/bytes from the trace plus per-plan-node timing
        and region counts from an instrumented evaluation.  A
        :class:`~repro.api.QueryRequest` executes under the request's
        budget and returns the wire-ready
        :class:`~repro.api.AnalyzeResponse`.
        """
        if isinstance(query, QueryRequest):
            executed = self.query(query.query, budget=query.budget)
            return AnalyzeResponse.from_analysis(self.analyze(executed))
        result = query if isinstance(query, QueryResult) else self.query(query)
        plan = result.plan
        nodes = []
        if plan.optimized_expression is not None:
            # Re-run the expression with per-node instrumentation, bypassing
            # the shared result cache so every node's cost is measured.
            node_log = {}
            self.index.run(plan.optimized_expression, node_log=node_log, use_cache=False)
            # Estimates are taken BEFORE feeding this run's actuals into the
            # feedback history, so the report shows the deltas the planner
            # actually faced (and calibration never grades its own homework).
            nodes = build_node_table(
                plan.optimized_expression,
                node_log,
                estimator=self.cost_model.estimate_rows,
            )
            if self.feedback_config.enabled:
                fed = self.cost_model.observe_tree(plan.optimized_expression, node_log)
                if fed:
                    self.save_feedback()
        return Analysis(
            plan=plan,
            stats=result.stats,
            nodes=nodes,
            trace=result.trace,
            cache=self.cache_description(),
        )

    # -- feedback calibration ----------------------------------------------------------

    def save_feedback(self) -> None:
        """Persist the feedback history when a directory is configured
        (no-op otherwise — in-memory history lives with the engine)."""
        if self.feedback_config.enabled and self.feedback_config.directory:
            from repro.feedback.history import HISTORY_FILENAME

            self.feedback_history.save(
                Path(self.feedback_config.directory) / HISTORY_FILENAME
            )

    def calibration_state(self) -> dict:
        """Deprecated spelling of the calibration summary: use
        :meth:`stats` and read ``.calibration`` instead (one unified
        surface for every statistics consumer)."""
        import warnings

        warnings.warn(
            "FileQueryEngine.calibration_state() is deprecated; use "
            "FileQueryEngine.stats().calibration instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._calibration_state()

    def _calibration_state(self) -> dict:
        """A JSON-friendly summary of the feedback-calibration state for
        this corpus: whether it is enabled, calibrated (history exists for
        this fingerprint), and the per-key corrections."""
        snapshot = self.feedback_history.snapshot(self.corpus_fingerprint)
        return {
            "enabled": self.feedback_config.enabled,
            "calibrated": self.cost_model.calibrated,
            "fingerprint": self.corpus_fingerprint,
            "directory": self.feedback_config.directory,
            **snapshot,
        }

    # -- the baseline ----------------------------------------------------------------

    def baseline_query(self, query: Query | str) -> QueryResult:
        """Run the query through the standard-database pipeline (parse the
        whole corpus, load, evaluate) regardless of index support.

        The baseline deliberately bypasses the engine's caches: it exists to
        measure the cost of *not* having the index layer, so it must pay the
        real parsing cost every time.
        """
        if isinstance(query, str):
            query = parse_query(query)
        plan = Plan(strategy="full-scan", query=query, notes=["forced baseline"])
        tracer = self._tracer()
        if tracer is None:
            execution = self._executor.execute(plan, use_cache=False)
            return self._package_result(plan, execution, None)
        execution = self._executor.execute(plan, use_cache=False, tracer=tracer)
        return self._package_result(plan, execution, tracer)

    def load_baseline_database(self) -> Database:
        """Parse the whole corpus once and load its full database image —
        the amortised variant of the baseline."""
        from repro.db.loader import load_database

        return load_database(self.schema, self.text).database

    # -- introspection -----------------------------------------------------------------

    def locate_results(self, result: QueryResult) -> list[tuple[str, int, int]]:
        """Map a result's regions back to ``(document name, local start,
        local end)`` triples — which *file* each answer lives in.

        Requires the engine to have been built from a :class:`Corpus`; with
        a bare string the single pseudo-document is named ``"<text>"``.
        """
        located: list[tuple[str, int, int]] = []
        for region in result.regions:
            if self.corpus is None:
                located.append(("<text>", region.start, region.end))
                continue
            doc_index, local_start = self.corpus.locate(region.start)
            document = self.corpus.documents[doc_index]
            located.append(
                (document.name, local_start, local_start + (region.end - region.start))
            )
        return located

    def statistics(self) -> IndexStatistics:
        return self.index.statistics()

    def stats(self) -> StatsResponse:
        """The unified statistics surface (:class:`~repro.api.StatsResponse`):
        index statistics, cache configuration + lifetime activity, and the
        feedback-calibration state, as one wire-ready object shared by the
        CLI's ``stats --json`` and the server's ``GET /stats``."""
        return StatsResponse(
            index=self.statistics().to_dict(),
            cache_config=self.cache_config.describe(),
            cache=self.cache_stats.to_dict(),
            calibration=self._calibration_state(),
            backend={
                "type": "file",
                "corpus_bytes": len(self.text),
                "indexed_names": sorted(self.indexed_names),
                "degraded": self.degraded,
            },
        )

    def cache_description(self) -> str:
        """One line: cache configuration plus lifetime hit/miss totals."""
        described = self.cache_config.describe()
        stats = self.cache_stats
        activity = (
            f"expr {stats.expression_hits}h/{stats.expression_misses}m, "
            f"parse {stats.parse_hits}h/{stats.parse_misses}m, "
            f"plan {stats.plan_hits}h/{stats.plan_misses}m, "
            f"{stats.bytes_parse_avoided} bytes not reparsed"
        )
        return f"{described}; {activity}"

    @property
    def indexed_names(self) -> frozenset[str]:
        return self.translator.indexed_names
