"""The public facade: :class:`FileQueryEngine`.

Ties everything together the way the paper's system does:

1. a structuring schema maps the file(s) to a database view (Section 4);
2. an index configuration decides which regions/words get indexed
   (Sections 5–7);
3. queries in the XSQL subset are translated to region expressions,
   optimized against the derived RIG, evaluated on the index engine, and —
   when the indexes are not sufficient for full computation — completed by
   parsing just the candidate regions (Section 6).

Example
-------
>>> from repro.workloads.bibtex import bibtex_schema, generate_bibtex
>>> schema = bibtex_schema()
>>> engine = FileQueryEngine(schema, generate_bibtex(entries=50, seed=1))
>>> result = engine.query(
...     'SELECT r FROM Reference r '
...     'WHERE r.Authors.Name.Last_Name = "Chang"')
>>> result.stats.strategy
'index-exact'
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.counters import OperationCounters
from repro.algebra.region import RegionSet
from repro.cache import CacheConfig, CacheStats
from repro.core.partial import Execution, ExecutionStats, PlanExecutor
from repro.core.planner import Plan, Planner
from repro.core.translate import Translator
from repro.db.model import Database
from repro.db.parser import parse_query
from repro.db.query import Query
from repro.db.values import Value, canonical
from repro.errors import RegionIndexError
from repro.index.builder import build_engine
from repro.index.config import IndexConfig
from repro.index.engine import IndexEngine
from repro.index.stats import IndexStatistics
from repro.obs.analyze import Analysis, build_node_table
from repro.obs.hooks import HookRegistry
from repro.obs.stats import QueryStats
from repro.obs.trace import SpanHook, Trace, Tracer
from repro.schema.structuring import StructuringSchema
from repro.text.document import Corpus


@dataclass
class QueryResult:
    """Rows, their source regions, the plan, the consolidated statistics
    facade (:class:`~repro.obs.stats.QueryStats`), and the pipeline trace."""

    rows: list[tuple[Value, ...]]
    regions: RegionSet
    plan: Plan
    stats: QueryStats
    trace: Trace | None = None

    @property
    def values(self) -> list[Value]:
        """First column of every row (convenience for single-output queries)."""
        return [row[0] for row in self.rows]

    def canonical_rows(self) -> set[tuple]:
        """Identity-free row representations, for comparing strategies."""
        return {tuple(canonical(value) for value in row) for row in self.rows}

    def __len__(self) -> int:
        return len(self.rows)


class FileQueryEngine:
    """Query files through their database view, via text indexes."""

    def __init__(
        self,
        schema: StructuringSchema,
        corpus: Corpus | str,
        config: IndexConfig | None = None,
        optimize_expressions: bool = True,
        cache_config: CacheConfig | None = None,
        tracing: bool = True,
    ) -> None:
        self.schema = schema
        self.corpus: Corpus | None = corpus if isinstance(corpus, Corpus) else None
        self.text = corpus.text if isinstance(corpus, Corpus) else corpus
        self.config = config if config is not None else IndexConfig.full()
        self.cache_config = cache_config if cache_config is not None else CacheConfig()
        self.cache_stats = CacheStats()
        self.tracing = tracing
        self._span_hooks = HookRegistry()
        build_counters = OperationCounters()
        tree = schema.parse(self.text, counters=build_counters)
        self.index_build_bytes = build_counters.bytes_scanned
        self.index: IndexEngine = build_engine(
            self.text,
            tree,
            self.config,
            root=schema.grammar.start,
            known_names=schema.grammar.nonterminals,
        )
        self._wire_caches_and_pipeline(optimize_expressions)

    def _wire_caches_and_pipeline(self, optimize_expressions: bool) -> None:
        """Attach the per-engine caches and build translator/planner/executor.

        The corpus is immutable once indexed, so every cache layer (region
        expressions, candidate parses, plans) is sound for the engine's
        lifetime; ``CacheConfig.disabled()`` turns them all off.
        """
        self.index.configure_cache(self.cache_config, stats=self.cache_stats)
        self.translator = Translator(
            self.schema, self.config, has_word_index=self.index.word_index is not None
        )
        self.planner = Planner(
            self.translator,
            optimize_expressions=optimize_expressions,
            plan_cache_size=(
                self.cache_config.plan_cache_size
                if self.cache_config.caches_plans
                else 0
            ),
            cache_stats=self.cache_stats,
        )
        self._executor = PlanExecutor(
            self.schema,
            self.index,
            self.translator,
            cache_config=self.cache_config,
            cache_stats=self.cache_stats,
        )

    # -- persistence ------------------------------------------------------------------

    def save(self, directory: str) -> None:
        """Persist the built indexes (see :mod:`repro.index.persist`).

        The structuring schema's fingerprint is stored alongside, so a later
        ``from_saved`` under a different schema fails loudly instead of
        silently answering wrongly.
        """
        from repro.index.persist import save_index, schema_fingerprint

        save_index(self.index, directory, schema_fingerprint=schema_fingerprint(self.schema))

    @classmethod
    def from_saved(
        cls,
        schema: StructuringSchema,
        directory: str,
        optimize_expressions: bool = True,
        cache_config: CacheConfig | None = None,
        tracing: bool = True,
    ) -> "FileQueryEngine":
        """Load a persisted engine, skipping the corpus re-parse.

        Raises :class:`~repro.errors.RegionIndexError` when the saved index was
        built with a different structuring schema (region names would bind
        to the wrong grammar and yield wrong answers).  Indexes saved before
        fingerprints existed load without the check.
        """
        from repro.index.persist import (
            load_index,
            load_schema_fingerprint,
            schema_fingerprint,
        )

        saved_fingerprint = load_schema_fingerprint(directory)
        expected_fingerprint = schema_fingerprint(schema)
        if saved_fingerprint is not None and saved_fingerprint != expected_fingerprint:
            raise RegionIndexError(
                f"saved index at {directory!r} was built with a different "
                f"structuring schema (saved {saved_fingerprint}, "
                f"loading under {expected_fingerprint}); rebuild the index "
                "with this schema instead"
            )
        index = load_index(directory)
        engine = cls.__new__(cls)
        engine.schema = schema
        engine.corpus = None
        engine.text = index.text
        engine.config = index.config
        engine.cache_config = cache_config if cache_config is not None else CacheConfig()
        engine.cache_stats = CacheStats()
        engine.tracing = tracing
        engine._span_hooks = HookRegistry()
        engine.index_build_bytes = 0
        engine.index = index
        engine._wire_caches_and_pipeline(optimize_expressions)
        return engine

    # -- observability ------------------------------------------------------------

    def on_span(self, hook: SpanHook):
        """Register an opt-in span hook, fired whenever a pipeline span
        closes during this engine's traced queries.  Returns a
        zero-argument callable that unregisters the hook.

        Hooks let harnesses assert *stage-level* budgets (e.g. "index-eval
        under 2 ms") instead of only end-to-end times; with no hooks
        registered, tracing cost is unchanged.
        """
        return self._span_hooks.register(hook)

    def _tracer(self) -> Tracer | None:
        return Tracer("query", hooks=self._span_hooks) if self.tracing else None

    @staticmethod
    def _package_result(
        plan: Plan, execution: Execution, tracer: Tracer | None
    ) -> QueryResult:
        trace = tracer.finish() if tracer is not None else None
        if trace is not None:
            trace.root.annotate(
                strategy=execution.stats.strategy, rows=execution.stats.rows
            )
        return QueryResult(
            rows=execution.rows,
            regions=execution.regions,
            plan=plan,
            stats=QueryStats(execution.stats, trace=trace),
            trace=trace,
        )

    # -- querying -----------------------------------------------------------------

    def plan(self, query: Query | str) -> Plan:
        """Plan a query without executing it."""
        return self.planner.plan(query)

    def query(self, query: Query | str) -> QueryResult:
        """Plan and execute a query.

        When tracing is enabled (the default) the result carries a
        hierarchical :class:`~repro.obs.trace.Trace` of the pipeline —
        parse → translate → optimize → plan → index evaluation → candidate
        parsing → database instantiation — as ``result.trace`` (also
        reachable as ``result.stats.trace``).
        """
        tracer = self._tracer()
        if tracer is None:
            plan = self.planner.plan(query)
            execution: Execution = self._executor.execute(plan)
            return self._package_result(plan, execution, None)
        plan = self.planner.plan(query, tracer=tracer)
        execution = self._executor.execute(plan, tracer=tracer)
        return self._package_result(plan, execution, tracer)

    def explain(self, query: QueryResult | Query | str) -> str:
        """A human-readable account of the plan for a query, including the
        engine's cache state.

        Accepts a :class:`QueryResult` directly (its plan is reused — no
        ``engine.explain(result.plan.query)`` round-trip) as well as query
        text or a parsed :class:`Query`.
        """
        from repro.core.explain import explain_plan

        plan = query.plan if isinstance(query, QueryResult) else self.plan(query)
        return explain_plan(plan, cache=self.cache_description())

    def analyze(self, query: QueryResult | Query | str) -> Analysis:
        """EXPLAIN ANALYZE: execute the query (or reuse an already-executed
        :class:`QueryResult`) and return an :class:`~repro.obs.analyze.Analysis`
        pairing the static cost-model estimates with measured actuals —
        per-stage wall-time/bytes from the trace plus per-plan-node timing
        and region counts from an instrumented evaluation.
        """
        result = query if isinstance(query, QueryResult) else self.query(query)
        plan = result.plan
        nodes = []
        if plan.optimized_expression is not None:
            # Re-run the expression with per-node instrumentation, bypassing
            # the shared result cache so every node's cost is measured.
            node_log = {}
            self.index.run(plan.optimized_expression, node_log=node_log, use_cache=False)
            nodes = build_node_table(plan.optimized_expression, node_log)
        return Analysis(
            plan=plan,
            stats=result.stats,
            nodes=nodes,
            trace=result.trace,
            cache=self.cache_description(),
        )

    # -- the baseline ----------------------------------------------------------------

    def baseline_query(self, query: Query | str) -> QueryResult:
        """Run the query through the standard-database pipeline (parse the
        whole corpus, load, evaluate) regardless of index support.

        The baseline deliberately bypasses the engine's caches: it exists to
        measure the cost of *not* having the index layer, so it must pay the
        real parsing cost every time.
        """
        if isinstance(query, str):
            query = parse_query(query)
        plan = Plan(strategy="full-scan", query=query, notes=["forced baseline"])
        tracer = self._tracer()
        if tracer is None:
            execution = self._executor.execute(plan, use_cache=False)
            return self._package_result(plan, execution, None)
        execution = self._executor.execute(plan, use_cache=False, tracer=tracer)
        return self._package_result(plan, execution, tracer)

    def load_baseline_database(self) -> Database:
        """Parse the whole corpus once and load its full database image —
        the amortised variant of the baseline."""
        from repro.db.loader import load_database

        return load_database(self.schema, self.text).database

    # -- introspection -----------------------------------------------------------------

    def locate_results(self, result: QueryResult) -> list[tuple[str, int, int]]:
        """Map a result's regions back to ``(document name, local start,
        local end)`` triples — which *file* each answer lives in.

        Requires the engine to have been built from a :class:`Corpus`; with
        a bare string the single pseudo-document is named ``"<text>"``.
        """
        located: list[tuple[str, int, int]] = []
        for region in result.regions:
            if self.corpus is None:
                located.append(("<text>", region.start, region.end))
                continue
            doc_index, local_start = self.corpus.locate(region.start)
            document = self.corpus.documents[doc_index]
            located.append(
                (document.name, local_start, local_start + (region.end - region.start))
            )
        return located

    def statistics(self) -> IndexStatistics:
        return self.index.statistics()

    def cache_description(self) -> str:
        """One line: cache configuration plus lifetime hit/miss totals."""
        described = self.cache_config.describe()
        stats = self.cache_stats
        activity = (
            f"expr {stats.expression_hits}h/{stats.expression_misses}m, "
            f"parse {stats.parse_hits}h/{stats.parse_misses}m, "
            f"plan {stats.plan_hits}h/{stats.plan_misses}m, "
            f"{stats.bytes_parse_avoided} bytes not reparsed"
        )
        return f"{described}; {activity}"

    @property
    def indexed_names(self) -> frozenset[str]:
        return self.translator.indexed_names
