"""Plan execution: candidate evaluation, parsing, filtering, joining.

Implements the two-phase evaluation of Section 6 — "(i) the query is
compiled into an inclusion expression that computes a super set of the
required result - a set of candidate regions, and (ii) the candidate regions
are further processed to obtain the exact result" — plus the index-assisted
join of Section 5.2 and the full-scan baseline.

All costs are tallied in an :class:`ExecutionStats`: algebra operation
counts, candidate counts, bytes of file text parsed, and database values
built.  Benchmarks read these next to wall-clock numbers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.algebra.counters import OperationCounters
from repro.algebra.region import Region, RegionSet
from repro.core.planner import Plan
from repro.core.translate import Translator
from repro.db.evaluator import NaiveEvaluator
from repro.db.model import Database
from repro.db.query import PathComparison, Query, TrueCondition
from repro.db.values import ObjectValue, Value
from repro.errors import ParseError, PlanningError
from repro.index.engine import IndexEngine
from repro.schema.pushdown import AnchoredTrie, InstantiationStats, PathTrie
from repro.schema.structuring import StructuringSchema


@dataclass
class ExecutionStats:
    """The measured cost of executing one plan."""

    strategy: str = ""
    candidate_regions: int = 0
    result_regions: int = 0
    bytes_parsed: int = 0
    values_built: int = 0
    objects_filtered_out: int = 0
    rows: int = 0
    algebra: OperationCounters = field(default_factory=OperationCounters)
    join_bytes_compared: int = 0

    def summary(self) -> str:
        lines = [
            f"strategy:          {self.strategy}",
            f"candidates:        {self.candidate_regions}",
            f"results:           {self.result_regions} regions, {self.rows} rows",
            f"bytes parsed:      {self.bytes_parsed}",
            f"values built:      {self.values_built}",
            f"filtered out:      {self.objects_filtered_out}",
            f"algebra ops:       {self.algebra.total_operations} "
            f"({self.algebra.comparisons} comparisons)",
        ]
        if self.join_bytes_compared:
            lines.append(f"join bytes:        {self.join_bytes_compared}")
        return "\n".join(lines)


@dataclass
class Execution:
    """Rows plus the regions they came from plus the cost tally."""

    rows: list[tuple[Value, ...]]
    regions: RegionSet
    stats: ExecutionStats


class PlanExecutor:
    """Executes plans against one indexed corpus."""

    def __init__(
        self,
        schema: StructuringSchema,
        index_engine: IndexEngine,
        translator: Translator,
    ) -> None:
        self._schema = schema
        self._engine = index_engine
        self._translator = translator

    # -- dispatch -----------------------------------------------------------------

    def execute(self, plan: Plan) -> Execution:
        if plan.strategy == "empty":
            stats = ExecutionStats(strategy="empty")
            return Execution(rows=[], regions=RegionSet.empty(), stats=stats)
        if plan.strategy == "full-scan":
            return self._execute_full_scan(plan)
        if plan.strategy == "index-join":
            return self._execute_join(plan)
        if plan.strategy == "index-multi":
            return self._execute_multi(plan)
        if plan.strategy in ("index-exact", "index-candidates"):
            return self._execute_index(plan)
        raise PlanningError(f"unknown strategy {plan.strategy!r}")

    # -- index strategies ------------------------------------------------------------

    def _execute_index(self, plan: Plan) -> Execution:
        stats = ExecutionStats(strategy=plan.strategy)
        assert plan.optimized_expression is not None
        evaluation = self._engine.run(plan.optimized_expression)
        stats.algebra = evaluation.counters
        candidates = evaluation.result
        stats.candidate_regions = len(candidates)
        return self._parse_filter_output(plan, candidates, stats, exact=plan.exact)

    def _parse_filter_output(
        self,
        plan: Plan,
        candidates: RegionSet,
        stats: ExecutionStats,
        exact: bool,
    ) -> Execution:
        """Parse candidate regions, filter if needed, and produce rows."""
        query = plan.query
        trie = self._translator.needed_paths(query)
        parsed = self._parse_candidates(query.source_class, candidates, trie, stats)
        database = Database()
        region_of: dict[int, Region] = {}
        kept_objects: list[ObjectValue] = []
        checker = NaiveEvaluator(Database())  # only used for object_satisfies
        for region, obj in parsed:
            if not exact and not checker.object_satisfies(query, obj):
                stats.objects_filtered_out += 1
                continue
            kept_objects.append(obj)
            region_of[obj.oid] = region
            database.insert(obj)
        final_query = query if not exact else Query(
            outputs=query.outputs,
            source_class=query.source_class,
            var=query.var,
            where=query.where if _outputs_need_where(query) else TrueCondition(),
        )
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(final_query)
        stats.rows = len(rows)
        result_regions = RegionSet(region_of[obj.oid] for obj in kept_objects)
        if query.is_identity_select():
            result_regions = RegionSet(
                region_of[row[0].oid]
                for row in rows
                if isinstance(row[0], ObjectValue) and row[0].oid in region_of
            )
        stats.result_regions = len(result_regions)
        return Execution(rows=rows, regions=result_regions, stats=stats)

    def _parse_candidates(
        self,
        source_class: str,
        candidates: RegionSet,
        trie: PathTrie,
        stats: ExecutionStats,
    ) -> list[tuple[Region, ObjectValue]]:
        """Re-parse each candidate region as the source non-terminal and
        instantiate it (restricted to the push-down trie)."""
        parsed: list[tuple[Region, ObjectValue]] = []
        counters = OperationCounters()
        instantiation = InstantiationStats()
        for region in candidates:
            try:
                node = self._schema.parse(
                    self._engine.text,
                    symbol=source_class,
                    start=region.start,
                    end=region.end,
                    counters=counters,
                )
            except ParseError:
                # A candidate that fails to re-parse cannot be an answer.
                stats.objects_filtered_out += 1
                continue
            value = self._schema.instantiate(node, needed=trie, stats=instantiation)
            if isinstance(value, ObjectValue):
                parsed.append((region, value))
            else:
                stats.objects_filtered_out += 1
        stats.bytes_parsed += counters.bytes_scanned
        stats.values_built += instantiation.values_built
        return parsed

    # -- multi-variable queries (Section 5.2's join discussion) ----------------------------

    def _execute_multi(self, plan: Plan) -> Execution:
        """Narrow each range variable's extent through the index, parse only
        the surviving candidates, then run the database join loops."""
        stats = ExecutionStats(strategy="index-multi")
        query = plan.query
        database = Database()
        extents_by_var: dict[str, tuple[ObjectValue, ...]] = {}
        region_of: dict[int, Region] = {}
        for source in query.sources:
            expression = plan.per_variable.get(source.var)
            if expression is None:
                candidates = self._engine.instance.get(source.class_name)
            else:
                evaluation = self._engine.run(expression)
                stats.algebra.merge(evaluation.counters)
                candidates = evaluation.result
            stats.candidate_regions += len(candidates)
            trie = self._translator.needed_paths(query, var=source.var)
            parsed = self._parse_candidates(source.class_name, candidates, trie, stats)
            objects = []
            for region, obj in parsed:
                database.insert(obj)
                region_of[obj.oid] = region
                objects.append(obj)
            extents_by_var[source.var] = tuple(objects)
        evaluator = NaiveEvaluator(database, extents_by_var=extents_by_var)
        rows = evaluator.evaluate(query)
        stats.rows = len(rows)
        result_regions = RegionSet.empty()
        if query.is_identity_select():
            result_regions = RegionSet(
                region_of[row[0].oid]
                for row in rows
                if isinstance(row[0], ObjectValue) and row[0].oid in region_of
            )
        stats.result_regions = len(result_regions)
        return Execution(rows=rows, regions=result_regions, stats=stats)

    # -- the index-assisted join (Section 5.2) --------------------------------------------

    def _execute_join(self, plan: Plan) -> Execution:
        stats = ExecutionStats(strategy="index-join")
        query = plan.query
        join = plan.join_condition
        assert join is not None
        source = query.source_class
        left = self._endpoint_regions(source, join, side="left", stats=stats)
        right = self._endpoint_regions(source, join, side="right", stats=stats)
        if left is None or right is None:
            # The endpoints cannot be located exactly through the index;
            # fall back to candidate filtering over the structural narrowing.
            assert plan.optimized_expression is not None
            evaluation = self._engine.run(plan.optimized_expression)
            stats.algebra.merge(evaluation.counters)
            stats.candidate_regions = len(evaluation.result)
            stats.strategy = "index-join(fallback)"
            return self._parse_filter_output(plan, evaluation.result, stats, exact=False)
        left_regions, left_exact = left
        right_regions, right_exact = right
        sources = self._engine.instance.get(source)
        left_texts = self._texts_by_source(sources, left_regions, stats)
        right_texts = self._texts_by_source(sources, right_regions, stats)
        qualifying = [
            region
            for region in sources
            if left_texts.get(region) and right_texts.get(region)
            and left_texts[region] & right_texts[region]
        ]
        candidates = RegionSet(qualifying)
        stats.candidate_regions = len(candidates)
        exact = left_exact and right_exact
        return self._parse_filter_output(plan, candidates, stats, exact=exact)

    def _endpoint_regions(
        self, source: str, join: PathComparison, side: str, stats: ExecutionStats
    ) -> tuple[RegionSet, bool] | None:
        """Locate the regions of one join side's endpoint attribute.

        Returns ``(regions, exact)`` where ``exact`` means "region text
        equals the attribute value and the path context is unambiguous"."""
        path = join.left if side == "left" else join.right
        resolved = self._translator.translate_path(source, path, word=None)
        if resolved.expression is None:
            return None
        endpoint = self._translator.endpoint_chain(source, path)
        if endpoint is None:
            return None
        expression, exact = endpoint
        evaluation = self._engine.run(expression)
        stats.algebra.merge(evaluation.counters)
        return evaluation.result, exact

    def _texts_by_source(
        self, sources: RegionSet, endpoints: RegionSet, stats: ExecutionStats
    ) -> dict[Region, set[str]]:
        """Group endpoint-region texts by their enclosing source region —
        "the content of the regions is then loaded into the database"."""
        texts: dict[Region, set[str]] = defaultdict(set)
        for source_region in sources:
            for endpoint in endpoints.iter_included_in(source_region):
                content = self._engine.region_text(endpoint).strip()
                stats.join_bytes_compared += len(endpoint)
                texts[source_region].add(content)
        return dict(texts)

    # -- the baseline ----------------------------------------------------------------------

    def _execute_full_scan(self, plan: Plan) -> Execution:
        stats = ExecutionStats(strategy="full-scan")
        query = plan.query
        counters = OperationCounters()
        tree = self._schema.parse(self._engine.text, counters=counters)
        stats.bytes_parsed = counters.bytes_scanned
        instantiation = InstantiationStats()
        if query.is_single_source():
            # The query trie is rooted at the source class; instantiation
            # starts at the grammar root, so anchor it (outer structure kept).
            trie = AnchoredTrie(
                anchor=query.source_class, inner=self._translator.needed_paths(query)
            )
        else:
            # Multi-variable scans build the full image (each class would
            # need its own anchor; correctness over cleverness here).
            trie = PathTrie.everything()
        root = self._schema.instantiate(tree, needed=trie, stats=instantiation)
        stats.values_built = instantiation.values_built
        database = Database()
        database.load_value(root)
        evaluator = NaiveEvaluator(database)
        rows = evaluator.evaluate(query)
        stats.rows = len(rows)
        stats.candidate_regions = len(database.extent(query.source_class))
        # Map qualifying objects back to their parse regions for parity with
        # the index strategies.
        regions: list[Region] = []
        if query.is_identity_select():
            qualifying = {
                row[0].oid for row in rows if isinstance(row[0], ObjectValue)
            }
            spans = [
                (node.start, node.end)
                for node in tree.walk()
                if node.symbol == query.source_class
            ]
            objects = database.extent(query.source_class)
            for (start, end), obj in zip(spans, objects):
                if obj.oid in qualifying:
                    regions.append(Region(start, end))
            stats.objects_filtered_out = stats.candidate_regions - len(qualifying)
        result_regions = RegionSet(regions)
        stats.result_regions = len(result_regions)
        return Execution(rows=rows, regions=result_regions, stats=stats)


def _outputs_need_where(query: Query) -> bool:
    """Variable-using outputs need WHERE bindings even on exact plans."""
    return any(output.has_variables() for output in query.outputs)
